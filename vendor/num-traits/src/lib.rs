//! Offline workalike of the subset of `num-traits` this workspace uses
//! (see `vendor/README.md` for the vendoring policy).

/// Additive identity.
pub trait Zero: Sized {
    /// The value `0`.
    fn zero() -> Self;
    /// Is this the additive identity?
    fn is_zero(&self) -> bool;
}

/// Multiplicative identity.
pub trait One: Sized {
    /// The value `1`.
    fn one() -> Self;
    /// Is this the multiplicative identity?
    fn is_one(&self) -> bool;
}

/// Sign predicates and operations for signed numbers.
pub trait Signed {
    /// Absolute value.
    fn abs(&self) -> Self;
    /// `+1`, `0`, or `-1` according to sign.
    fn signum(&self) -> Self;
    /// Strictly positive?
    fn is_positive(&self) -> bool;
    /// Strictly negative?
    fn is_negative(&self) -> bool;
}

/// Checked conversion into primitive integers / floats.
pub trait ToPrimitive {
    /// Convert to `u64` if the value fits.
    fn to_u64(&self) -> Option<u64>;
    /// Convert to `i64` if the value fits.
    fn to_i64(&self) -> Option<i64>;
    /// Convert to `usize` if the value fits.
    fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }
    /// Convert to `u32` if the value fits.
    fn to_u32(&self) -> Option<u32> {
        self.to_u64().and_then(|v| u32::try_from(v).ok())
    }
    /// Convert to `f64` (possibly lossy).
    fn to_f64(&self) -> Option<f64> {
        self.to_i64().map(|v| v as f64)
    }
}

macro_rules! impl_identities_int {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self { 0 }
            fn is_zero(&self) -> bool { *self == 0 }
        }
        impl One for $t {
            fn one() -> Self { 1 }
            fn is_one(&self) -> bool { *self == 1 }
        }
        impl ToPrimitive for $t {
            fn to_u64(&self) -> Option<u64> { u64::try_from(*self).ok() }
            fn to_i64(&self) -> Option<i64> { i64::try_from(*self).ok() }
        }
    )*};
}
impl_identities_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_identities_float {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self { 0.0 }
            fn is_zero(&self) -> bool { *self == 0.0 }
        }
        impl One for $t {
            fn one() -> Self { 1.0 }
            fn is_one(&self) -> bool { *self == 1.0 }
        }
    )*};
}
impl_identities_float!(f32, f64);

macro_rules! impl_signed_int {
    ($($t:ty),*) => {$(
        impl Signed for $t {
            fn abs(&self) -> Self { <$t>::abs(*self) }
            fn signum(&self) -> Self { <$t>::signum(*self) }
            fn is_positive(&self) -> bool { *self > 0 }
            fn is_negative(&self) -> bool { *self < 0 }
        }
    )*};
}
impl_signed_int!(i8, i16, i32, i64, i128, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert!(0u64.is_zero());
        assert!(1u32.is_one());
        assert!(!2i64.is_zero());
        assert_eq!(u64::zero(), 0);
        assert_eq!(i32::one(), 1);
    }

    #[test]
    fn signed_predicates() {
        assert!((-3i64).is_negative());
        assert!(3i64.is_positive());
        assert_eq!((-3i32).abs(), 3);
    }
}
