//! Offline workalike of the subset of `proptest` this workspace uses
//! (see `vendor/README.md` for the vendoring policy).
//!
//! Provides random-input property testing with the same surface syntax as upstream
//! proptest — the [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! `any::<T>()`, range strategies, `collection::vec`, and the `prop_assert*` macros —
//! but with a simple generate-and-check loop: **no shrinking** and no failure
//! persistence.  A failing case panics with the standard assertion message; rerunning
//! reproduces it because each test derives its RNG seed deterministically from the
//! test function's name.

use rand::rngs::StdRng;

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keep only generated values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, f, whence }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.base.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

/// Constant strategy (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive a stable 64-bit seed from a test's identifying string (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Build the deterministic per-test RNG (used by the `proptest!` expansion so call
/// sites do not need a direct `rand` dependency).
pub fn rng_for(name: &str) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed_for(name))
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs for every
/// generated case.
#[macro_export]
macro_rules! proptest {
    // With a leading `#![proptest_config(...)]` inner attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    // Without a config: use the default.
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let run = || {
                        $body
                    };
                    // Give failures a stable reproduction hint before unwinding.
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic seed; rerun reproduces it)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn mapping_composes(v in pair_strategy().prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 200);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..5).prop_flat_map(|n| collection::vec(0u64..10, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn any_generates(x in any::<u64>(), flag in any::<bool>()) {
            let _ = (x, flag);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
