//! Offline placeholder for `thiserror` (see `vendor/README.md`).
//!
//! The workspace declares `thiserror` in `[workspace.dependencies]` for future error
//! types, but no crate currently uses it: the crypto layer hand-implements
//! `std::fmt::Display` + `std::error::Error` on its error enums instead.  If a crate
//! starts needing `#[derive(Error)]`, extend this placeholder with a derive macro the
//! way `vendor/serde_derive` does.
