//! Offline workalike of serde's `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are unavailable;
//! this macro parses the item declaration directly from the `proc_macro` token stream.
//! It supports what the workspace actually derives on: non-generic structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit, tuple, or
//! struct-like.  Field `#[...]` attributes and doc comments are skipped.  The generated
//! impls target the vendored `serde` crate's `Value`-tree data model:
//!
//! * named struct  -> `Value::Map` keyed by field name
//! * tuple struct  -> `Value::Seq` of the fields
//! * unit  variant -> `Value::Str(variant_name)`
//! * data  variant -> `Value::Map { variant_name: payload }` (externally tagged)

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip `#[...]` attribute groups (including expanded doc comments).
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: expected [...] after '#', got {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skip a `pub` / `pub(crate)` visibility prefix.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Parse the field names out of a `{ ... }` named-fields group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field `{name}`, got {other:?}"),
        }
        names.push(name);
        // Skip the type: everything up to a top-level comma.  Angle-bracket generics in
        // types contain no top-level commas at this token depth because `proc_macro`
        // does not group them, so track `<`/`>` nesting explicitly.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

/// Count the fields of a `( ... )` tuple group.
fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in group {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde_derive (vendored): generic type `{name}` is not supported; \
                 extend vendor/serde_derive if the workspace needs it"
            );
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            let mut variants = Vec::new();
            let mut body_tokens = body.into_iter().peekable();
            loop {
                skip_attributes(&mut body_tokens);
                let vname = match body_tokens.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    other => panic!("serde_derive: expected variant name, got {other:?}"),
                };
                let fields = match body_tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.stream();
                        body_tokens.next();
                        Fields::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.stream();
                        body_tokens.next();
                        Fields::Tuple(parse_tuple_arity(g))
                    }
                    _ => Fields::Unit,
                };
                // Skip a possible `= discriminant` and the trailing comma.
                let mut depth = 0i32;
                while let Some(tok) = body_tokens.peek() {
                    match tok {
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            body_tokens.next();
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            depth += 1;
                            body_tokens.next();
                        }
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            depth -= 1;
                            body_tokens.next();
                        }
                        _ => {
                            body_tokens.next();
                        }
                    }
                }
                variants.push(Variant { name: vname, fields });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]` — lower a type into the vendored serde `Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\
                                     \"{vn}\".to_string(), \
                                     ::serde::Value::Seq(vec![{vals}])\
                                 )]),",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                     \"{vn}\".to_string(), \
                                     ::serde::Value::Map(vec![{entries}])\
                                 )]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — rebuild a type from the vendored serde `Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                     v.get(\"{f}\")\
                                      .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?\
                                 )?"
                            )
                        })
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Map(_) => Ok({name} {{ {} }}),\n\
                             other => Err(::serde::Error::invalid_type(\"struct map\", other)),\n\
                         }}",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                     items.get({i})\
                                          .ok_or_else(|| ::serde::Error::custom(\"tuple struct too short\"))?\
                                 )?"
                            )
                        })
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                                 Ok({name}({})),\n\
                             ::serde::Value::Seq(_) => \
                                 Err(::serde::Error::custom(\"wrong tuple struct arity\")),\n\
                             other => Err(::serde::Error::invalid_type(\"tuple seq\", other)),\n\
                         }}",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!(
                    "match v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::Error::invalid_type(\"null\", other)),\n\
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                             items.get({i}).ok_or_else(|| \
                                                 ::serde::Error::custom(\"variant payload too short\"))?\
                                         )?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n\
                                     ::serde::Value::Seq(items) if items.len() == {n} => \
                                         Ok({name}::{vn}({})),\n\
                                     other => Err(::serde::Error::invalid_type(\"variant seq\", other)),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                             payload.get(\"{f}\")\
                                                 .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?\
                                         )?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => Err(::serde::Error::custom(\
                                         format!(\"unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::invalid_type(\"enum tag\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}
