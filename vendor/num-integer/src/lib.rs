//! Offline workalike of the subset of `num-integer` this workspace uses
//! (see `vendor/README.md` for the vendoring policy).

/// The result of an extended GCD computation: `a*x + b*y = gcd`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtendedGcd<T> {
    /// The greatest common divisor.
    pub gcd: T,
    /// Bézout coefficient of the first operand.
    pub x: T,
    /// Bézout coefficient of the second operand.
    pub y: T,
}

/// Integer-specific operations (GCD/LCM, parity, Euclidean-style division).
pub trait Integer: Sized {
    /// Greatest common divisor.
    fn gcd(&self, other: &Self) -> Self;
    /// Least common multiple.
    fn lcm(&self, other: &Self) -> Self;
    /// Extended GCD: returns `gcd` along with Bézout coefficients `x`, `y`.
    fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self>;
    /// Is the value even?
    fn is_even(&self) -> bool;
    /// Is the value odd?
    fn is_odd(&self) -> bool {
        !self.is_even()
    }
    /// Simultaneous truncated quotient and remainder.
    fn div_rem(&self, other: &Self) -> (Self, Self);
    /// Floored division.
    fn div_floor(&self, other: &Self) -> Self;
    /// Remainder of floored division (always has the divisor's sign / is non-negative
    /// for a positive divisor).
    fn mod_floor(&self, other: &Self) -> Self;
}

macro_rules! impl_integer_uint {
    ($($t:ty),*) => {$(
        impl Integer for $t {
            fn gcd(&self, other: &Self) -> Self {
                let (mut a, mut b) = (*self, *other);
                while b != 0 {
                    let r = a % b;
                    a = b;
                    b = r;
                }
                a
            }
            fn lcm(&self, other: &Self) -> Self {
                if *self == 0 || *other == 0 { return 0; }
                self / self.gcd(other) * other
            }
            fn extended_gcd(&self, _other: &Self) -> ExtendedGcd<Self> {
                // Unsigned Bézout coefficients are not representable in general;
                // the workspace only calls this on signed big integers.
                unimplemented!("extended_gcd on unsigned primitives is unused")
            }
            fn is_even(&self) -> bool { self % 2 == 0 }
            fn div_rem(&self, other: &Self) -> (Self, Self) { (self / other, self % other) }
            fn div_floor(&self, other: &Self) -> Self { self / other }
            fn mod_floor(&self, other: &Self) -> Self { self % other }
        }
    )*};
}
impl_integer_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_integer_int {
    ($($t:ty),*) => {$(
        impl Integer for $t {
            fn gcd(&self, other: &Self) -> Self {
                let (mut a, mut b) = (self.unsigned_abs(), other.unsigned_abs());
                while b != 0 {
                    let r = a % b;
                    a = b;
                    b = r;
                }
                a as $t
            }
            fn lcm(&self, other: &Self) -> Self {
                if *self == 0 || *other == 0 { return 0; }
                (self / self.gcd(other) * other).abs()
            }
            fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self> {
                let (mut old_r, mut r) = (*self, *other);
                let (mut old_x, mut x) = (1, 0);
                let (mut old_y, mut y) = (0, 1);
                while r != 0 {
                    let q = old_r / r;
                    (old_r, r) = (r, old_r - q * r);
                    (old_x, x) = (x, old_x - q * x);
                    (old_y, y) = (y, old_y - q * y);
                }
                if old_r < 0 {
                    ExtendedGcd { gcd: -old_r, x: -old_x, y: -old_y }
                } else {
                    ExtendedGcd { gcd: old_r, x: old_x, y: old_y }
                }
            }
            fn is_even(&self) -> bool { self % 2 == 0 }
            fn div_rem(&self, other: &Self) -> (Self, Self) { (self / other, self % other) }
            fn div_floor(&self, other: &Self) -> Self { self.div_euclid(*other) }
            fn mod_floor(&self, other: &Self) -> Self { self.rem_euclid(*other) }
        }
    )*};
}
impl_integer_int!(i8, i16, i32, i64, i128, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm() {
        assert_eq!(12u64.gcd(&18), 6);
        assert_eq!(4u32.lcm(&6), 12);
        assert_eq!(0u64.gcd(&5), 5);
    }

    #[test]
    fn extended_gcd_bezout() {
        let e = 240i64.extended_gcd(&46);
        assert_eq!(e.gcd, 2);
        assert_eq!(240 * e.x + 46 * e.y, e.gcd);
    }

    #[test]
    fn parity() {
        assert!(4u64.is_even());
        assert!(5i32.is_odd());
    }
}
