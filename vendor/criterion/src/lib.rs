//! Offline workalike of the subset of the `criterion` benchmarking API this workspace
//! uses (see `vendor/README.md` for the vendoring policy).
//!
//! Compiles the same bench sources and runs them with a simple
//! warmup + timed-samples loop, reporting mean / min / max per benchmark to stdout.
//! It performs no statistical analysis, HTML reporting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier for `name` at parameter `parameter`.
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId { name: format!("{}/{parameter}", name.into()) }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to every benchmark closure; `iter` runs and times the routine.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    group: &'a str,
    id: String,
}

impl Bencher<'_> {
    /// Time `routine`, printing a one-line summary.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up until the warmup budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut times = Vec::with_capacity(self.samples);
        let run_start = Instant::now();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
            if run_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len().max(1) as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{}: {} samples, mean {:?}, min {:?}, max {:?}",
            self.group,
            self.id,
            times.len(),
            mean,
            min,
            max
        );
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Set the measurement-time budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Set the warmup-time budget.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Set the reported throughput (accepted and ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            group: &self.name,
            id: id.to_string(),
        };
        f(&mut bencher);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            group: &self.name,
            id: id.to_string(),
        };
        f(&mut bencher, input);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted and ignored by this workalike).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
            default_measurement_time: Duration::from_secs(1),
            default_warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Parse CLI configuration (accepted and ignored by this workalike).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: self,
        }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Define a benchmark group function that runs each target against a shared
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Define the bench binary's `main`, invoking every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_function("id", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(ran >= 3);
    }
}
