//! Signed arbitrary-precision integers: a sign plus a [`BigUint`] magnitude.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use num_integer::{ExtendedGcd, Integer};
use num_traits::{One, Signed, ToPrimitive, Zero};

use crate::biguint::{BigUint, ParseBigIntError};

/// The sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Negative.
    Minus,
    /// Zero.
    NoSign,
    /// Positive.
    Plus,
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Build from an explicit sign and magnitude (the sign of a zero magnitude is
    /// normalized to [`Sign::NoSign`]).
    pub fn from_biguint(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt { sign: Sign::NoSign, mag }
        } else if sign == Sign::NoSign {
            BigInt { sign: Sign::Plus, mag }
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Convert to a [`BigUint`] if non-negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        match self.sign {
            Sign::Minus => None,
            _ => Some(self.mag.clone()),
        }
    }

    /// Modular exponentiation; the exponent must be non-negative and the base is
    /// reduced into `[0, modulus)` first.
    pub fn modpow(&self, exponent: &BigInt, modulus: &BigInt) -> BigInt {
        assert!(exponent.sign != Sign::Minus, "modpow: negative exponent");
        assert!(modulus.sign == Sign::Plus, "modpow: modulus must be positive");
        let base = self.mod_floor(modulus);
        BigInt::from_biguint(Sign::Plus, base.mag.modpow(&exponent.mag, &modulus.mag))
    }

    fn add_ref(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::NoSign, _) => other.clone(),
            (_, Sign::NoSign) => self.clone(),
            (a, b) if a == b => BigInt::from_biguint(a, &self.mag + &other.mag),
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_biguint(self.sign, &self.mag - &other.mag),
                Ordering::Less => BigInt::from_biguint(other.sign, &other.mag - &self.mag),
            },
        }
    }

    fn sub_ref(&self, other: &BigInt) -> BigInt {
        self.add_ref(&other.neg_ref())
    }

    fn mul_ref(&self, other: &BigInt) -> BigInt {
        let sign = match (self.sign, other.sign) {
            (Sign::NoSign, _) | (_, Sign::NoSign) => return BigInt::zero(),
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        BigInt::from_biguint(sign, &self.mag * &other.mag)
    }

    /// Truncated division (quotient rounds toward zero, remainder keeps the sign of
    /// the dividend) — the semantics of `/` and `%` on upstream `BigInt`.
    fn div_rem_ref(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q_mag, r_mag) = self.mag.div_rem(&other.mag);
        let q_sign = match (self.sign, other.sign) {
            (Sign::NoSign, _) => Sign::NoSign,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        (BigInt::from_biguint(q_sign, q_mag), BigInt::from_biguint(self.sign, r_mag))
    }

    fn div_core(&self, other: &BigInt) -> BigInt {
        self.div_rem_ref(other).0
    }

    fn rem_core(&self, other: &BigInt) -> BigInt {
        self.div_rem_ref(other).1
    }

    fn neg_ref(&self) -> BigInt {
        let sign = match self.sign {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
            Sign::NoSign => Sign::NoSign,
        };
        BigInt { sign, mag: self.mag.clone() }
    }
}

impl Zero for BigInt {
    fn zero() -> Self {
        BigInt { sign: Sign::NoSign, mag: BigUint::zero() }
    }
    fn is_zero(&self) -> bool {
        self.sign == Sign::NoSign
    }
}

impl One for BigInt {
    fn one() -> Self {
        BigInt { sign: Sign::Plus, mag: BigUint::one() }
    }
    fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag.is_one()
    }
}

impl Signed for BigInt {
    fn abs(&self) -> Self {
        BigInt::from_biguint(Sign::Plus, self.mag.clone())
    }
    fn signum(&self) -> Self {
        match self.sign {
            Sign::Plus => BigInt::one(),
            Sign::NoSign => BigInt::zero(),
            Sign::Minus => -BigInt::one(),
        }
    }
    fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }
    fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }
}

impl ToPrimitive for BigInt {
    fn to_u64(&self) -> Option<u64> {
        match self.sign {
            Sign::Minus => None,
            _ => self.mag.to_u64(),
        }
    }
    fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u64()?;
        match self.sign {
            Sign::Minus => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i64).wrapping_neg())
                } else {
                    None
                }
            }
            _ => i64::try_from(mag).ok(),
        }
    }
}

impl Integer for BigInt {
    fn gcd(&self, other: &Self) -> Self {
        BigInt::from_biguint(Sign::Plus, self.mag.gcd(&other.mag))
    }
    fn lcm(&self, other: &Self) -> Self {
        BigInt::from_biguint(Sign::Plus, self.mag.lcm(&other.mag))
    }
    fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self> {
        let (mut old_r, mut r) = (self.clone(), other.clone());
        let (mut old_x, mut x) = (BigInt::one(), BigInt::zero());
        let (mut old_y, mut y) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let q = &old_r / &r;
            let next_r = &old_r - &(&q * &r);
            old_r = std::mem::replace(&mut r, next_r);
            let next_x = &old_x - &(&q * &x);
            old_x = std::mem::replace(&mut x, next_x);
            let next_y = &old_y - &(&q * &y);
            old_y = std::mem::replace(&mut y, next_y);
        }
        if old_r.is_negative() {
            ExtendedGcd { gcd: -old_r, x: -old_x, y: -old_y }
        } else {
            ExtendedGcd { gcd: old_r, x: old_x, y: old_y }
        }
    }
    fn is_even(&self) -> bool {
        self.mag.is_even()
    }
    fn div_rem(&self, other: &Self) -> (Self, Self) {
        self.div_rem_ref(other)
    }
    fn div_floor(&self, other: &Self) -> Self {
        let (q, r) = self.div_rem_ref(other);
        if r.is_zero() || (r.sign == other.sign) {
            q
        } else {
            q - BigInt::one()
        }
    }
    fn mod_floor(&self, other: &Self) -> Self {
        let r = self.rem_core(other);
        if r.is_zero() || r.sign == other.sign {
            r
        } else {
            r + other.clone()
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                if v < 0 {
                    BigInt::from_biguint(Sign::Minus, BigUint::from(v.unsigned_abs() as u64))
                } else {
                    BigInt::from_biguint(Sign::Plus, BigUint::from(v as u64))
                }
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

macro_rules! impl_from_uint_for_bigint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                BigInt::from_biguint(Sign::Plus, BigUint::from(v))
            }
        }
    )*};
}
impl_from_uint_for_bigint!(u8, u16, u32, u64, usize);

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        BigInt::from_biguint(Sign::Plus, BigUint::from(v))
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v < 0 {
            BigInt::from_biguint(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_biguint(Sign::Plus, BigUint::from(v as u128))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_biguint(Sign::Plus, v)
    }
}

/// Error for checked conversions out of big integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TryFromBigIntError;

impl fmt::Display for TryFromBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("big integer out of target range")
    }
}

impl std::error::Error for TryFromBigIntError {}

macro_rules! impl_try_from_bigint {
    ($($t:ty),*) => {$(
        impl TryFrom<&BigInt> for $t {
            type Error = TryFromBigIntError;
            fn try_from(v: &BigInt) -> Result<Self, Self::Error> {
                v.to_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or(TryFromBigIntError)
            }
        }
        impl TryFrom<BigInt> for $t {
            type Error = TryFromBigIntError;
            fn try_from(v: BigInt) -> Result<Self, Self::Error> {
                <$t>::try_from(&v)
            }
        }
    )*};
}
impl_try_from_bigint!(i8, i16, i32, i64, isize);

macro_rules! impl_try_from_bigint_unsigned {
    ($($t:ty),*) => {$(
        impl TryFrom<&BigInt> for $t {
            type Error = TryFromBigIntError;
            fn try_from(v: &BigInt) -> Result<Self, Self::Error> {
                v.to_u64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or(TryFromBigIntError)
            }
        }
        impl TryFrom<BigInt> for $t {
            type Error = TryFromBigIntError;
            fn try_from(v: BigInt) -> Result<Self, Self::Error> {
                <$t>::try_from(&v)
            }
        }
    )*};
}
impl_try_from_bigint_unsigned!(u8, u16, u32, u64, usize);

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Minus => other.mag.cmp(&self.mag),
                Sign::NoSign => Ordering::Equal,
                Sign::Plus => self.mag.cmp(&other.mag),
            },
            non_eq => non_eq,
        }
    }
}

macro_rules! forward_int_binop {
    ($trait:ident, $method:ident, $core:ident) => {
        impl std::ops::$trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                self.$core(rhs)
            }
        }
        impl std::ops::$trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$core(&rhs)
            }
        }
        impl std::ops::$trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$core(rhs)
            }
        }
        impl std::ops::$trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$core(&rhs)
            }
        }
    };
}

forward_int_binop!(Add, add, add_ref);
forward_int_binop!(Sub, sub, sub_ref);
forward_int_binop!(Mul, mul, mul_ref);
forward_int_binop!(Div, div, div_core);
forward_int_binop!(Rem, rem, rem_core);

macro_rules! forward_int_assign {
    ($trait:ident, $method:ident, $core:ident) => {
        impl std::ops::$trait<&BigInt> for BigInt {
            fn $method(&mut self, rhs: &BigInt) {
                *self = self.$core(rhs);
            }
        }
        impl std::ops::$trait<BigInt> for BigInt {
            fn $method(&mut self, rhs: BigInt) {
                *self = self.$core(&rhs);
            }
        }
    };
}

forward_int_assign!(AddAssign, add_assign, add_ref);
forward_int_assign!(SubAssign, sub_assign, sub_ref);
forward_int_assign!(MulAssign, mul_assign, mul_ref);
forward_int_assign!(DivAssign, div_assign, div_core);
forward_int_assign!(RemAssign, rem_assign, rem_core);

impl std::ops::Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.neg_ref()
    }
}

impl std::ops::Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.neg_ref()
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        fmt::Display::fmt(&self.mag, f)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(BigInt::from_biguint(Sign::Minus, rest.parse()?))
        } else {
            Ok(BigInt::from_biguint(Sign::Plus, s.parse()?))
        }
    }
}

impl serde::Serialize for BigInt {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for BigInt {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => {
                s.parse().map_err(|_| serde::Error::custom("invalid BigInt literal"))
            }
            serde::Value::U64(n) => Ok(BigInt::from(*n)),
            serde::Value::I64(n) => Ok(BigInt::from(*n)),
            _ => Err(serde::Error::custom("expected a BigInt string")),
        }
    }
}
