//! Arbitrary-precision unsigned integers: `Vec<u64>` limbs, little-endian, normalized
//! (no trailing zero limbs; zero is the empty vector).

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use num_integer::{ExtendedGcd, Integer};
use num_traits::{One, ToPrimitive, Zero};

/// Limb count above which multiplication switches from schoolbook to Karatsuba.
/// 32 limbs = 2048 bits: comfortably above the Paillier `N²` widths where schoolbook
/// still wins, comfortably below the Damgård–Jurik `N^{s+1}` widths where it doesn't.
const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 64-bit limbs with no trailing zeros.
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// The number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() as u64 * 64 - top.leading_zeros() as u64,
        }
    }

    /// Read the bit at position `bit` (little-endian, 0-based).
    pub fn bit(&self, bit: u64) -> bool {
        let limb = (bit / 64) as usize;
        limb < self.limbs.len() && (self.limbs[limb] >> (bit % 64)) & 1 == 1
    }

    /// Set or clear the bit at position `bit`, growing the representation as needed.
    pub fn set_bit(&mut self, bit: u64, value: bool) {
        let limb = (bit / 64) as usize;
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << (bit % 64);
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << (bit % 64));
            while self.limbs.last() == Some(&0) {
                self.limbs.pop();
            }
        }
    }

    /// Number of trailing zero bits, or `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(i as u64 * 64 + limb.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Interpret big-endian bytes as an integer.
    ///
    /// Builds the limbs directly from 8-byte chunks off the little end (like
    /// [`Self::from_bytes_le`]) — O(n) in the input length, which matters because this
    /// sits on the wire-decode path of every ciphertext crossing the two-cloud channel.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        // rchunks walks from the least-significant end; a short (leading) chunk can
        // only be the last one yielded and right-aligns into the limb.
        for chunk in bytes.rchunks(8) {
            let mut limb = [0u8; 8];
            limb[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(limb));
        }
        BigUint::from_limbs(limbs)
    }

    /// Interpret little-endian bytes as an integer.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        BigUint::from_limbs(limbs)
    }

    /// The little-endian 64-bit digits of the value (empty for zero).
    pub fn to_u64_digits(&self) -> Vec<u64> {
        self.limbs.clone()
    }

    /// Big-endian byte representation (empty-input-safe; zero encodes as `[0]`).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.limbs.is_empty() {
            return vec![0];
        }
        let mut out: Vec<u8> = self.limbs.iter().rev().flat_map(|l| l.to_be_bytes()).collect();
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Little-endian byte representation (zero encodes as `[0]`).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = self.to_bytes_be();
        out.reverse();
        out
    }

    /// `self ^ exp` by repeated squaring.
    pub fn pow(&self, exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Modular exponentiation `self ^ exponent mod modulus`.
    ///
    /// Odd moduli take the Montgomery fast path (a throwaway
    /// [`crate::MontgomeryContext`] with CIOS multiplication and 4-bit-window
    /// exponentiation); even moduli fall back to [`Self::modpow_naive`], because
    /// Montgomery reduction requires the modulus to be coprime to the limb radix.
    /// Callers exponentiating repeatedly under one modulus should build and reuse a
    /// [`crate::MontgomeryContext`] themselves to amortise the context setup.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow: zero modulus");
        match crate::MontgomeryContext::new(modulus) {
            Some(ctx) => ctx.modpow(self, exponent),
            None => self.modpow_naive(exponent, modulus),
        }
    }

    /// Bit-at-a-time square-and-multiply modular exponentiation with a full division
    /// per step.  This is the reference implementation the Montgomery fast path is
    /// differentially tested against, and the fallback for even moduli.
    pub fn modpow_naive(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow: zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut base = self % modulus;
        let mut acc = BigUint::one();
        let nbits = exponent.bits();
        for i in 0..nbits {
            if exponent.bit(i) {
                acc = &(&acc * &base) % modulus;
            }
            if i + 1 < nbits {
                base = &(&base * &base) % modulus;
            }
        }
        acc
    }

    /// Joint modular exponentiation `self ^ e1 · other ^ e2 mod modulus`.
    ///
    /// Odd moduli take the Strauss–Shamir fast path
    /// ([`crate::MontgomeryContext::multi_modpow`]: one shared squaring chain and a
    /// 16-entry joint table, ~2× over two separate `modpow` calls); even moduli fall
    /// back to [`Self::multi_modpow_naive`].
    pub fn multi_modpow(
        &self,
        e1: &BigUint,
        other: &BigUint,
        e2: &BigUint,
        modulus: &BigUint,
    ) -> BigUint {
        assert!(!modulus.is_zero(), "multi_modpow: zero modulus");
        match crate::MontgomeryContext::new(modulus) {
            Some(ctx) => ctx.multi_modpow(self, e1, other, e2),
            None => self.multi_modpow_naive(e1, other, e2, modulus),
        }
    }

    /// Reference implementation of [`Self::multi_modpow`]: two independent naive
    /// exponentiations and a modular multiplication.  The differential baseline for
    /// the Strauss–Shamir path, and the fallback for even moduli.
    pub fn multi_modpow_naive(
        &self,
        e1: &BigUint,
        other: &BigUint,
        e2: &BigUint,
        modulus: &BigUint,
    ) -> BigUint {
        assert!(!modulus.is_zero(), "multi_modpow: zero modulus");
        let a = self.modpow_naive(e1, modulus);
        let b = other.modpow_naive(e2, modulus);
        &(&a * &b) % modulus
    }

    /// Integer square root (largest `r` with `r*r <= self`), by Newton's method.
    pub fn sqrt(&self) -> BigUint {
        if self.limbs.len() <= 1 {
            let v = self.to_u64().unwrap_or(0);
            // The f64 estimate can land one off in either direction near u64::MAX
            // (the conversion rounds across perfect squares); correct it exactly.
            let mut r = (v as f64).sqrt() as u64;
            while r as u128 * r as u128 > v as u128 {
                r -= 1;
            }
            while (r as u128 + 1) * (r as u128 + 1) <= v as u128 {
                r += 1;
            }
            return BigUint::from(r);
        }
        // Initial guess: 2^(ceil(bits/2)).
        let mut x = BigUint::one() << (self.bits().div_ceil(2) + 1);
        loop {
            // x' = (x + self / x) / 2
            let next = (&x + self / &x) >> 1u32;
            if next >= x {
                return x;
            }
            x = next;
        }
    }

    /// Truncated division with remainder.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_small(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Remainder modulo a word-sized divisor, without materialising the quotient.
    /// One pass of `u128` divisions — what the prime-generation trial-division sieve
    /// uses to seed its residue table.
    pub fn rem_u64(&self, divisor: u64) -> u64 {
        assert!(divisor != 0, "division by zero");
        let mut rem: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % divisor as u128;
        }
        rem as u64
    }

    fn div_rem_small(&self, divisor: u64) -> (BigUint, u64) {
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | limb as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) with 64-bit limbs.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("nonzero divisor").leading_zeros();
        let u = self << shift; // dividend, n + m limbs
        let v = divisor << shift; // divisor, n limbs
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs;
        un.push(0); // extra headroom limb u_{m+n}
        let vn = &v.limbs;
        let v_top = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q_hat from the top two dividend limbs against the top divisor limb.
            // Knuth's clamp keeps q_hat <= B-1 so q_hat * v_next cannot overflow u128.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let (mut q_hat, mut r_hat) = if un[j + n] as u128 == v_top {
                ((1u128 << 64) - 1, un[j + n - 1] as u128 + v_top)
            } else {
                (top / v_top, top % v_top)
            };
            // Refine q_hat down using the second divisor limb (at most twice).
            while r_hat >> 64 == 0 && q_hat * v_next > ((r_hat << 64) | un[j + n - 2] as u128) {
                q_hat -= 1;
                r_hat += v_top;
            }
            // Multiply-subtract: un[j..j+n+1] -= q_hat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let product = q_hat * vn[i] as u128 + carry;
                carry = product >> 64;
                let sub = un[j + i] as i128 - (product as u64) as i128 + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = sub as u64;
            if sub < 0 {
                // q_hat was one too large: add the divisor back.
                q_hat -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let sum = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = q_hat as u64;
        }
        un.truncate(n);
        let rem = BigUint::from_limbs(un) >> shift;
        (BigUint::from_limbs(q), rem)
    }

    pub(crate) fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u128 = 0;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Panics on underflow, matching upstream `BigUint` subtraction.
    pub(crate) fn sub_ref(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i128 = 0;
        for i in 0..self.limbs.len() {
            let diff =
                self.limbs[i] as i128 - other.limbs.get(i).copied().unwrap_or(0) as i128 + borrow;
            out.push(diff as u64);
            borrow = diff >> 64;
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    pub(crate) fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.limbs.len().min(other.limbs.len()) >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    /// Reference O(n²) schoolbook multiplication.  [`Self::mul_ref`] dispatches here
    /// below the Karatsuba threshold; it stays public so the differential proptests can
    /// pin the fast path against it.
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Karatsuba multiplication: split at `m` limbs, three recursive half-size products
    /// instead of four.  Only reached when both operands have at least
    /// [`KARATSUBA_THRESHOLD`] limbs — below that the O(n²) schoolbook loop's lower
    /// constant wins.  The crossover matters for Damgård–Jurik, whose ciphertext space
    /// `N^{s+1}` pushes multiplications to 3–4× the Paillier width.
    fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let m = self.limbs.len().min(other.limbs.len()) / 2;
        let split = |x: &BigUint| {
            let lo = BigUint::from_limbs(x.limbs[..m].to_vec());
            let hi = BigUint::from_limbs(x.limbs[m..].to_vec());
            (lo, hi)
        };
        let (a0, a1) = split(self);
        let (b0, b1) = split(other);
        let z0 = a0.mul_ref(&b0);
        let z2 = a1.mul_ref(&b1);
        // z1 = (a0+a1)(b0+b1) − z0 − z2 = a0·b1 + a1·b0  (never underflows)
        let z1 = (a0 + a1).mul_ref(&(b0 + b1)) - &z0 - &z2;
        (z2 << (128 * m as u64)) + (z1 << (64 * m as u64)) + z0
    }

    pub(crate) fn shl_bits(&self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    pub(crate) fn shr_bits(&self, bits: u64) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let high = if i + 1 < src.len() { src[i + 1] << (64 - bit_shift) } else { 0 };
                out.push((src[i] >> bit_shift) | high);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Zero for BigUint {
    fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }
    fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }
}

impl One for BigUint {
    fn one() -> Self {
        BigUint { limbs: vec![1] }
    }
    fn is_one(&self) -> bool {
        self.limbs == [1]
    }
}

impl ToPrimitive for BigUint {
    fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }
    fn to_i64(&self) -> Option<i64> {
        self.to_u64().and_then(|v| i64::try_from(v).ok())
    }
}

impl Integer for BigUint {
    fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }
    fn lcm(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        self / self.gcd(other) * other
    }
    fn extended_gcd(&self, _other: &Self) -> ExtendedGcd<Self> {
        unimplemented!("extended_gcd needs signed coefficients; use BigInt")
    }
    fn is_even(&self) -> bool {
        self.limbs.first().map(|l| l & 1 == 0).unwrap_or(true)
    }
    fn div_rem(&self, other: &Self) -> (Self, Self) {
        BigUint::div_rem(self, other)
    }
    fn div_floor(&self, other: &Self) -> Self {
        self / other
    }
    fn mod_floor(&self, other: &Self) -> Self {
        self % other
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                BigUint::from_limbs(vec![v as u64])
            }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<bool> for BigUint {
    fn from(v: bool) -> Self {
        BigUint::from_limbs(vec![v as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

// Binary operators: implement the four owned/borrowed combinations by delegating to the
// reference-based core routines.
macro_rules! forward_binop {
    ($trait:ident, $method:ident, $core:ident) => {
        impl std::ops::$trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$core(rhs)
            }
        }
        impl std::ops::$trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$core(&rhs)
            }
        }
        impl std::ops::$trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$core(rhs)
            }
        }
        impl std::ops::$trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$core(&rhs)
            }
        }
    };
}

impl BigUint {
    fn div_core(&self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
    fn rem_core(&self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);
forward_binop!(Div, div, div_core);
forward_binop!(Rem, rem, rem_core);

macro_rules! forward_assign {
    ($trait:ident, $method:ident, $core:ident) => {
        impl std::ops::$trait<&BigUint> for BigUint {
            fn $method(&mut self, rhs: &BigUint) {
                *self = self.$core(rhs);
            }
        }
        impl std::ops::$trait<BigUint> for BigUint {
            fn $method(&mut self, rhs: BigUint) {
                *self = self.$core(&rhs);
            }
        }
    };
}

forward_assign!(AddAssign, add_assign, add_ref);
forward_assign!(SubAssign, sub_assign, sub_ref);
forward_assign!(MulAssign, mul_assign, mul_ref);
forward_assign!(DivAssign, div_assign, div_core);
forward_assign!(RemAssign, rem_assign, rem_core);

macro_rules! impl_shifts {
    ($($t:ty),*) => {$(
        impl std::ops::Shl<$t> for &BigUint {
            type Output = BigUint;
            fn shl(self, bits: $t) -> BigUint {
                self.shl_bits(bits as u64)
            }
        }
        impl std::ops::Shl<$t> for BigUint {
            type Output = BigUint;
            fn shl(self, bits: $t) -> BigUint {
                self.shl_bits(bits as u64)
            }
        }
        impl std::ops::Shr<$t> for &BigUint {
            type Output = BigUint;
            fn shr(self, bits: $t) -> BigUint {
                self.shr_bits(bits as u64)
            }
        }
        impl std::ops::Shr<$t> for BigUint {
            type Output = BigUint;
            fn shr(self, bits: $t) -> BigUint {
                self.shr_bits(bits as u64)
            }
        }
        impl std::ops::ShlAssign<$t> for BigUint {
            fn shl_assign(&mut self, bits: $t) {
                *self = self.shl_bits(bits as u64);
            }
        }
        impl std::ops::ShrAssign<$t> for BigUint {
            fn shr_assign(&mut self, bits: $t) {
                *self = self.shr_bits(bits as u64);
            }
        }
    )*};
}
impl_shifts!(u8, u16, u32, u64, usize, i32);

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19-decimal-digit chunks (largest power of ten fitting in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.last().expect("nonzero has chunks").to_string();
        for chunk in chunks.iter().rev().skip(1) {
            out.push_str(&format!("{chunk:019}"));
        }
        f.write_str(&out)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing a [`BigUint`] / [`crate::BigInt`] from a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid big integer literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigUint {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigIntError);
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            let digit = c.to_digit(10).ok_or(ParseBigIntError)?;
            acc = acc * &ten + BigUint::from(digit as u64);
        }
        Ok(acc)
    }
}

impl serde::Serialize for BigUint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for BigUint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => {
                s.parse().map_err(|_| serde::Error::custom("invalid BigUint literal"))
            }
            serde::Value::U64(n) => Ok(BigUint::from(*n)),
            _ => Err(serde::Error::custom("expected a BigUint string")),
        }
    }
}

impl std::iter::Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> Self {
        iter.fold(BigUint::zero(), |acc, x| acc + x)
    }
}

impl<'a> std::iter::Sum<&'a BigUint> for BigUint {
    fn sum<I: Iterator<Item = &'a BigUint>>(iter: I) -> Self {
        iter.fold(BigUint::zero(), |acc, x| acc + x)
    }
}

impl std::iter::Product for BigUint {
    fn product<I: Iterator<Item = BigUint>>(iter: I) -> Self {
        iter.fold(BigUint::one(), |acc, x| acc * x)
    }
}
