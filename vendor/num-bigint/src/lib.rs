//! Offline workalike of the subset of `num-bigint 0.4` this workspace uses
//! (see `vendor/README.md` for the vendoring policy).
//!
//! Implements [`BigUint`] / [`BigInt`] from scratch on 64-bit limbs: schoolbook
//! add/sub with Karatsuba multiplication above a limb threshold, Knuth Algorithm D
//! division, Montgomery (CIOS) fixed-window `modpow` for odd moduli (naive
//! square-and-multiply fallback for even ones, reusable per-modulus contexts via
//! [`MontgomeryContext`]), Euclidean GCD / extended GCD, decimal formatting/parsing,
//! and the `rand` / `serde` integrations (`RandBigInt`, string-based serialization)
//! the workspace relies on.

mod bigint;
mod biguint;
mod montgomery;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, ParseBigIntError};
pub use montgomery::{FixedBaseTable, MontgomeryContext};

use num_traits::Zero;
use rand::RngCore;

/// Random sampling of big integers, implemented for every [`rand::RngCore`].
pub trait RandBigInt {
    /// A uniformly random integer with at most `bits` bits.
    fn gen_biguint(&mut self, bits: u64) -> BigUint;
    /// A uniformly random integer in `[0, bound)`.
    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint;
    /// A uniformly random integer in `[low, high)`.
    fn gen_biguint_range(&mut self, low: &BigUint, high: &BigUint) -> BigUint;
}

impl<R: RngCore + ?Sized> RandBigInt for R {
    fn gen_biguint(&mut self, bits: u64) -> BigUint {
        let limbs = bits.div_ceil(64);
        let mut out = Vec::with_capacity(limbs as usize);
        for _ in 0..limbs {
            out.push(self.next_u64());
        }
        // Mask the top limb down to the requested bit count.
        let extra = (limbs * 64 - bits) as u32;
        if extra > 0 {
            if let Some(top) = out.last_mut() {
                *top >>= extra;
            }
        }
        BigUint::from_limbs(out)
    }

    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "gen_biguint_below: zero bound");
        let bits = bound.bits();
        // Rejection sampling: uniform `bits`-bit draws until one lands below `bound`.
        loop {
            let candidate = self.gen_biguint(bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    fn gen_biguint_range(&mut self, low: &BigUint, high: &BigUint) -> BigUint {
        assert!(low < high, "gen_biguint_range: empty range");
        low + self.gen_biguint_below(&(high - low))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_integer::Integer;
    use num_traits::{One, Zero};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn arithmetic_matches_u128() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.next_u64() as u128 * 7 + rng.next_u64() as u128;
            let y = (rng.next_u64() as u128) | 1;
            assert_eq!(b(x) + b(y), b(x + y));
            if x >= y {
                assert_eq!(b(x) - b(y), b(x - y));
            }
            assert_eq!(b(x >> 64) * b(y), b((x >> 64) * y));
            assert_eq!(b(x) / b(y), b(x / y));
            assert_eq!(b(x) % b(y), b(x % y));
        }
    }

    #[test]
    fn knuth_division_edge_cases() {
        // Divisor top limb with high bit set, add-back path, multi-limb remainders.
        let big = (BigUint::one() << 192u32) - BigUint::one();
        let div = (BigUint::one() << 128u32) - (BigUint::one() << 5u32);
        let (q, r) = big.div_rem(&div);
        assert_eq!(&q * &div + &r, big);
        assert!(r < div);

        let a = BigUint::from_bytes_be(&[0xff; 40]);
        let d = BigUint::from_bytes_be(&[0x80, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
    }

    #[test]
    fn division_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let a = rng.gen_biguint(300);
            let mut d = rng.gen_biguint(140);
            if d.is_zero() {
                d = BigUint::one();
            }
            let (q, r) = a.div_rem(&d);
            assert_eq!(&q * &d + &r, a);
            assert!(r < d);
        }
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(
            b(4).modpow(&b(13), &b(497)),
            b(445) // 4^13 mod 497, classic test vector
        );
        assert_eq!(b(2).modpow(&b(0), &b(7)), b(1));
        assert_eq!(b(0).modpow(&b(5), &b(7)), b(0));
        // Fermat: a^(p-1) = 1 mod p.
        let p = b(1_000_000_007);
        assert_eq!(b(123_456).modpow(&(&p - BigUint::one()), &p), b(1));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            BigUint::zero(),
            b(1),
            b(10_000_000_000_000_000_000),
            b(123_456_789_012_345_678_901_234_567_890),
            (BigUint::one() << 200u32) + b(12345),
        ];
        for v in cases {
            let s = v.to_string();
            assert_eq!(s.parse::<BigUint>().unwrap(), v);
        }
        assert_eq!(b(10_000_000_000_000_000_000u128).to_string(), "10000000000000000000");
    }

    #[test]
    fn signed_arithmetic() {
        let a = BigInt::from(-17i64);
        let m = BigInt::from(5i64);
        assert_eq!(&a % &m, BigInt::from(-2i64)); // truncated remainder
        assert_eq!(a.mod_floor(&m), BigInt::from(3i64));
        assert_eq!(&a / &m, BigInt::from(-3i64)); // truncated quotient
        assert_eq!(BigInt::from(-4i64) + BigInt::from(7i64), BigInt::from(3i64));
        assert_eq!(BigInt::from(-4i64) * BigInt::from(-5i64), BigInt::from(20i64));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let a = BigInt::from(240i64);
        let m = BigInt::from(46i64);
        let e = a.extended_gcd(&m);
        assert_eq!(e.gcd, BigInt::from(2i64));
        assert_eq!(&a * &e.x + &m * &e.y, e.gcd);
    }

    #[test]
    fn bits_and_bit_ops() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!((BigUint::one() << 130u32).bits(), 131);
        let mut x = BigUint::zero();
        x.set_bit(130, true);
        assert_eq!(x, BigUint::one() << 130u32);
        x.set_bit(130, false);
        assert!(x.is_zero());
        assert_eq!((BigUint::one() << 66u32).trailing_zeros(), Some(66));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BigUint::from_bytes_be(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(BigUint::from_bytes_le(&v.to_bytes_le()), v);
    }

    #[test]
    fn sqrt_is_floor() {
        for v in [0u128, 1, 2, 3, 4, 15, 16, 17, u64::MAX as u128, 1 << 80, (1 << 80) + 1] {
            let r = b(v).sqrt();
            assert!(&r * &r <= b(v));
            let r1 = &r + BigUint::one();
            assert!(&r1 * &r1 > b(v));
        }
    }

    #[test]
    fn random_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = (BigUint::one() << 100u32) + b(12345);
        for _ in 0..200 {
            assert!(rng.gen_biguint_below(&bound) < bound);
            assert!(rng.gen_biguint(80).bits() <= 80);
        }
    }

    #[test]
    fn gcd_lcm_biguint() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(4).lcm(&b(6)), b(12));
        assert_eq!(b(0).gcd(&b(5)), b(5));
    }
}
