//! Montgomery-form modular arithmetic for odd moduli.
//!
//! A [`MontgomeryContext`] owns every quantity that depends only on the modulus `n`
//! (odd, `n > 1`): the limb count `k`, `n' = -n⁻¹ mod 2⁶⁴` (one Newton iteration chain,
//! no division), `R mod n` and `R² mod n` for `R = 2^{64k}`.  Building a context costs
//! two divisions; every subsequent multiplication under the modulus is a CIOS
//! (Coarsely Integrated Operand Scanning) Montgomery multiplication — no division at
//! all — and [`MontgomeryContext::modpow`] walks the exponent in fixed 4-bit windows
//! (a 16-entry table, four squarings per window, one table multiplication).
//!
//! Callers that repeatedly exponentiate under one modulus (Paillier's `N²`,
//! Damgård–Jurik's `N^{s+1}`, a Miller–Rabin candidate) should build the context once
//! and reuse it; [`crate::BigUint::modpow`] builds a throwaway context per call when
//! the modulus is odd, and falls back to the naive square-and-multiply path
//! ([`crate::BigUint::modpow_naive`]) when it is even, because Montgomery reduction
//! requires `gcd(n, 2⁶⁴) = 1`.

use num_traits::{One, Zero};

use crate::BigUint;

/// Exponent window width in bits (16-entry precomputed table).
const WINDOW_BITS: u64 = 4;

/// Window width of the joint [`MontgomeryContext::multi_modpow`] table: 2 bits per
/// exponent, so the combined table has 4 × 4 = 16 entries.
const MULTI_WINDOW_BITS: u64 = 2;

/// Precomputed powers of one fixed base under one [`MontgomeryContext`], built once
/// and reused across many exponentiations of that base.
///
/// `rows[i][d - 1]` holds `base^(d · 2^(4·i))` in Montgomery form for digit
/// `d = 1..=15`, one row per 4-bit exponent window up to `max_bits`.  Evaluating
/// `base^e` with [`MontgomeryContext::fixed_base_modpow`] then costs one Montgomery
/// multiplication per **nonzero** window of `e` — no squarings at all — versus four
/// squarings plus a table multiplication per window for the sliding-window
/// [`MontgomeryContext::modpow`].  For the nonce exponentiations of Paillier /
/// Damgård–Jurik (same base `H`, thousands of random exponents) that is roughly a
/// 5× operation-count reduction once the one-time table build (15 multiplications
/// per row) is amortised.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedBaseTable {
    /// `rows[i][d - 1] = base^(d · 2^(4i))` in Montgomery form, `d = 1..=15`.
    rows: Vec<Vec<Vec<u64>>>,
    /// Largest exponent bit-length the rows cover.
    max_bits: u64,
}

impl FixedBaseTable {
    /// Largest exponent bit-length this table covers; longer exponents make
    /// [`MontgomeryContext::fixed_base_modpow`] fall back to the generic window path.
    pub fn max_bits(&self) -> u64 {
        self.max_bits
    }
}

/// Precomputed Montgomery parameters for one odd modulus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontgomeryContext {
    /// The modulus `n` (odd, > 1), little-endian limbs, length `k` (no padding).
    n: Vec<u64>,
    /// The modulus padded to `k + 1` limbs — the operand of the conditional final
    /// subtraction, precomputed so the hot multiply path never re-allocates it.
    n_padded: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R mod n`, the Montgomery form of 1, padded to `k` limbs.
    one_mont: Vec<u64>,
    /// `R² mod n`, padded to `k` limbs; multiplying by it converts into Montgomery form.
    r_squared: Vec<u64>,
}

/// `-x⁻¹ mod 2⁶⁴` for odd `x`, by Newton–Hensel lifting (5 iterations double the
/// correct low bits from 1 to 64; no division involved).
fn neg_inv_u64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv: u64 = x; // correct to 3 bits already for odd x
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

/// Pad `v`'s limbs to exactly `k` entries (the value must fit).
fn padded(v: &BigUint, k: usize) -> Vec<u64> {
    let mut limbs = v.limbs.clone();
    debug_assert!(limbs.len() <= k);
    limbs.resize(k, 0);
    limbs
}

/// `a >= b` over equal-length little-endian limb slices.
fn limbs_ge(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` over equal-length little-endian limb slices (no final borrow allowed).
fn limbs_sub_assign(a: &mut [u64], b: &[u64]) {
    let mut borrow: i128 = 0;
    for i in 0..a.len() {
        let diff = a[i] as i128 - b[i] as i128 + borrow;
        a[i] = diff as u64;
        borrow = diff >> 64;
    }
    debug_assert_eq!(borrow, 0);
}

impl MontgomeryContext {
    /// Build the context for `modulus`, or `None` if the modulus is even or < 3
    /// (Montgomery reduction needs an odd modulus; 1 has no meaningful residues).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() || modulus.limbs[0] & 1 == 0 {
            return None;
        }
        let k = modulus.limbs.len();
        let n0_inv = neg_inv_u64(modulus.limbs[0]);
        // R mod n and R² mod n, via one shift-division each (R = 2^{64k}).
        let r_mod_n = (BigUint::one() << (64 * k as u64)) % modulus;
        let r2_mod_n = (&r_mod_n * &r_mod_n) % modulus;
        let mut n_padded = modulus.limbs.clone();
        n_padded.push(0);
        Some(MontgomeryContext {
            n: modulus.limbs.clone(),
            n_padded,
            n0_inv,
            one_mont: padded(&r_mod_n, k),
            r_squared: padded(&r2_mod_n, k),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// Number of 64-bit limbs of the modulus.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a · b · R⁻¹ mod n` for `a, b < n`
    /// given as `k`-limb slices; the result is a `k`-limb vector `< n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        let n = &self.n;
        // t has k+1 limbs plus a one-bit overflow flag folded into t_extra.
        let mut t = vec![0u64; k + 1];
        let mut t_extra: u64 = 0; // at most 1
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t_extra += (cur >> 64) as u64;

            // m = t[0] · n' mod 2⁶⁴;  t += m · n  (zeroes t[0])
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t_extra += (cur >> 64) as u64;
            debug_assert_eq!(t[0], 0);

            // t /= 2⁶⁴
            for j in 0..k {
                t[j] = t[j + 1];
            }
            t[k] = t_extra;
            t_extra = 0;
        }
        // t < 2n here; one conditional subtraction normalises into [0, n).
        if t[k] != 0 || limbs_ge(&t[..k], n) {
            limbs_sub_assign(&mut t, &self.n_padded);
        }
        t.truncate(k);
        t
    }

    /// Montgomery squaring: `a² · R⁻¹ mod n` via the diagonal trick (half the limb
    /// products of a general multiplication) followed by a separated Montgomery
    /// reduction pass.  Squarings are ~80% of the work in a windowed exponentiation,
    /// which is why they get their own routine.
    fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let k = self.k();
        let n = &self.n;
        // ---- wide = a², 2k+1 limbs (extra headroom for the doubling carry). ----------
        let mut wide = vec![0u64; 2 * k + 1];
        for i in 0..k {
            // Off-diagonal products a[i]·a[j], j > i.
            let mut carry: u128 = 0;
            for j in (i + 1)..k {
                let cur = wide[i + j] as u128 + a[i] as u128 * a[j] as u128 + carry;
                wide[i + j] = cur as u64;
                carry = cur >> 64;
            }
            wide[i + k] = carry as u64; // position i+k was untouched so far
        }
        // Double the off-diagonal half...
        let mut carry = 0u64;
        for w in wide.iter_mut() {
            let doubled = (*w as u128) << 1 | carry as u128;
            *w = doubled as u64;
            carry = (doubled >> 64) as u64;
        }
        // ...and add the diagonal squares a[i]² at positions 2i.
        let mut carry: u128 = 0;
        for i in 0..k {
            let sq = a[i] as u128 * a[i] as u128;
            let lo = wide[2 * i] as u128 + (sq as u64) as u128 + carry;
            wide[2 * i] = lo as u64;
            let hi = wide[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
            wide[2 * i + 1] = hi as u64;
            carry = hi >> 64;
        }
        let mut j = 2 * k;
        while carry != 0 {
            let cur = wide[j] as u128 + carry;
            wide[j] = cur as u64;
            carry = cur >> 64;
            j += 1;
        }

        // ---- Montgomery-reduce the 2k-limb square in place. --------------------------
        let mut overflow: u64 = 0; // carries that run off wide[i + k]
        for i in 0..k {
            let m = wide[i].wrapping_mul(self.n0_inv);
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = wide[i + j] as u128 + m as u128 * n[j] as u128 + carry;
                wide[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Propagate the reduction carry into the upper half.
            let mut j = i + k;
            while carry != 0 {
                if j < wide.len() {
                    let cur = wide[j] as u128 + carry;
                    wide[j] = cur as u64;
                    carry = cur >> 64;
                } else {
                    overflow += carry as u64;
                    carry = 0;
                }
                j += 1;
            }
        }
        let mut t: Vec<u64> = wide[k..2 * k + 1].to_vec();
        t[k] = t[k].wrapping_add(overflow);
        if t[k] != 0 || limbs_ge(&t[..k], n) {
            limbs_sub_assign(&mut t, &self.n_padded);
        }
        t.truncate(k);
        t
    }

    /// Convert `x < n` (as a BigUint) into Montgomery form (`k`-limb vector).
    fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        self.mont_mul(&padded(x, self.k()), &self.r_squared)
    }

    /// Convert a `k`-limb Montgomery-form value back to a plain `BigUint`.
    fn mont_reduce(&self, x: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(x, &one))
    }

    /// `a · b mod n` (plain representation in, plain representation out).
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let a = a % &self.modulus();
        let b = b % &self.modulus();
        let am = self.to_mont(&a);
        let bm = self.to_mont(&b);
        self.mont_reduce(&self.mont_mul(&am, &bm))
    }

    /// `base ^ exponent mod n` by fixed 4-bit-window exponentiation over Montgomery
    /// form.  Agrees bit-for-bit with [`crate::BigUint::modpow_naive`].
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        let modulus = self.modulus();
        let base = base % &modulus;
        if exponent.is_zero() {
            return BigUint::one() % &modulus;
        }

        let base_m = self.to_mont(&base);
        let nbits = exponent.bits();

        // Short exponents (e.g. the repeated squarings of Miller–Rabin) don't amortise
        // a 16-entry table; scan them bit-by-bit in Montgomery form instead.
        if nbits <= 2 * WINDOW_BITS {
            let mut acc = base_m.clone();
            for pos in (0..nbits.saturating_sub(1)).rev() {
                acc = self.mont_sqr(&acc);
                if exponent.bit(pos) {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
            return self.mont_reduce(&acc);
        }

        // table[w] = baseᵂ in Montgomery form, w = 0..16.
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(1 << WINDOW_BITS);
        table.push(self.one_mont.clone());
        table.push(base_m.clone());
        for w in 2..(1usize << WINDOW_BITS) {
            table.push(self.mont_mul(&table[w - 1], &base_m));
        }

        let nwindows = nbits.div_ceil(WINDOW_BITS);
        let mut acc = self.one_mont.clone();
        let mut started = false;
        for w in (0..nwindows).rev() {
            if started {
                for _ in 0..WINDOW_BITS {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut window = 0usize;
            for bit in (0..WINDOW_BITS).rev() {
                let pos = w * WINDOW_BITS + bit;
                window <<= 1;
                if pos < nbits && exponent.bit(pos) {
                    window |= 1;
                }
            }
            if window != 0 {
                acc = self.mont_mul(&acc, &table[window]);
                started = true;
            }
        }
        if !started {
            // exponent had only zero windows — impossible for a nonzero exponent,
            // but keep the identity for safety.
            return BigUint::one() % &modulus;
        }
        self.mont_reduce(&acc)
    }

    /// Build a [`FixedBaseTable`] of `base`'s powers covering exponents up to
    /// `max_exponent_bits` bits.  One-time cost: 15 Montgomery multiplications plus one
    /// advance multiplication per 4-bit window (`⌈max_exponent_bits / 4⌉` windows).
    pub fn precompute_fixed_base(&self, base: &BigUint, max_exponent_bits: u64) -> FixedBaseTable {
        let max_bits = max_exponent_bits.max(1);
        let nwindows = max_bits.div_ceil(WINDOW_BITS);
        let mut cur = self.to_mont(&(base % &self.modulus()));
        let mut rows = Vec::with_capacity(nwindows as usize);
        for _ in 0..nwindows {
            // row = [cur¹, cur², …, cur¹⁵]
            let mut row = Vec::with_capacity((1 << WINDOW_BITS) - 1);
            row.push(cur.clone());
            for d in 2..(1usize << WINDOW_BITS) {
                let next = self.mont_mul(&row[d - 2], &cur);
                row.push(next);
            }
            // Advance to the next window's unit: cur ← cur¹⁶ = cur¹⁵ · cur.
            cur = self.mont_mul(row.last().expect("nonempty row"), &cur);
            rows.push(row);
        }
        FixedBaseTable { rows, max_bits }
    }

    /// `base ^ exponent mod n` using a [`FixedBaseTable`] built for `base` by
    /// [`Self::precompute_fixed_base`]: one Montgomery multiplication per nonzero 4-bit
    /// window of the exponent, no squarings.  Exponents longer than the table's
    /// coverage fall back to the generic window path so the result is always correct.
    /// Agrees bit-for-bit with [`crate::BigUint::modpow_naive`] on the table's base.
    pub fn fixed_base_modpow(&self, table: &FixedBaseTable, exponent: &BigUint) -> BigUint {
        if exponent.bits() > table.max_bits {
            // Out of table coverage: reconstruct the base (row 0, digit 1) and take the
            // generic path.  Cold by construction — callers size tables to their draws.
            let base = self.mont_reduce(&table.rows[0][0]);
            return self.modpow(&base, exponent);
        }
        if exponent.is_zero() {
            return BigUint::one() % &self.modulus();
        }
        let mut acc: Option<Vec<u64>> = None;
        let nbits = exponent.bits();
        let nwindows = nbits.div_ceil(WINDOW_BITS);
        for w in 0..nwindows {
            let mut digit = 0usize;
            for bit in (0..WINDOW_BITS).rev() {
                let pos = w * WINDOW_BITS + bit;
                digit <<= 1;
                if pos < nbits && exponent.bit(pos) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                let entry = &table.rows[w as usize][digit - 1];
                acc = Some(match acc {
                    Some(acc) => self.mont_mul(&acc, entry),
                    None => entry.clone(),
                });
            }
        }
        match acc {
            Some(acc) => self.mont_reduce(&acc),
            None => BigUint::one() % &self.modulus(),
        }
    }

    /// Joint exponentiation `b1^e1 · b2^e2 mod n` by Strauss–Shamir interleaving: one
    /// shared squaring chain over `max(bits(e1), bits(e2))` bits and a 16-entry
    /// `b1^i·b2^j` table (2-bit windows per base), roughly halving the work of two
    /// separate [`Self::modpow`] calls.  Agrees bit-for-bit with
    /// [`crate::BigUint::multi_modpow_naive`].
    pub fn multi_modpow(&self, b1: &BigUint, e1: &BigUint, b2: &BigUint, e2: &BigUint) -> BigUint {
        let modulus = self.modulus();
        if e1.is_zero() && e2.is_zero() {
            return BigUint::one() % &modulus;
        }
        let b1m = self.to_mont(&(b1 % &modulus));
        let b2m = self.to_mont(&(b2 % &modulus));

        // table[(i << 2) | j] = b1^i · b2^j in Montgomery form, i, j = 0..4.
        let side = 1usize << MULTI_WINDOW_BITS;
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(side * side);
        for i in 0..side {
            for j in 0..side {
                let entry = match (i, j) {
                    (0, 0) => self.one_mont.clone(),
                    (0, 1) => b2m.clone(),
                    (1, 0) => b1m.clone(),
                    (_, 0) => self.mont_mul(&table[(i - 1) << MULTI_WINDOW_BITS], &b1m),
                    _ => self.mont_mul(&table[(i << MULTI_WINDOW_BITS as usize) | (j - 1)], &b2m),
                };
                table.push(entry);
            }
        }

        let nbits = e1.bits().max(e2.bits());
        let nwindows = nbits.div_ceil(MULTI_WINDOW_BITS);
        let mut acc = self.one_mont.clone();
        let mut started = false;
        for w in (0..nwindows).rev() {
            if started {
                for _ in 0..MULTI_WINDOW_BITS {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut w1 = 0usize;
            let mut w2 = 0usize;
            for bit in (0..MULTI_WINDOW_BITS).rev() {
                let pos = w * MULTI_WINDOW_BITS + bit;
                w1 <<= 1;
                w2 <<= 1;
                if pos < nbits && e1.bit(pos) {
                    w1 |= 1;
                }
                if pos < nbits && e2.bit(pos) {
                    w2 |= 1;
                }
            }
            let idx = (w1 << MULTI_WINDOW_BITS as usize) | w2;
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
                started = true;
            }
        }
        if !started {
            return BigUint::one() % &modulus;
        }
        self.mont_reduce(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryContext::new(&BigUint::zero()).is_none());
        assert!(MontgomeryContext::new(&BigUint::one()).is_none());
        assert!(MontgomeryContext::new(&b(4096)).is_none());
        assert!(MontgomeryContext::new(&b(3)).is_some());
    }

    #[test]
    fn neg_inv_is_correct() {
        for x in [1u64, 3, 5, 0xffff_ffff_ffff_ffff, 0x1234_5678_9abc_def1] {
            let ninv = neg_inv_u64(x);
            assert_eq!(x.wrapping_mul(ninv.wrapping_neg()), 1, "x = {x}");
        }
    }

    #[test]
    fn mul_mod_matches_plain() {
        let n = b(1_000_000_007) * b(998_244_353) * b(2) + BigUint::one(); // odd, multi-limb
        let ctx = MontgomeryContext::new(&n).unwrap();
        let a = b(123_456_789_123_456_789);
        let x = b(987_654_321_987_654_321);
        assert_eq!(ctx.mul_mod(&a, &x), (&a * &x) % &n);
    }

    #[test]
    fn modpow_matches_naive_small() {
        let n = b(497); // odd
        let ctx = MontgomeryContext::new(&n).unwrap();
        assert_eq!(ctx.modpow(&b(4), &b(13)), b(445));
        assert_eq!(ctx.modpow(&b(0), &b(0)), b(1));
        assert_eq!(ctx.modpow(&b(0), &b(5)), b(0));
        assert_eq!(ctx.modpow(&b(496), &b(2)), b(1));
        let p = b(1_000_000_007);
        let ctx = MontgomeryContext::new(&p).unwrap();
        assert_eq!(ctx.modpow(&b(123_456), &(&p - BigUint::one())), b(1));
    }

    #[test]
    fn modpow_matches_naive_multi_limb() {
        // 2^127 - 1 (Mersenne prime, 2 limbs)
        let p = (BigUint::one() << 127u32) - BigUint::one();
        let ctx = MontgomeryContext::new(&p).unwrap();
        for base in [2u128, 3, 65537, u128::MAX - 5] {
            let base = b(base);
            let exp = &p - BigUint::one();
            assert_eq!(ctx.modpow(&base, &exp), base.modpow_naive(&exp, &p));
        }
    }

    #[test]
    fn fixed_base_table_matches_naive() {
        let p = (BigUint::one() << 127u32) - BigUint::one();
        let ctx = MontgomeryContext::new(&p).unwrap();
        let base = b(0xDEAD_BEEF_1234_5678);
        let table = ctx.precompute_fixed_base(&base, 128);
        assert_eq!(table.max_bits(), 128);
        for exp in [0u128, 1, 2, 15, 16, 17, 255, 1 << 64, u128::MAX - 3] {
            let exp = b(exp);
            assert_eq!(
                ctx.fixed_base_modpow(&table, &exp),
                base.modpow_naive(&exp, &p),
                "exp = {exp:?}"
            );
        }
        // Sparse exponent: only zero windows except one high digit.
        let sparse = BigUint::one() << 120u32;
        assert_eq!(ctx.fixed_base_modpow(&table, &sparse), base.modpow_naive(&sparse, &p));
    }

    #[test]
    fn fixed_base_table_falls_back_past_coverage() {
        let p = b(1_000_000_007);
        let ctx = MontgomeryContext::new(&p).unwrap();
        let base = b(123_456_789);
        let table = ctx.precompute_fixed_base(&base, 16);
        // A 40-bit exponent exceeds the 16-bit table; the fallback must still agree.
        let exp = b(0xAB_CDEF_0123);
        assert_eq!(ctx.fixed_base_modpow(&table, &exp), base.modpow_naive(&exp, &p));
    }

    #[test]
    fn multi_modpow_matches_naive() {
        let p = (BigUint::one() << 127u32) - BigUint::one();
        let ctx = MontgomeryContext::new(&p).unwrap();
        let b1 = b(987_654_321_123);
        let b2 = b(0xFEED_FACE_CAFE);
        for (e1, e2) in [
            (0u128, 0u128),
            (0, 5),
            (5, 0),
            (1, 1),
            (3, 200),
            (u128::MAX - 1, 17),
            (1 << 100, (1 << 90) + 3),
        ] {
            let (e1, e2) = (b(e1), b(e2));
            assert_eq!(
                ctx.multi_modpow(&b1, &e1, &b2, &e2),
                b1.multi_modpow_naive(&e1, &b2, &e2, &p),
                "e1 = {e1:?}, e2 = {e2:?}"
            );
        }
    }

    #[test]
    fn multi_modpow_biguint_wrapper_handles_even_modulus() {
        let even = b(1 << 20);
        let (b1, b2) = (b(123_457), b(76_543));
        let (e1, e2) = (b(12_345), b(67_891));
        assert_eq!(
            b1.multi_modpow(&e1, &b2, &e2, &even),
            b1.multi_modpow_naive(&e1, &b2, &e2, &even)
        );
        let odd = b(1_000_000_007);
        assert_eq!(
            b1.multi_modpow(&e1, &b2, &e2, &odd),
            b1.multi_modpow_naive(&e1, &b2, &e2, &odd)
        );
    }
}
