//! Offline workalike of the derive-based `serde` API surface this workspace uses
//! (see `vendor/README.md` for the vendoring policy).
//!
//! The workspace only ever derives `Serialize` / `Deserialize` and round-trips through
//! `serde_json`, so instead of upstream serde's full visitor-based data model this
//! stand-in uses a simple self-describing [`Value`] tree: `Serialize` lowers a type
//! into a [`Value`], `Deserialize` rebuilds it, and the vendored `serde_json` renders
//! and parses JSON from that tree.  The wire format is self-consistent (everything
//! serialized here deserializes here) but is not guaranteed byte-identical to upstream
//! serde_json's output for every type shape.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A raw byte string (upstream serde's `bytes` type).  `serde_json` renders it as a
    /// lowercase hex string; the binary wire codec in `sectopk-protocols` writes it raw.
    Bytes(Vec<u8>),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, map entries, enum tagging).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced while (de)serializing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        Error(format!("invalid type: expected {expected}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Serialize `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::invalid_type("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::invalid_type("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Too wide for the numeric variants; serialize as a decimal string.
        Value::Str(self.to_string())
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| Error::custom("invalid u128")),
            Value::U64(n) => Ok(*n as u128),
            other => Err(Error::invalid_type("u128", other)),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::invalid_type("float", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::invalid_type("char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of length {N}, found {}",
                items.len()
            )));
        }
        items.try_into().map_err(|_| Error::custom("array conversion failed"))
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(Error::custom("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(Error::invalid_type("tuple sequence", other)),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}
impl<K: Deserialize + std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = k.parse().map_err(|_| Error::custom("invalid map key"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(Error::invalid_type("map", other)),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = k.parse().map_err(|_| Error::custom("invalid map key"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(Error::invalid_type("map", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::invalid_type("null", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.get("secs").ok_or_else(|| Error::missing_field("secs"))?)?;
        let nanos = u32::from_value(v.get("nanos").ok_or_else(|| Error::missing_field("nanos"))?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
