//! Offline workalike of the subset of `serde_json` this workspace uses
//! (see `vendor/README.md` for the vendoring policy).
//!
//! Renders and parses JSON through the vendored serde crate's [`Value`] tree.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error produced while rendering or parsing JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Bytes(b) => {
            // JSON has no byte-string type; render as a lowercase hex string (parsing
            // returns `Value::Str`, which byte-oriented deserializers accept as hex).
            let mut hex = String::with_capacity(b.len() * 2);
            for byte in b {
                hex.push(char::from_digit((byte >> 4) as u32, 16).unwrap());
                hex.push(char::from_digit((byte & 0xf) as u32, 16).unwrap());
            }
            write_string(out, &hex);
        }
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer; reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so it's valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line1\nline2 \"quoted\" back\\slash\tτ";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("5").unwrap(), Some(5));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 123456.789, 1e-12] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
