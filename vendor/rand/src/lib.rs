//! Offline workalike of the subset of the `rand 0.8` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! API-compatible stand-ins for its external dependencies (see `vendor/README.md`).
//! This crate reimplements the traits (`RngCore`, `CryptoRng`, `Rng`, `SeedableRng`,
//! `SliceRandom`, `Distribution`) and the `StdRng` generator with the same *shape* as
//! rand 0.8; the generated streams are deterministic per seed but are **not**
//! byte-compatible with the upstream `StdRng` (which is ChaCha12 — here it is
//! xoshiro256** seeded via SplitMix64).  Nothing in the workspace depends on the exact
//! stream, only on determinism and statistical quality.

/// The core trait every generator implements: raw 32/64-bit output and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for generators acceptable in cryptographic contexts.
///
/// Mirrors `rand::CryptoRng`.  The vendored [`rngs::StdRng`] carries the marker for API
/// compatibility with upstream; like upstream's test usage, the workspace only relies on
/// it for deterministic simulation, not production key material.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Sampling of a value of this type from a uniform-ish "standard" distribution.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A type usable as the bound of `Rng::gen_range`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

// Draw a u64 below `bound` (exclusive, bound > 0) without modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128).wrapping_sub(low as i128) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t>::standard_sample(rng);
                }
                low.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        let unit = f64::standard_sample(rng);
        low + unit * (high - low)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, high)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::standard_sample(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// xoshiro256** with SplitMix64 seed expansion — deterministic per seed, good
    /// statistical quality, **not** stream-compatible with upstream rand's ChaCha12
    /// `StdRng` (nothing here depends on the exact stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0u64; 4] {
                // xoshiro must not be seeded with all zeros.
                let mut st = 0x853C49E6748FEA9Bu64;
                for limb in &mut s {
                    *limb = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let mut s = [0u64; 4];
            for limb in &mut s {
                *limb = splitmix64(&mut st);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** core step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    impl CryptoRng for StdRng {}
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution traits (`rand::distributions`).
pub mod distributions {

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (what `Rng::gen` samples from).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl<T: super::StandardSample> Distribution<T> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
