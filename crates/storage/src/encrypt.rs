//! Database encryption — the `Enc(R)` procedure of Algorithm 2.
//!
//! For each attribute the relation is sorted by local score; every item
//! `I = ⟨o, x⟩` becomes `E(I) = ⟨EHL(o), Enc(x)⟩`; finally the `M` encrypted lists are
//! permuted with the data owner's PRP `P_K` so that their storage position reveals
//! nothing about which attribute they rank.
//!
//! Encryption of different items is embarrassingly parallel (the paper uses 64 threads
//! in §11.1); [`encrypt_relation_parallel`] splits the per-list work across a scoped
//! thread pool.

use rand::rngs::StdRng;
use rand::{CryptoRng, Rng, RngCore, SeedableRng};

use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::prp::KeyedPrp;
use sectopk_crypto::Result;
use sectopk_ehl::EhlEncoder;

use crate::encrypted::{EncryptedItem, EncryptedList, EncryptedRelation};
use crate::relation::{DataItem, Relation, SortedLists};

/// Statistics about one database-encryption run (drives Fig. 7 / Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncryptionStats {
    /// Number of objects encrypted.
    pub num_objects: usize,
    /// Number of attributes (lists) encrypted.
    pub num_attributes: usize,
    /// Total number of Paillier encryptions performed.
    pub paillier_encryptions: usize,
    /// Serialized size of the encrypted relation in bytes.
    pub encrypted_bytes: usize,
}

/// Encrypt a relation with the data owner's keys (single-threaded).
pub fn encrypt_relation<R: RngCore + CryptoRng>(
    relation: &Relation,
    keys: &MasterKeys,
    rng: &mut R,
) -> Result<(EncryptedRelation, EncryptionStats)> {
    let sorted = relation.sorted_lists();
    let encoder = EhlEncoder::new(&keys.ehl_keys);
    let m = sorted.num_lists();

    let mut encrypted_lists = Vec::with_capacity(m);
    for i in 0..m {
        encrypted_lists.push(encrypt_list(sorted.list(i), &encoder, keys, rng)?);
    }

    Ok(assemble(relation, keys, encrypted_lists))
}

/// Encrypt a relation using one worker thread per attribute list (bounded by the number
/// of lists).  Thread-level parallelism mirrors the paper's setup-phase measurement.
pub fn encrypt_relation_parallel<R: RngCore + CryptoRng>(
    relation: &Relation,
    keys: &MasterKeys,
    rng: &mut R,
) -> Result<(EncryptedRelation, EncryptionStats)> {
    let sorted = relation.sorted_lists();
    let m = sorted.num_lists();
    if m <= 1 {
        return encrypt_relation(relation, keys, rng);
    }

    // Derive one independent RNG per worker from the caller's RNG so results stay
    // reproducible for a seeded caller.
    let seeds: Vec<u64> = (0..m).map(|_| rng.gen()).collect();

    let results: Vec<Result<EncryptedList>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for (i, seed) in seeds.iter().enumerate() {
            let list = sorted.list(i);
            let keys_ref = keys;
            let seed = *seed;
            handles.push(scope.spawn(move || {
                let mut local_rng = StdRng::seed_from_u64(seed);
                let encoder = EhlEncoder::new(&keys_ref.ehl_keys);
                encrypt_list(list, &encoder, keys_ref, &mut local_rng)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("encryption worker panicked")).collect()
    });

    let mut encrypted_lists = Vec::with_capacity(m);
    for r in results {
        encrypted_lists.push(r?);
    }
    Ok(assemble(relation, keys, encrypted_lists))
}

/// Encrypt one sorted list.
fn encrypt_list<R: RngCore + CryptoRng>(
    list: &[DataItem],
    encoder: &EhlEncoder,
    keys: &MasterKeys,
    rng: &mut R,
) -> Result<EncryptedList> {
    let pk = &keys.paillier_public;
    let mut items = Vec::with_capacity(list.len());
    for item in list {
        let ehl = encoder.encode(&item.object.to_bytes(), pk, rng)?;
        let score = pk.encrypt_u64(item.score, rng)?;
        items.push(EncryptedItem { ehl, score });
    }
    Ok(EncryptedList::new(items))
}

/// Permute the encrypted lists with the owner's PRP and collect statistics.
fn assemble(
    relation: &Relation,
    keys: &MasterKeys,
    encrypted_lists: Vec<EncryptedList>,
) -> (EncryptedRelation, EncryptionStats) {
    let m = encrypted_lists.len();
    let prp = KeyedPrp::new(&keys.prp_key, m);
    let mut permuted: Vec<Option<EncryptedList>> = vec![None; m];
    for (i, list) in encrypted_lists.into_iter().enumerate() {
        permuted[prp.apply(i)] = Some(list);
    }
    let lists: Vec<EncryptedList> =
        permuted.into_iter().map(|l| l.expect("PRP is a bijection")).collect();

    let er = EncryptedRelation::new(lists, relation.len());
    let stats = EncryptionStats {
        num_objects: relation.len(),
        num_attributes: m,
        // One Paillier encryption per EHL block plus one per score, per item, per list.
        paillier_encryptions: relation.len() * m * (keys.ehl_key_count() + 1),
        encrypted_bytes: er.byte_len(),
    };
    (er, stats)
}

/// Re-derive the sorted-lists view used during encryption (exposed so that protocol-level
/// tests can cross-check the plaintext content of `ER` without re-sorting by hand).
pub fn sorted_view(relation: &Relation) -> SortedLists {
    relation.sorted_lists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{ObjectId, Row};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;

    fn small_relation() -> Relation {
        Relation::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                Row { id: ObjectId(1), values: vec![10, 3, 2] },
                Row { id: ObjectId(2), values: vec![8, 8, 0] },
                Row { id: ObjectId(3), values: vec![5, 7, 6] },
                Row { id: ObjectId(4), values: vec![3, 2, 8] },
                Row { id: ObjectId(5), values: vec![1, 1, 1] },
            ],
        )
    }

    fn master_keys(rng: &mut StdRng) -> MasterKeys {
        MasterKeys::generate(MIN_MODULUS_BITS, 3, rng).unwrap()
    }

    #[test]
    fn encryption_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(2024);
        let keys = master_keys(&mut rng);
        let relation = small_relation();
        let (er, stats) = encrypt_relation(&relation, &keys, &mut rng).unwrap();
        assert_eq!(er.num_attributes(), 3);
        assert_eq!(er.num_objects(), 5);
        assert_eq!(er.setup_leakage(), (5, 3));
        assert_eq!(stats.num_objects, 5);
        assert_eq!(stats.paillier_encryptions, 5 * 3 * 4);
        assert!(stats.encrypted_bytes > 0);
        for list in er.lists() {
            assert_eq!(list.len(), 5);
        }
    }

    #[test]
    fn scores_decrypt_to_sorted_plaintext_lists() {
        let mut rng = StdRng::seed_from_u64(7);
        let keys = master_keys(&mut rng);
        let relation = small_relation();
        let (er, _) = encrypt_relation(&relation, &keys, &mut rng).unwrap();

        let sorted = relation.sorted_lists();
        let prp = KeyedPrp::new(&keys.prp_key, 3);
        for logical in 0..3 {
            let stored = prp.apply(logical);
            let encrypted = er.list(stored);
            for (depth, item) in sorted.list(logical).iter().enumerate() {
                let score = keys
                    .paillier_secret
                    .decrypt_u64(&encrypted.item(depth).unwrap().score)
                    .unwrap();
                assert_eq!(score, item.score, "list {logical}, depth {depth}");
            }
        }
    }

    #[test]
    fn ehl_encodings_identify_objects() {
        let mut rng = StdRng::seed_from_u64(99);
        let keys = master_keys(&mut rng);
        let relation = small_relation();
        let (er, _) = encrypt_relation(&relation, &keys, &mut rng).unwrap();

        let encoder = EhlEncoder::new(&keys.ehl_keys);
        let pk = &keys.paillier_public;
        let sk = &keys.paillier_secret;
        let sorted = relation.sorted_lists();
        let prp = KeyedPrp::new(&keys.prp_key, 3);

        // The EHL at (list 0, depth 0) must match a freshly encoded copy of the same
        // object and must not match a different object.
        let logical = 0usize;
        let stored = prp.apply(logical);
        let expected_object = sorted.item(logical, 0).unwrap().object;
        let fresh_same = encoder.encode(&expected_object.to_bytes(), pk, &mut rng).unwrap();
        let fresh_other = encoder.encode(&ObjectId(999).to_bytes(), pk, &mut rng).unwrap();
        let stored_ehl = &er.list(stored).item(0).unwrap().ehl;
        assert!(sk.is_zero(&stored_ehl.eq_test(&fresh_same, pk, &mut rng)).unwrap());
        assert!(!sk.is_zero(&stored_ehl.eq_test(&fresh_other, pk, &mut rng)).unwrap());
    }

    #[test]
    fn parallel_and_serial_encryption_agree_on_structure() {
        let mut rng = StdRng::seed_from_u64(31);
        let keys = master_keys(&mut rng);
        let relation = small_relation();
        let (serial, s_stats) = encrypt_relation(&relation, &keys, &mut rng).unwrap();
        let (parallel, p_stats) = encrypt_relation_parallel(&relation, &keys, &mut rng).unwrap();
        assert_eq!(serial.num_attributes(), parallel.num_attributes());
        assert_eq!(serial.num_objects(), parallel.num_objects());
        assert_eq!(s_stats.paillier_encryptions, p_stats.paillier_encryptions);

        // Ciphertexts differ (fresh randomness) but decrypt to the same scores.
        let sk = &keys.paillier_secret;
        for list_idx in 0..3 {
            for depth in 0..5 {
                let a = sk.decrypt_u64(&serial.list(list_idx).item(depth).unwrap().score).unwrap();
                let b =
                    sk.decrypt_u64(&parallel.list(list_idx).item(depth).unwrap().score).unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn single_attribute_relation_uses_serial_path() {
        let mut rng = StdRng::seed_from_u64(13);
        let keys = master_keys(&mut rng);
        let relation = Relation::new(
            vec!["only".into()],
            vec![
                Row { id: ObjectId(1), values: vec![4] },
                Row { id: ObjectId(2), values: vec![9] },
            ],
        );
        let (er, _) = encrypt_relation_parallel(&relation, &keys, &mut rng).unwrap();
        assert_eq!(er.num_attributes(), 1);
        assert_eq!(er.num_objects(), 2);
    }

    #[test]
    fn two_encryptions_of_same_relation_are_different_ciphertexts() {
        // Probabilistic encryption: Theorem 6.1's indistinguishability needs fresh
        // randomness every time.
        let mut rng = StdRng::seed_from_u64(55);
        let keys = master_keys(&mut rng);
        let relation = small_relation();
        let (a, _) = encrypt_relation(&relation, &keys, &mut rng).unwrap();
        let (b, _) = encrypt_relation(&relation, &keys, &mut rng).unwrap();
        assert_ne!(a, b);
    }
}
