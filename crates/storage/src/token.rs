//! Query description and token generation (§7 of the paper).
//!
//! The client's SQL-like query `SELECT * FROM ER ORDER BY F_W(·) STOP AFTER k` names a
//! subset `M` of attributes (and optionally non-binary weights).  `Token(K, q)` maps each
//! chosen attribute index `i` through the data owner's PRP `P_K` so that S1 learns *which
//! encrypted lists to scan* but not which logical attributes they correspond to.

use serde::{Deserialize, Serialize};

use sectopk_crypto::prf::PrfKey;
use sectopk_crypto::prp::KeyedPrp;

use crate::relation::Score;

/// A client-side top-k query over a subset of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKQuery {
    /// Indices (in the *logical*, unpermuted relation) of the scoring attributes `M`.
    pub attributes: Vec<usize>,
    /// Optional per-attribute weights; empty means binary weights (plain sum), matching
    /// the presentation in §7.
    pub weights: Vec<Score>,
    /// Number of results requested.
    pub k: usize,
}

impl TopKQuery {
    /// A plain-sum top-k query over `attributes`.
    pub fn sum(attributes: Vec<usize>, k: usize) -> Self {
        TopKQuery { attributes, weights: Vec::new(), k }
    }

    /// A weighted top-k query; `weights` must have one entry per attribute.
    pub fn weighted(attributes: Vec<usize>, weights: Vec<Score>, k: usize) -> Self {
        assert_eq!(
            attributes.len(),
            weights.len(),
            "weighted query needs one weight per attribute"
        );
        TopKQuery { attributes, weights, k }
    }

    /// Number of scoring attributes `m`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// The weight applied to the `j`-th *chosen* attribute (1 for binary weights).
    pub fn weight(&self, j: usize) -> Score {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[j]
        }
    }

    /// Basic sanity checks against a relation with `num_attributes` columns.
    pub fn validate(&self, num_attributes: usize) -> Result<(), String> {
        if self.attributes.is_empty() {
            return Err("query must name at least one scoring attribute".into());
        }
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if let Some(&bad) = self.attributes.iter().find(|&&a| a >= num_attributes) {
            return Err(format!(
                "attribute index {bad} out of range for a relation with {num_attributes} attributes"
            ));
        }
        let mut sorted = self.attributes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.attributes.len() {
            return Err("query names the same attribute twice".into());
        }
        if !self.weights.is_empty() && self.weights.len() != self.attributes.len() {
            return Err("weights, when given, must match the number of attributes".into());
        }
        Ok(())
    }
}

/// The query token sent to S1: the PRP images of the chosen attributes plus `k` (and the
/// weights, which S1 applies homomorphically by scalar multiplication before running the
/// protocol, as described in §7).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryToken {
    /// Permuted list indices `{P_K(i)}` for the scoring attributes, in query order.
    pub permuted_lists: Vec<usize>,
    /// Per-attribute weights (empty ⇒ binary weights).
    pub weights: Vec<Score>,
    /// Number of results requested.
    pub k: usize,
}

impl QueryToken {
    /// Number of scoring attributes `m`.
    pub fn num_attributes(&self) -> usize {
        self.permuted_lists.len()
    }

    /// The weight applied to the `j`-th list of the token (1 for binary weights).
    pub fn weight(&self, j: usize) -> Score {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[j]
        }
    }
}

/// Generate the token for `query` with the client's PRP key `K` over a relation with
/// `num_attributes` columns — the `Token(K, q)` algorithm of the scheme.
pub fn generate_token(
    prp_key: &PrfKey,
    num_attributes: usize,
    query: &TopKQuery,
) -> Result<QueryToken, String> {
    query.validate(num_attributes)?;
    let prp = KeyedPrp::new(prp_key, num_attributes);
    let permuted_lists = query.attributes.iter().map(|&i| prp.apply(i)).collect();
    Ok(QueryToken { permuted_lists, weights: query.weights.clone(), k: query.k })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_query_and_weighted_query() {
        let q = TopKQuery::sum(vec![0, 2], 5);
        assert_eq!(q.num_attributes(), 2);
        assert_eq!(q.weight(0), 1);
        let w = TopKQuery::weighted(vec![1, 3], vec![4, 9], 2);
        assert_eq!(w.weight(1), 9);
    }

    #[test]
    #[should_panic(expected = "one weight per attribute")]
    fn weighted_query_arity_mismatch_panics() {
        TopKQuery::weighted(vec![0, 1], vec![1], 3);
    }

    #[test]
    fn validation_rules() {
        assert!(TopKQuery::sum(vec![0], 1).validate(3).is_ok());
        assert!(TopKQuery::sum(vec![], 1).validate(3).is_err());
        assert!(TopKQuery::sum(vec![0], 0).validate(3).is_err());
        assert!(TopKQuery::sum(vec![5], 1).validate(3).is_err());
        assert!(TopKQuery::sum(vec![0, 0], 1).validate(3).is_err());
        let mut bad = TopKQuery::sum(vec![0, 1], 1);
        bad.weights = vec![2];
        assert!(bad.validate(3).is_err());
    }

    #[test]
    fn token_applies_the_keyed_prp() {
        let key = PrfKey([42u8; 32]);
        let m = 10;
        let query = TopKQuery::sum(vec![0, 3, 7], 4);
        let token = generate_token(&key, m, &query).unwrap();
        assert_eq!(token.k, 4);
        assert_eq!(token.num_attributes(), 3);
        let prp = KeyedPrp::new(&key, m);
        assert_eq!(token.permuted_lists, vec![prp.apply(0), prp.apply(3), prp.apply(7)]);
        // Permuted indices stay within range and are distinct.
        let mut sorted = token.permuted_lists.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        assert!(sorted.iter().all(|&i| i < m));
    }

    #[test]
    fn token_generation_is_deterministic_per_key() {
        let key = PrfKey([1u8; 32]);
        let query = TopKQuery::sum(vec![1, 2], 3);
        let a = generate_token(&key, 8, &query).unwrap();
        let b = generate_token(&key, 8, &query).unwrap();
        assert_eq!(a, b);
        let other = generate_token(&PrfKey([2u8; 32]), 8, &query).unwrap();
        // Overwhelmingly likely to differ for an 8-element domain.
        assert_ne!(a.permuted_lists, other.permuted_lists);
    }

    #[test]
    fn invalid_queries_are_rejected_at_token_time() {
        let key = PrfKey([1u8; 32]);
        assert!(generate_token(&key, 4, &TopKQuery::sum(vec![9], 1)).is_err());
    }
}
