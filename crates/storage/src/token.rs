//! Query description and token generation (§7 of the paper).
//!
//! The client's SQL-like query `SELECT * FROM ER ORDER BY F_W(·) STOP AFTER k` names a
//! subset `M` of attributes (and optionally non-binary weights).  `Token(K, q)` maps each
//! chosen attribute index `i` through the data owner's PRP `P_K` so that S1 learns *which
//! encrypted lists to scan* but not which logical attributes they correspond to.

use std::fmt;

use serde::{Deserialize, Serialize};

use sectopk_crypto::prf::PrfKey;
use sectopk_crypto::prp::KeyedPrp;

use crate::relation::Score;

/// Why a top-k query (or a query under construction in the `sectopk-core` builder) is
/// invalid.  Replaces the earlier stringly-typed `Result<_, String>` signatures so
/// callers can match on the failure class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query names no scoring attributes.
    NoAttributes,
    /// The query asks for zero results.
    ZeroK,
    /// An attribute index is out of range for the queried relation.
    AttributeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes of the relation the query was validated against.
        num_attributes: usize,
    },
    /// The same attribute is named more than once.
    DuplicateAttribute {
        /// The repeated index.
        index: usize,
    },
    /// Weights were given but their count does not match the attribute count.
    WeightArity {
        /// Number of weights supplied.
        weights: usize,
        /// Number of scoring attributes.
        attributes: usize,
    },
    /// An attribute name could not be resolved against the relation's schema.
    UnknownAttribute {
        /// The unresolved name.
        name: String,
    },
    /// Attribute names were used without a schema to resolve them against.
    NamesRequireSchema,
    /// An explicit batching parameter `p = 0` was requested.
    ZeroBatchParameter,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoAttributes => {
                write!(f, "query must name at least one scoring attribute")
            }
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::AttributeOutOfRange { index, num_attributes } => write!(
                f,
                "attribute index {index} out of range for a relation with {num_attributes} attributes"
            ),
            QueryError::DuplicateAttribute { index } => {
                write!(f, "query names attribute {index} twice")
            }
            QueryError::WeightArity { weights, attributes } => write!(
                f,
                "weights, when given, must match the number of attributes ({weights} weights for {attributes} attributes)"
            ),
            QueryError::UnknownAttribute { name } => {
                write!(f, "relation has no attribute named {name:?}")
            }
            QueryError::NamesRequireSchema => {
                write!(f, "attribute names can only be resolved against a relation schema")
            }
            QueryError::ZeroBatchParameter => {
                write!(f, "batching parameter p must be at least 1")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A client-side top-k query over a subset of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKQuery {
    /// Indices (in the *logical*, unpermuted relation) of the scoring attributes `M`.
    pub attributes: Vec<usize>,
    /// Optional per-attribute weights; empty means binary weights (plain sum), matching
    /// the presentation in §7.
    pub weights: Vec<Score>,
    /// Number of results requested.
    pub k: usize,
}

impl TopKQuery {
    /// A plain-sum top-k query over `attributes`.
    pub fn sum(attributes: Vec<usize>, k: usize) -> Self {
        TopKQuery { attributes, weights: Vec::new(), k }
    }

    /// A weighted top-k query; `weights` must have one entry per attribute.
    pub fn weighted(attributes: Vec<usize>, weights: Vec<Score>, k: usize) -> Self {
        assert_eq!(
            attributes.len(),
            weights.len(),
            "weighted query needs one weight per attribute"
        );
        TopKQuery { attributes, weights, k }
    }

    /// Number of scoring attributes `m`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// The weight applied to the `j`-th *chosen* attribute (1 for binary weights).
    pub fn weight(&self, j: usize) -> Score {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[j]
        }
    }

    /// Basic sanity checks against a relation with `num_attributes` columns.
    pub fn validate(&self, num_attributes: usize) -> Result<(), QueryError> {
        if self.attributes.is_empty() {
            return Err(QueryError::NoAttributes);
        }
        if self.k == 0 {
            return Err(QueryError::ZeroK);
        }
        if let Some(&bad) = self.attributes.iter().find(|&&a| a >= num_attributes) {
            return Err(QueryError::AttributeOutOfRange { index: bad, num_attributes });
        }
        let mut sorted = self.attributes.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(QueryError::DuplicateAttribute { index: w[0] });
        }
        if !self.weights.is_empty() && self.weights.len() != self.attributes.len() {
            return Err(QueryError::WeightArity {
                weights: self.weights.len(),
                attributes: self.attributes.len(),
            });
        }
        Ok(())
    }
}

/// The query token sent to S1: the PRP images of the chosen attributes plus `k` (and the
/// weights, which S1 applies homomorphically by scalar multiplication before running the
/// protocol, as described in §7).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryToken {
    /// Permuted list indices `{P_K(i)}` for the scoring attributes, in query order.
    pub permuted_lists: Vec<usize>,
    /// Per-attribute weights (empty ⇒ binary weights).
    pub weights: Vec<Score>,
    /// Number of results requested.
    pub k: usize,
}

impl QueryToken {
    /// Number of scoring attributes `m`.
    pub fn num_attributes(&self) -> usize {
        self.permuted_lists.len()
    }

    /// The weight applied to the `j`-th list of the token (1 for binary weights).
    pub fn weight(&self, j: usize) -> Score {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[j]
        }
    }
}

/// Generate the token for `query` with the client's PRP key `K` over a relation with
/// `num_attributes` columns — the `Token(K, q)` algorithm of the scheme.
pub fn generate_token(
    prp_key: &PrfKey,
    num_attributes: usize,
    query: &TopKQuery,
) -> Result<QueryToken, QueryError> {
    query.validate(num_attributes)?;
    let prp = KeyedPrp::new(prp_key, num_attributes);
    let permuted_lists = query.attributes.iter().map(|&i| prp.apply(i)).collect();
    Ok(QueryToken { permuted_lists, weights: query.weights.clone(), k: query.k })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_query_and_weighted_query() {
        let q = TopKQuery::sum(vec![0, 2], 5);
        assert_eq!(q.num_attributes(), 2);
        assert_eq!(q.weight(0), 1);
        let w = TopKQuery::weighted(vec![1, 3], vec![4, 9], 2);
        assert_eq!(w.weight(1), 9);
    }

    #[test]
    #[should_panic(expected = "one weight per attribute")]
    fn weighted_query_arity_mismatch_panics() {
        TopKQuery::weighted(vec![0, 1], vec![1], 3);
    }

    #[test]
    fn validation_rules() {
        assert!(TopKQuery::sum(vec![0], 1).validate(3).is_ok());
        assert_eq!(TopKQuery::sum(vec![], 1).validate(3), Err(QueryError::NoAttributes));
        assert_eq!(TopKQuery::sum(vec![0], 0).validate(3), Err(QueryError::ZeroK));
        assert_eq!(
            TopKQuery::sum(vec![5], 1).validate(3),
            Err(QueryError::AttributeOutOfRange { index: 5, num_attributes: 3 })
        );
        assert_eq!(
            TopKQuery::sum(vec![0, 0], 1).validate(3),
            Err(QueryError::DuplicateAttribute { index: 0 })
        );
        let mut bad = TopKQuery::sum(vec![0, 1], 1);
        bad.weights = vec![2];
        assert_eq!(bad.validate(3), Err(QueryError::WeightArity { weights: 1, attributes: 2 }));
    }

    #[test]
    fn query_errors_render_their_context() {
        assert!(QueryError::AttributeOutOfRange { index: 5, num_attributes: 3 }
            .to_string()
            .contains('5'));
        assert!(QueryError::UnknownAttribute { name: "price".into() }
            .to_string()
            .contains("price"));
        assert!(QueryError::WeightArity { weights: 1, attributes: 2 }.to_string().contains('2'));
    }

    #[test]
    fn token_applies_the_keyed_prp() {
        let key = PrfKey([42u8; 32]);
        let m = 10;
        let query = TopKQuery::sum(vec![0, 3, 7], 4);
        let token = generate_token(&key, m, &query).unwrap();
        assert_eq!(token.k, 4);
        assert_eq!(token.num_attributes(), 3);
        let prp = KeyedPrp::new(&key, m);
        assert_eq!(token.permuted_lists, vec![prp.apply(0), prp.apply(3), prp.apply(7)]);
        // Permuted indices stay within range and are distinct.
        let mut sorted = token.permuted_lists.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        assert!(sorted.iter().all(|&i| i < m));
    }

    #[test]
    fn token_generation_is_deterministic_per_key() {
        let key = PrfKey([1u8; 32]);
        let query = TopKQuery::sum(vec![1, 2], 3);
        let a = generate_token(&key, 8, &query).unwrap();
        let b = generate_token(&key, 8, &query).unwrap();
        assert_eq!(a, b);
        let other = generate_token(&PrfKey([2u8; 32]), 8, &query).unwrap();
        // Overwhelmingly likely to differ for an 8-element domain.
        assert_ne!(a.permuted_lists, other.permuted_lists);
    }

    #[test]
    fn invalid_queries_are_rejected_at_token_time() {
        let key = PrfKey([1u8; 32]);
        assert!(generate_token(&key, 4, &TopKQuery::sum(vec![9], 1)).is_err());
    }
}
