//! The plaintext relation model (§3.1 of the paper).
//!
//! A relation `R` holds `n` objects `o_1, …, o_n`, each with `M` numerical attributes;
//! i.e. an `n × M` matrix.  The NRA-style query processing never touches `R` row-by-row:
//! it works on the *sorted-list view* `S = {L_1, …, L_M}` where list `L_i` ranks all
//! objects by their `i`-th attribute (§3.4).  Both representations live here.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of an object (row) in a relation.
///
/// The paper treats object ids as opaque values hashed through the EHL PRFs; a `u64` is
/// plenty for the dataset sizes evaluated (up to 1M records) while keeping byte encoding
/// trivial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Canonical byte encoding fed into the EHL PRFs.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A local score: the value of one attribute of one object.  Attribute values in the
/// paper are non-negative numeric values; `u64` covers every evaluated dataset.
pub type Score = u64;

/// One object of a relation: its id and its `M` attribute values.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// The object identifier.
    pub id: ObjectId,
    /// The `M` attribute values (local scores).
    pub values: Vec<Score>,
}

/// A plaintext relation: named attributes plus `n` rows of `M` values each.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// Human-readable attribute names (length `M`).
    attribute_names: Vec<String>,
    /// The rows (length `n`).
    rows: Vec<Row>,
}

impl Relation {
    /// Create a relation from attribute names and rows.
    ///
    /// # Panics
    /// Panics if any row's arity differs from the number of attribute names, or if two
    /// rows share an object id (object ids must be unique within a relation).
    pub fn new(attribute_names: Vec<String>, rows: Vec<Row>) -> Self {
        let m = attribute_names.len();
        let mut seen = HashMap::with_capacity(rows.len());
        for row in &rows {
            assert_eq!(
                row.values.len(),
                m,
                "row {} has {} values but the relation has {} attributes",
                row.id,
                row.values.len(),
                m
            );
            assert!(
                seen.insert(row.id, ()).is_none(),
                "duplicate object id {} in relation",
                row.id
            );
        }
        Relation { attribute_names, rows }
    }

    /// Convenience constructor with auto-generated attribute names `attr0..attrM`.
    pub fn from_rows(rows: Vec<Row>) -> Self {
        let m = rows.first().map(|r| r.values.len()).unwrap_or(0);
        let names = (0..m).map(|i| format!("attr{i}")).collect();
        Relation::new(names, rows)
    }

    /// Build a relation from a dense matrix; row `i` gets object id `i`.
    pub fn from_matrix(attribute_names: Vec<String>, matrix: Vec<Vec<Score>>) -> Self {
        let rows = matrix
            .into_iter()
            .enumerate()
            .map(|(i, values)| Row { id: ObjectId(i as u64), values })
            .collect();
        Relation::new(attribute_names, rows)
    }

    /// Number of objects `n = |R|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes `M`.
    pub fn num_attributes(&self) -> usize {
        self.attribute_names.len()
    }

    /// Attribute names.
    pub fn attribute_names(&self) -> &[String] {
        &self.attribute_names
    }

    /// Resolve an attribute name to its index.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attribute_names.iter().position(|n| n == name)
    }

    /// The rows of the relation.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Look up a row by object id (linear scan; used by tests and small examples).
    pub fn row(&self, id: ObjectId) -> Option<&Row> {
        self.rows.iter().find(|r| r.id == id)
    }

    /// The value of attribute `attr` for object `id`.
    pub fn value(&self, id: ObjectId, attr: usize) -> Option<Score> {
        self.row(id).and_then(|r| r.values.get(attr).copied())
    }

    /// The aggregate score of object `id` under the monotone linear scoring function
    /// `F_W(o) = Σ w_i · x_i(o)` restricted to `attributes` (§3.1).  `weights` must be
    /// either empty (binary weights, i.e. a plain sum) or have one entry per attribute in
    /// `attributes`.
    pub fn aggregate_score(
        &self,
        id: ObjectId,
        attributes: &[usize],
        weights: &[Score],
    ) -> Option<u128> {
        let row = self.row(id)?;
        let mut total: u128 = 0;
        for (j, &attr) in attributes.iter().enumerate() {
            let w = if weights.is_empty() { 1 } else { *weights.get(j)? };
            total += (w as u128) * (*row.values.get(attr)? as u128);
        }
        Some(total)
    }

    /// The exact plaintext top-k result: object ids of the `k` highest aggregate scores,
    /// highest first, ties broken by object id for determinism.  This is the correctness
    /// oracle every secure query path is tested against.
    pub fn plaintext_top_k(
        &self,
        attributes: &[usize],
        weights: &[Score],
        k: usize,
    ) -> Vec<(ObjectId, u128)> {
        let mut scored: Vec<(ObjectId, u128)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.id,
                    self.aggregate_score(r.id, attributes, weights)
                        .expect("attributes validated by caller"),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Build the sorted-list view `S = {L_1, …, L_M}` used by NRA and by the encryption
    /// procedure (each list sorted by local score, best — i.e. highest — first, as in the
    /// worked example of Fig. 3).
    pub fn sorted_lists(&self) -> SortedLists {
        let m = self.num_attributes();
        let mut lists = Vec::with_capacity(m);
        for attr in 0..m {
            let mut list: Vec<DataItem> = self
                .rows
                .iter()
                .map(|r| DataItem { object: r.id, score: r.values[attr] })
                .collect();
            // Descending by score; ties broken by object id so the view is deterministic.
            list.sort_by(|a, b| b.score.cmp(&a.score).then(a.object.cmp(&b.object)));
            lists.push(list);
        }
        SortedLists { lists }
    }
}

/// One entry of a sorted list: an (object id, local score) pair — the paper's
/// `I_i^d = (o_i^d, x_i^d)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataItem {
    /// Object identifier.
    pub object: ObjectId,
    /// Local score (attribute value).
    pub score: Score,
}

/// The sorted-list view of a relation: one list per attribute, each ranking every object
/// by that attribute's value (best first).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortedLists {
    lists: Vec<Vec<DataItem>>,
}

impl SortedLists {
    /// Number of lists (`M`).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Depth of each list (`n`).
    pub fn depth(&self) -> usize {
        self.lists.first().map(Vec::len).unwrap_or(0)
    }

    /// The `i`-th sorted list.
    pub fn list(&self, i: usize) -> &[DataItem] {
        &self.lists[i]
    }

    /// All lists.
    pub fn lists(&self) -> &[Vec<DataItem>] {
        &self.lists
    }

    /// The item at `depth` in list `i` (0-based depth).
    pub fn item(&self, list: usize, depth: usize) -> Option<DataItem> {
        self.lists.get(list).and_then(|l| l.get(depth)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-object, 3-attribute table of the paper's Fig. 3.
    pub(crate) fn fig3_relation() -> Relation {
        // Scores per attribute (R1, R2, R3) for objects X1..X5 (ids 1..5).
        Relation::new(
            vec!["r1".into(), "r2".into(), "r3".into()],
            vec![
                Row { id: ObjectId(1), values: vec![10, 3, 2] },
                Row { id: ObjectId(2), values: vec![8, 8, 0] },
                Row { id: ObjectId(3), values: vec![5, 7, 6] },
                Row { id: ObjectId(4), values: vec![3, 2, 8] },
                Row { id: ObjectId(5), values: vec![1, 1, 1] },
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let r = fig3_relation();
        assert_eq!(r.len(), 5);
        assert_eq!(r.num_attributes(), 3);
        assert_eq!(r.attribute_index("r2"), Some(1));
        assert_eq!(r.attribute_index("missing"), None);
        assert_eq!(r.value(ObjectId(3), 2), Some(6));
        assert_eq!(r.value(ObjectId(99), 0), None);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate object id")]
    fn duplicate_ids_are_rejected() {
        Relation::from_rows(vec![
            Row { id: ObjectId(1), values: vec![1] },
            Row { id: ObjectId(1), values: vec![2] },
        ]);
    }

    #[test]
    #[should_panic(expected = "has 2 values")]
    fn ragged_rows_are_rejected() {
        Relation::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![Row { id: ObjectId(1), values: vec![1, 2] }],
        );
    }

    #[test]
    fn aggregate_score_sums_selected_attributes() {
        let r = fig3_relation();
        // X3: 5 + 7 + 6 = 18 over all attributes.
        assert_eq!(r.aggregate_score(ObjectId(3), &[0, 1, 2], &[]), Some(18));
        // Weighted: 2*5 + 1*7 = 17.
        assert_eq!(r.aggregate_score(ObjectId(3), &[0, 1], &[2, 1]), Some(17));
        // Unknown attribute index → None.
        assert_eq!(r.aggregate_score(ObjectId(3), &[9], &[]), None);
    }

    #[test]
    fn plaintext_top_k_matches_fig3() {
        let r = fig3_relation();
        // Sum over all three attributes: X3=18, X2=16, X1=15, X4=13, X5=3.
        let top2 = r.plaintext_top_k(&[0, 1, 2], &[], 2);
        assert_eq!(top2, vec![(ObjectId(3), 18), (ObjectId(2), 16)]);
        let top5 = r.plaintext_top_k(&[0, 1, 2], &[], 5);
        assert_eq!(top5.len(), 5);
        assert_eq!(top5.last().unwrap().0, ObjectId(5));
        // Requesting more than n returns n.
        assert_eq!(r.plaintext_top_k(&[0], &[], 100).len(), 5);
    }

    #[test]
    fn sorted_lists_are_descending_and_complete() {
        let r = fig3_relation();
        let s = r.sorted_lists();
        assert_eq!(s.num_lists(), 3);
        assert_eq!(s.depth(), 5);
        for i in 0..3 {
            let list = s.list(i);
            assert_eq!(list.len(), 5);
            for w in list.windows(2) {
                assert!(w[0].score >= w[1].score, "list {i} must be descending");
            }
        }
        // Fig. 3: the first entries of the three lists are X1/10, X2/8, X4/8.
        assert_eq!(s.item(0, 0), Some(DataItem { object: ObjectId(1), score: 10 }));
        assert_eq!(s.item(1, 0), Some(DataItem { object: ObjectId(2), score: 8 }));
        assert_eq!(s.item(2, 0), Some(DataItem { object: ObjectId(4), score: 8 }));
        assert_eq!(s.item(0, 9), None);
    }

    #[test]
    fn from_matrix_assigns_sequential_ids() {
        let r = Relation::from_matrix(vec!["a".into()], vec![vec![5], vec![9]]);
        assert_eq!(r.rows()[0].id, ObjectId(0));
        assert_eq!(r.rows()[1].id, ObjectId(1));
    }

    #[test]
    fn empty_relation_behaves() {
        let r = Relation::from_rows(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.num_attributes(), 0);
        assert_eq!(r.sorted_lists().depth(), 0);
        assert!(r.plaintext_top_k(&[], &[], 3).is_empty());
    }
}
