//! The encrypted relation `ER` produced by the database-encryption procedure of
//! Algorithm 2: one encrypted sorted list per (permuted) attribute, each entry being
//! `E(I^d) = ⟨EHL(o^d), Enc(x^d)⟩`.

use serde::{Deserialize, Serialize};

use sectopk_crypto::paillier::Ciphertext;
use sectopk_ehl::EhlPlus;

/// One encrypted data item: the EHL+ encoding of the object id plus the Paillier
/// encryption of its local score — the paper's `E(I_i^d) = ⟨EHL(o_i^d), Enc(x_i^d)⟩`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct EncryptedItem {
    /// Encrypted hash list of the object id.
    pub ehl: EhlPlus,
    /// Paillier encryption of the local score.
    pub score: Ciphertext,
}

impl EncryptedItem {
    /// Serialized size in bytes (EHL blocks + score ciphertext) — the unit the bandwidth
    /// accounting of §11.2.5 is expressed in.
    pub fn byte_len(&self) -> usize {
        self.ehl.byte_len() + self.score.byte_len()
    }
}

/// One encrypted sorted list `L_{P_K(i)}`: the items of one attribute, best score first,
/// all encrypted.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct EncryptedList {
    items: Vec<EncryptedItem>,
}

impl EncryptedList {
    /// Wrap a vector of encrypted items.
    pub fn new(items: Vec<EncryptedItem>) -> Self {
        EncryptedList { items }
    }

    /// Depth of the list (`n`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The encrypted item at `depth` (0-based).
    pub fn item(&self, depth: usize) -> Option<&EncryptedItem> {
        self.items.get(depth)
    }

    /// All items in depth order.
    pub fn items(&self) -> &[EncryptedItem] {
        &self.items
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.items.iter().map(EncryptedItem::byte_len).sum()
    }
}

/// The encrypted relation `ER`: `M` encrypted sorted lists, already permuted by the data
/// owner's PRP so that list positions reveal nothing about which attribute they rank.
///
/// Per Theorem 6.1, `ER` reveals only the relation size `n` and the attribute count `M`
/// (the setup leakage `L_Setup = (|R|, M)` of the security definition, §9).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct EncryptedRelation {
    lists: Vec<EncryptedList>,
    num_objects: usize,
}

impl EncryptedRelation {
    /// Assemble an encrypted relation from its permuted lists.
    pub fn new(lists: Vec<EncryptedList>, num_objects: usize) -> Self {
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(
                list.len(),
                num_objects,
                "encrypted list {i} has {} items but the relation has {} objects",
                list.len(),
                num_objects
            );
        }
        EncryptedRelation { lists, num_objects }
    }

    /// Number of attributes `M` (equivalently, number of encrypted lists).
    pub fn num_attributes(&self) -> usize {
        self.lists.len()
    }

    /// Number of objects `n`.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// The encrypted list stored at (permuted) position `i`.
    pub fn list(&self, i: usize) -> &EncryptedList {
        &self.lists[i]
    }

    /// All encrypted lists.
    pub fn lists(&self) -> &[EncryptedList] {
        &self.lists
    }

    /// Total serialized size in bytes of the encrypted database (the quantity plotted in
    /// Fig. 7b / Fig. 8b).
    pub fn byte_len(&self) -> usize {
        self.lists.iter().map(EncryptedList::byte_len).sum()
    }

    /// The setup leakage `L_Setup(R) = (|R|, M)` revealed to S1 by outsourcing `ER` (§9).
    pub fn setup_leakage(&self) -> (usize, usize) {
        (self.num_objects, self.num_attributes())
    }
}
