//! # sectopk-storage
//!
//! The database layer of the SecTopK reproduction: the plaintext [`Relation`] model and
//! its sorted-list view, the encrypted relation `ER` produced by Algorithm 2, and query
//! token generation (§3.1, §6, §7 of the paper).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sectopk_crypto::MasterKeys;
//! use sectopk_storage::{encrypt_relation, generate_token, ObjectId, Relation, Row, TopKQuery};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let keys = MasterKeys::generate(128, 3, &mut rng).unwrap();
//! let relation = Relation::from_rows(vec![
//!     Row { id: ObjectId(1), values: vec![10, 3] },
//!     Row { id: ObjectId(2), values: vec![8, 8] },
//! ]);
//!
//! // Data owner: encrypt and outsource.
//! let (er, stats) = encrypt_relation(&relation, &keys, &mut rng).unwrap();
//! assert_eq!(er.setup_leakage(), (2, 2));
//! assert!(stats.encrypted_bytes > 0);
//!
//! // Client: build a token for "top-1 by attr0 + attr1".
//! let token = generate_token(&keys.prp_key, 2, &TopKQuery::sum(vec![0, 1], 1)).unwrap();
//! assert_eq!(token.k, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encrypt;
pub mod encrypted;
pub mod relation;
pub mod token;

pub use encrypt::{encrypt_relation, encrypt_relation_parallel, EncryptionStats};
pub use encrypted::{EncryptedItem, EncryptedList, EncryptedRelation};
pub use relation::{DataItem, ObjectId, Relation, Row, Score, SortedLists};
pub use token::{generate_token, QueryError, QueryToken, TopKQuery};
