//! Fast standalone smoke test: encrypt a 3-row relation and check its shape plus that
//! scores round-trip through the owner's secret key.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::MIN_MODULUS_BITS;
use sectopk_storage::{encrypt_relation, ObjectId, Relation, Row, TopKQuery};

#[test]
fn relation_encrypts_and_token_validates() {
    let mut rng = StdRng::seed_from_u64(0x570);
    let keys = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let relation = Relation::from_rows(vec![
        Row { id: ObjectId(1), values: vec![10, 3] },
        Row { id: ObjectId(2), values: vec![8, 8] },
        Row { id: ObjectId(3), values: vec![5, 7] },
    ]);
    let (er, stats) = encrypt_relation(&relation, &keys, &mut rng).expect("encrypt");
    assert_eq!(er.num_objects(), 3);
    assert_eq!(er.num_attributes(), 2);
    assert!(stats.encrypted_bytes > 0);

    // Every stored score must decrypt to one of the plaintext values.
    let sk = &keys.paillier_secret;
    let all_scores: Vec<u64> =
        relation.rows().iter().flat_map(|r| r.values.iter().copied()).collect();
    for list in er.lists() {
        for depth in 0..list.len() {
            let score = sk.decrypt_u64(&list.item(depth).unwrap().score).expect("decrypt");
            assert!(all_scores.contains(&score), "unexpected score {score}");
        }
    }

    let query = TopKQuery::sum(vec![0, 1], 1);
    assert!(query.validate(relation.num_attributes()).is_ok());
    assert!(query.validate(1).is_err(), "attribute 1 is out of range for a 1-column relation");
}
