//! The SkNN-style query protocol: per-record secure distance computation followed by
//! secure minimum selection.

use serde::{Deserialize, Serialize};

use rand::{CryptoRng, RngCore};
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_protocols::{ChannelMetrics, Result, TwoClouds};
use sectopk_storage::Relation;

use crate::multiply::secure_multiply_batch;

/// A relation encrypted for the SkNN baseline: every attribute of every record is a
/// Paillier ciphertext (no sorted lists, no EHL — the baseline scans everything anyway).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct KnnEncryptedDatabase {
    /// `records[i][j]` = `Enc(x_j(o_i))`.
    pub records: Vec<Vec<Ciphertext>>,
}

impl KnnEncryptedDatabase {
    /// Number of records `n`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of attributes `m`.
    pub fn num_attributes(&self) -> usize {
        self.records.first().map(Vec::len).unwrap_or(0)
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.records.iter().map(|r| r.iter().map(Ciphertext::byte_len).sum::<usize>()).sum()
    }
}

/// Encrypt a relation for the SkNN baseline.
pub fn encrypt_for_knn<R: RngCore + CryptoRng>(
    relation: &Relation,
    keys: &MasterKeys,
    rng: &mut R,
) -> Result<KnnEncryptedDatabase> {
    let pk = &keys.paillier_public;
    let mut records = Vec::with_capacity(relation.len());
    for row in relation.rows() {
        let encrypted: Vec<Ciphertext> = row
            .values
            .iter()
            .map(|&v| pk.encrypt_u64(v, rng))
            .collect::<sectopk_crypto::Result<Vec<_>>>()?;
        records.push(encrypted);
    }
    Ok(KnnEncryptedDatabase { records })
}

/// Outcome of one SkNN query.
#[derive(Clone, Debug)]
pub struct KnnQueryOutcome {
    /// Indices (record positions) of the k records nearest to the query point, nearest
    /// first.  The baseline inherently reveals these positions to S1.
    pub nearest: Vec<usize>,
    /// Communication accrued by this query alone.
    pub channel: ChannelMetrics,
    /// Number of secure multiplications performed (= n·m, the baseline's dominant cost).
    pub secure_multiplications: usize,
    /// Number of secure comparisons performed during the k minimum-selection rounds.
    pub secure_comparisons: usize,
}

/// Run one SkNN query: find the `k` records closest (squared Euclidean distance) to
/// `query_point`, which S1 holds encrypted.
///
/// Following §11.3, a top-k query with scoring function `Σ x_i²` is answered by querying
/// the per-attribute upper bound as the point.
pub fn sknn_query(
    clouds: &mut TwoClouds,
    db: &KnnEncryptedDatabase,
    query_point: &[u64],
    k: usize,
) -> Result<KnnQueryOutcome> {
    assert_eq!(
        query_point.len(),
        db.num_attributes(),
        "query point must have one coordinate per attribute"
    );
    let channel_before = clouds.channel();
    let pk = clouds.pk().clone();
    let n = db.len();
    let m = db.num_attributes();
    let k = k.min(n);

    // Encrypt the query point (done by the querying client in [21]; S1 only ever holds
    // ciphertexts of it).  Nonces come from S1's precomputed pool.
    let enc_query: Vec<Ciphertext> = query_point
        .iter()
        .map(|&q| clouds.s1.pool.encrypt_u64(q))
        .collect::<sectopk_crypto::Result<Vec<_>>>()?;

    // ---- Per-record encrypted squared distance: Σ_j (x_j − q_j)². ----------------------
    // Every squared difference needs one secure multiplication — n·m of them in total,
    // which is exactly the O(n·m) per-query cost the paper criticises.
    let mut distances: Vec<Ciphertext> = Vec::with_capacity(n);
    let mut secure_multiplications = 0usize;
    for record in &db.records {
        let diffs: Vec<Ciphertext> =
            record.iter().zip(enc_query.iter()).map(|(x, q)| pk.sub(x, q)).collect();
        let pairs: Vec<(Ciphertext, Ciphertext)> =
            diffs.iter().map(|d| (d.clone(), d.clone())).collect();
        let squares = secure_multiply_batch(clouds, &pairs)?;
        secure_multiplications += squares.len();
        let mut dist = pk.one_ciphertext();
        for s in &squares {
            dist = pk.add(&dist, s);
        }
        distances.push(dist);
    }
    debug_assert_eq!(secure_multiplications, n * m);

    // ---- k rounds of secure minimum selection. -----------------------------------------
    let mut remaining: Vec<(usize, Ciphertext)> = distances.into_iter().enumerate().collect();
    let mut nearest = Vec::with_capacity(k);
    let mut secure_comparisons = 0usize;
    for _ in 0..k {
        let mut best = 0usize;
        for idx in 1..remaining.len() {
            // Keep `best` if its distance is ≤ the candidate's.
            let keep = clouds.enc_compare(&remaining[best].1, &remaining[idx].1, "sknn_min")?;
            secure_comparisons += 1;
            if !keep {
                best = idx;
            }
        }
        nearest.push(remaining.swap_remove(best).0);
    }

    Ok(KnnQueryOutcome {
        nearest,
        channel: clouds.channel().since(&channel_before),
        secure_multiplications,
        secure_comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_storage::{ObjectId, Row};

    fn setup() -> (MasterKeys, TwoClouds, StdRng) {
        let mut rng = StdRng::seed_from_u64(2718);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let clouds = TwoClouds::new(&keys, 27).unwrap();
        (keys, clouds, rng)
    }

    fn relation() -> Relation {
        Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                Row { id: ObjectId(0), values: vec![1, 1] },
                Row { id: ObjectId(1), values: vec![9, 9] },
                Row { id: ObjectId(2), values: vec![5, 4] },
                Row { id: ObjectId(3), values: vec![8, 7] },
            ],
        )
    }

    #[test]
    fn nearest_records_to_the_upper_bound_are_the_top_scorers() {
        let (keys, mut clouds, mut rng) = setup();
        let db = encrypt_for_knn(&relation(), &keys, &mut rng).unwrap();
        assert_eq!(db.len(), 4);
        assert_eq!(db.num_attributes(), 2);
        // Query the upper bound (10, 10): the nearest records are those with the largest
        // attribute values — record 1 (9,9), then record 3 (8,7).
        let outcome = sknn_query(&mut clouds, &db, &[10, 10], 2).unwrap();
        assert_eq!(outcome.nearest, vec![1, 3]);
        assert_eq!(outcome.secure_multiplications, 8);
        assert_eq!(outcome.secure_comparisons, 3 + 2);
        assert!(outcome.channel.bytes > 0);
    }

    #[test]
    fn exact_nearest_neighbour_semantics() {
        let (keys, mut clouds, mut rng) = setup();
        let db = encrypt_for_knn(&relation(), &keys, &mut rng).unwrap();
        // Query (5, 5): record 2 = (5,4) is closest (distance 1).
        let outcome = sknn_query(&mut clouds, &db, &[5, 5], 1).unwrap();
        assert_eq!(outcome.nearest, vec![2]);
    }

    #[test]
    fn per_query_cost_scales_with_n_times_m() {
        let (keys, mut clouds, mut rng) = setup();
        let small = encrypt_for_knn(&relation(), &keys, &mut rng).unwrap();
        let small_outcome = sknn_query(&mut clouds, &small, &[10, 10], 1).unwrap();

        let bigger_relation = Relation::from_rows(
            (0..8u64).map(|i| Row { id: ObjectId(i), values: vec![i, 2 * i, 3 * i] }).collect(),
        );
        let bigger = encrypt_for_knn(&bigger_relation, &keys, &mut rng).unwrap();
        let bigger_outcome = sknn_query(&mut clouds, &bigger, &[30, 30, 30], 1).unwrap();

        assert_eq!(small_outcome.secure_multiplications, 4 * 2);
        assert_eq!(bigger_outcome.secure_multiplications, 8 * 3);
        assert!(bigger_outcome.channel.bytes > small_outcome.channel.bytes);
    }

    #[test]
    fn k_is_clamped_to_n() {
        let (keys, mut clouds, mut rng) = setup();
        let db = encrypt_for_knn(&relation(), &keys, &mut rng).unwrap();
        let outcome = sknn_query(&mut clouds, &db, &[0, 0], 10).unwrap();
        assert_eq!(outcome.nearest.len(), 4);
        // Nearest to the origin is record 0 = (1,1).
        assert_eq!(outcome.nearest[0], 0);
    }
}
