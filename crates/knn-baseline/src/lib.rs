//! # sectopk-knn
//!
//! The secure k-nearest-neighbour comparator baseline used in §11.3 of the paper.
//!
//! The paper compares SecTopK against the SkNN protocol of Elmehdwi, Samanthula and
//! Jiang (ICDE'14, reference \[21\]): a two-cloud protocol in which, **for every query**,
//! S1 and S2 jointly compute an encrypted distance for *every* record (O(n·m) secure
//! multiplications and the corresponding communication) and then select the k smallest
//! distances with secure comparisons (O(n·k)).  The point of the comparison is the cost
//! profile — the baseline touches every record on every query, whereas SecTopK only
//! scans a prefix of the sorted lists — so this crate reproduces that protocol skeleton
//! faithfully: per-pair secure multiplication round trips, per-record distance
//! accumulation, and k rounds of secure minimum selection.
//!
//! As §11.3 describes, a top-k query with scoring function `Σ x_i²` can be answered by
//! this baseline by querying a point with the maximal attribute values: the records
//! nearest to that point are the top-k records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multiply;
pub mod sknn;

pub use multiply::{secure_multiply, secure_multiply_batch};
pub use sknn::{encrypt_for_knn, sknn_query, KnnEncryptedDatabase, KnnQueryOutcome};
