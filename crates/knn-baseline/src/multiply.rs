//! The secure multiplication sub-protocol (SM) of the SkNN baseline: from `Enc(a)` and
//! `Enc(b)` held by S1, compute `Enc(a · b)` with one round trip to S2.
//!
//! S1 additively blinds both operands (`Enc(a + r_a)`, `Enc(b + r_b)`), S2 decrypts the
//! blinded values, multiplies them and returns `Enc((a + r_a)(b + r_b))`; S1 removes the
//! cross terms homomorphically: `Enc(ab) = Enc((a+r_a)(b+r_b)) · Enc(a)^{-r_b} ·
//! Enc(b)^{-r_a} · Enc(-r_a r_b)`.  This is exactly the SM protocol the baseline paper
//! builds its distance computation from, and it is what makes the baseline cost
//! O(n·m) round trips per query.

use num_bigint::BigUint;

use sectopk_crypto::bigint::random_below;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_protocols::{Result, TwoClouds};

/// Compute `Enc(a · b)` from `Enc(a)` and `Enc(b)` (both under the shared public key),
/// with S2's help.  S2 sees only uniformly blinded values.
pub fn secure_multiply(
    clouds: &mut TwoClouds,
    a: &Ciphertext,
    b: &Ciphertext,
) -> Result<Ciphertext> {
    let products = secure_multiply_batch(clouds, &[(a.clone(), b.clone())])?;
    Ok(products.into_iter().next().expect("one pair in, one product out"))
}

/// Batched variant: one round trip for any number of pairs.
pub fn secure_multiply_batch(
    clouds: &mut TwoClouds,
    pairs: &[(Ciphertext, Ciphertext)],
) -> Result<Vec<Ciphertext>> {
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let pk = clouds.pk().clone();

    // ---- S1: blind both operands of every pair. --------------------------------------
    let mut blinded = Vec::with_capacity(pairs.len());
    let mut masks = Vec::with_capacity(pairs.len());
    for (a, b) in pairs {
        let r_a = random_below(&mut clouds.s1.rng, pk.n());
        let r_b = random_below(&mut clouds.s1.rng, pk.n());
        blinded.push((pk.add_plain(a, &r_a), pk.add_plain(b, &r_b)));
        masks.push((r_a, r_b));
    }

    // ---- transport: S2 decrypts, multiplies, re-encrypts (one metered round trip). ----
    let replies = clouds.mul_blinded(blinded)?;

    // ---- S1: strip the cross terms. -----------------------------------------------------
    let mut out = Vec::with_capacity(pairs.len());
    for (((a, b), (r_a, r_b)), reply) in pairs.iter().zip(masks.iter()).zip(replies.iter()) {
        // Enc(ab) = Enc((a+ra)(b+rb)) - ra·b - rb·a - ra·rb
        let neg = |x: &BigUint| (pk.n() - (x % pk.n())) % pk.n();
        let minus_ra_b = pk.mul_plain(b, &neg(r_a));
        let minus_rb_a = pk.mul_plain(a, &neg(r_b));
        let ra_rb = (r_a * r_b) % pk.n();
        let mut c = pk.add(reply, &minus_ra_b);
        c = pk.add(&c, &minus_rb_a);
        c = pk.add_plain(&c, &neg(&ra_rb));
        out.push(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;

    fn setup() -> (MasterKeys, TwoClouds, StdRng) {
        let mut rng = StdRng::seed_from_u64(314);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let clouds = TwoClouds::new(&keys, 3).unwrap();
        (keys, clouds, rng)
    }

    #[test]
    fn multiplies_small_values() {
        let (keys, mut clouds, mut rng) = setup();
        let pk = &keys.paillier_public;
        for (a, b) in [(0u64, 5u64), (3, 4), (1234, 5678), (1, 1), (0, 0)] {
            let ca = pk.encrypt_u64(a, &mut rng).unwrap();
            let cb = pk.encrypt_u64(b, &mut rng).unwrap();
            let product = secure_multiply(&mut clouds, &ca, &cb).unwrap();
            assert_eq!(keys.paillier_secret.decrypt_u64(&product).unwrap(), a * b, "{a}·{b}");
        }
    }

    #[test]
    fn batch_is_one_round_trip() {
        let (keys, mut clouds, mut rng) = setup();
        let pk = &keys.paillier_public;
        let pairs: Vec<(Ciphertext, Ciphertext)> = (1u64..=5)
            .map(|i| {
                (pk.encrypt_u64(i, &mut rng).unwrap(), pk.encrypt_u64(i + 10, &mut rng).unwrap())
            })
            .collect();
        let products = secure_multiply_batch(&mut clouds, &pairs).unwrap();
        for (i, p) in products.iter().enumerate() {
            let i = i as u64 + 1;
            assert_eq!(keys.paillier_secret.decrypt_u64(p).unwrap(), i * (i + 10));
        }
        assert_eq!(clouds.channel().rounds, 1);
    }

    #[test]
    fn works_modulo_n_for_large_operands() {
        let (keys, mut clouds, mut rng) = setup();
        let pk = &keys.paillier_public;
        let a = pk.n() - BigUint::from(3u32); // ≡ −3
        let ca = pk.encrypt(&a, &mut rng).unwrap();
        let cb = pk.encrypt_u64(7, &mut rng).unwrap();
        let product = secure_multiply(&mut clouds, &ca, &cb).unwrap();
        // (−3) · 7 = −21 mod N
        assert_eq!(
            keys.paillier_secret.decrypt_signed(&product).unwrap(),
            num_bigint::BigInt::from(-21)
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (_keys, mut clouds, _rng) = setup();
        assert!(secure_multiply_batch(&mut clouds, &[]).unwrap().is_empty());
        assert_eq!(clouds.channel().total_messages(), 0);
    }
}
