//! Fast standalone smoke test: one SkNN query on a 3-row database.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::MIN_MODULUS_BITS;
use sectopk_knn::{encrypt_for_knn, sknn_query};
use sectopk_protocols::TwoClouds;
use sectopk_storage::{ObjectId, Relation, Row};

#[test]
fn sknn_finds_the_nearest_record() {
    let mut rng = StdRng::seed_from_u64(0x6A);
    let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let mut clouds = TwoClouds::new(&master, 11).expect("clouds");

    let relation = Relation::from_rows(vec![
        Row { id: ObjectId(0), values: vec![1, 1] },
        Row { id: ObjectId(1), values: vec![9, 9] },
        Row { id: ObjectId(2), values: vec![5, 4] },
    ]);
    let db = encrypt_for_knn(&relation, &master, &mut rng).expect("encrypt");

    // Nearest to (10, 10) is record 1, then record 2.
    let outcome = sknn_query(&mut clouds, &db, &[10, 10], 2).expect("query");
    assert_eq!(outcome.nearest, vec![1, 2]);
    assert!(outcome.secure_multiplications > 0);
}
