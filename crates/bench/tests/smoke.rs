//! Fast standalone smoke test: scale presets are sane and `Table` round-trips JSON.

use sectopk_bench::{BenchScale, Table};

#[test]
fn scale_presets_are_ordered() {
    let smoke = BenchScale::smoke();
    let laptop = BenchScale::laptop();
    let paper = BenchScale::paper();
    assert!(smoke.query_rows <= laptop.query_rows);
    assert!(laptop.query_rows <= paper.query_rows);
    assert!(smoke.max_depth >= 1);
}

#[test]
fn table_renders_and_roundtrips_json() {
    let mut table = Table::new("smoke", "a tiny table", &["k", "seconds"]);
    table.push_row(vec!["1".to_string(), "0.25".to_string()]);
    table.push_row(vec!["2".to_string(), "0.5".to_string()]);

    let rendered = table.render();
    assert!(rendered.contains("seconds"));

    let parsed: Table = serde_json::from_str(&table.to_json()).expect("parse back");
    assert_eq!(parsed, table);
}
