//! Minimal tabular reporting: every experiment produces a [`Table`] that is printed in
//! the same rows/series layout as the corresponding figure or table of the paper, and can
//! be dumped as JSON for plotting.

use serde::{Deserialize, Serialize};

/// A printable table of benchmark results.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Table {
    /// Experiment identifier (e.g. "Fig. 9a").
    pub id: String,
    /// Human-readable caption.
    pub caption: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a new table.
    pub fn new(id: &str, caption: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            caption: caption.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity must match the header");
        self.rows.push(cells);
    }

    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.caption);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Serialize the table as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

/// Format a seconds value compactly.
pub fn fmt_secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2} s")
    } else {
        format!("{:.1} ms", v * 1000.0)
    }
}

/// Format a byte count as mebibytes.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.3} MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Fig. X", "test", &["k", "time"]);
        t.push_row(vec!["2".into(), "1.5 s".into()]);
        t.push_row(vec!["20".into(), "15.0 s".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Fig. X"));
        assert!(rendered.contains("k"));
        assert!(rendered.lines().count() >= 5);
        // JSON round trip.
        let parsed: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_rows_are_rejected() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.0), "2.00 s");
        assert_eq!(fmt_secs(0.0205), "20.5 ms");
        assert_eq!(fmt_mb(2 * 1024 * 1024), "2.000 MB");
    }
}
