//! The measurement runners behind every figure and table of the evaluation.
//!
//! Each `figN_*` function reproduces one experiment of §11 / §12.4.1 and returns a
//! [`Table`] whose rows/series match what the paper plots; the `figures` binary prints
//! them, EXPERIMENTS.md records them, and the Criterion benches reuse the underlying
//! helpers at a smaller operating point.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{
    DataOwner, Outsourced, Query, QueryConfig, QueryVariant, Session, VariantChoice,
};
use sectopk_crypto::MasterKeys;
use sectopk_datasets::{generate, DatasetKind, QueryWorkload};
use sectopk_ehl::{EhlEncoder, DEFAULT_BUCKETS};
use sectopk_knn::{encrypt_for_knn, sknn_query};
use sectopk_protocols::TwoClouds;
use sectopk_storage::{Relation, TopKQuery};

use crate::report::{fmt_mb, fmt_secs, Table};
use crate::scale::BenchScale;

/// The k values swept by the time-per-depth figures (the paper uses 2–20).
pub const K_SWEEP: [usize; 5] = [2, 4, 8, 15, 20];

/// The m values swept by the time-per-depth figures (the paper uses 2–8).
pub const M_SWEEP: [usize; 4] = [2, 3, 4, 6];

/// Performance summary of one secure query execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryPerf {
    /// Average wall-clock seconds per scanned depth.
    pub seconds_per_depth: f64,
    /// Average bytes exchanged between the clouds per scanned depth.
    pub bytes_per_depth: f64,
    /// Total bytes exchanged.
    pub total_bytes: u64,
    /// Estimated network latency (link from [`BenchScale::link_mbps`]).
    pub latency_seconds: f64,
    /// Number of depths scanned.
    pub depths: usize,
    /// Whether the NRA halting condition was reached before the depth cap.
    pub halted: bool,
}

/// Prepare one dataset: generate the (scaled) relation, the owner keys and the
/// outsourced encrypted relation.  Deterministic in `seed`.
pub fn prepare_dataset(
    kind: DatasetKind,
    rows: usize,
    scale: &BenchScale,
    seed: u64,
) -> (DataOwner, Relation, Outsourced) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = kind.spec().with_rows(rows);
    let relation = generate(&spec, seed);
    let owner = DataOwner::new(scale.modulus_bits, scale.ehl_keys, &mut rng)
        .expect("key generation succeeds");
    let (outsourced, _) =
        owner.outsource_parallel(&relation, &mut rng).expect("relation encryption succeeds");
    (owner, relation, outsourced)
}

/// Run one secure query through the `Session` front door (capped at the scale's
/// `max_depth`) and summarise its cost.
pub fn measure_query(
    owner: &DataOwner,
    relation: &Relation,
    outsourced: &Outsourced,
    query: &TopKQuery,
    config: &QueryConfig,
    scale: &BenchScale,
    seed: u64,
) -> QueryPerf {
    let mut session = owner.connect(outsourced, seed).expect("cloud setup succeeds");
    let query = Query::from_spec(query.clone())
        .with_variant(VariantChoice::Fixed(config.variant))
        .with_max_depth(scale.max_depth.min(relation.len()));
    let resolved = session.execute(&query).expect("secure query succeeds");
    let stats = &resolved.outcome.stats;
    QueryPerf {
        seconds_per_depth: stats.seconds_per_depth(),
        bytes_per_depth: stats.bytes_per_depth(),
        total_bytes: stats.channel.bytes,
        latency_seconds: stats.channel.latency_seconds(scale.link_mbps, 0.0),
        depths: stats.depths_scanned,
        halted: stats.halted,
    }
}

// ====================================================================================
// Fig. 7 — EHL vs EHL+ construction time and size
// ====================================================================================

/// Fig. 7a/7b: encode `items` objects with the Bloom-style EHL (H = 23 buckets) and with
/// EHL+ (`s` encryptions), reporting construction time and ciphertext size.
pub fn fig7_ehl_construction(scale: &BenchScale) -> Table {
    let mut rng = StdRng::seed_from_u64(7);
    let keys =
        MasterKeys::generate(scale.modulus_bits, scale.ehl_keys, &mut rng).expect("key generation");
    let encoder = EhlEncoder::new(&keys.ehl_keys);
    let pk = &keys.paillier_public;

    let mut table = Table::new(
        "Fig. 7",
        "EHL vs EHL+ construction time and size (per batch of items)",
        &["items", "EHL time", "EHL+ time", "EHL size", "EHL+ size"],
    );
    for &items in &scale.ehl_items {
        let started = Instant::now();
        let mut ehl_bytes = 0usize;
        for i in 0..items {
            let e = encoder
                .encode_bloom(&(i as u64).to_be_bytes(), DEFAULT_BUCKETS, pk, &mut rng)
                .expect("EHL encoding");
            ehl_bytes += e.byte_len();
        }
        let ehl_time = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let mut plus_bytes = 0usize;
        for i in 0..items {
            let e = encoder.encode(&(i as u64).to_be_bytes(), pk, &mut rng).expect("EHL+ encoding");
            plus_bytes += e.byte_len();
        }
        let plus_time = started.elapsed().as_secs_f64();

        table.push_row(vec![
            items.to_string(),
            fmt_secs(ehl_time),
            fmt_secs(plus_time),
            fmt_mb(ehl_bytes as u64),
            fmt_mb(plus_bytes as u64),
        ]);
    }
    table
}

// ====================================================================================
// Fig. 8 — database encryption per dataset
// ====================================================================================

/// Fig. 8a/8b: encrypt each (scaled) dataset with `Enc(R)` and report time and size.
pub fn fig8_dataset_encryption(scale: &BenchScale) -> Table {
    let mut table = Table::new(
        "Fig. 8",
        "Database encryption Enc(R): time and encrypted size per dataset",
        &["dataset", "rows", "attrs", "time", "encrypted size"],
    );
    for kind in DatasetKind::ALL {
        let rows = kind.spec().rows.min(scale.encryption_rows);
        let relation = generate(&kind.spec().with_rows(rows), 8);
        let mut rng = StdRng::seed_from_u64(8);
        let owner =
            DataOwner::new(scale.modulus_bits, scale.ehl_keys, &mut rng).expect("key generation");
        let started = Instant::now();
        let (_, stats) = owner.encrypt_parallel(&relation, &mut rng).expect("encryption");
        let elapsed = started.elapsed().as_secs_f64();
        table.push_row(vec![
            kind.name().to_string(),
            rows.to_string(),
            relation.num_attributes().to_string(),
            fmt_secs(elapsed),
            fmt_mb(stats.encrypted_bytes as u64),
        ]);
    }
    table
}

// ====================================================================================
// Figs. 9–11 — time per depth for Qry_F / Qry_E / Qry_Ba, varying k and m
// ====================================================================================

fn query_figure(
    id: &str,
    caption: &str,
    variant: QueryVariant,
    scale: &BenchScale,
    vary_k: bool,
    p: usize,
) -> Table {
    let config = match variant {
        QueryVariant::Full => QueryConfig::full(),
        QueryVariant::DupElim => QueryConfig::dup_elim(),
        QueryVariant::Batched { .. } => QueryConfig::batched(p),
    };
    let sweep_label = if vary_k { "k" } else { "m" };
    let mut table = Table::new(
        id,
        caption,
        &["dataset", sweep_label, "time / depth", "depths scanned", "bytes / depth"],
    );
    for kind in DatasetKind::ALL {
        let (owner, relation, outsourced) = prepare_dataset(kind, scale.query_rows, scale, 9);
        let m_attrs = relation.num_attributes();
        if vary_k {
            let m = 3.min(m_attrs);
            for &k in &K_SWEEP {
                let query = QueryWorkload::fixed(m_attrs, m, k.min(scale.query_rows), 9);
                let perf = measure_query(&owner, &relation, &outsourced, &query, &config, scale, 9);
                table.push_row(vec![
                    kind.name().to_string(),
                    k.to_string(),
                    fmt_secs(perf.seconds_per_depth),
                    perf.depths.to_string(),
                    fmt_mb(perf.bytes_per_depth as u64),
                ]);
            }
        } else {
            let k = 5;
            for &m in &M_SWEEP {
                let m = m.min(m_attrs);
                let query = QueryWorkload::fixed(m_attrs, m, k, 9);
                let perf = measure_query(&owner, &relation, &outsourced, &query, &config, scale, 9);
                table.push_row(vec![
                    kind.name().to_string(),
                    m.to_string(),
                    fmt_secs(perf.seconds_per_depth),
                    perf.depths.to_string(),
                    fmt_mb(perf.bytes_per_depth as u64),
                ]);
            }
        }
    }
    table
}

/// Fig. 9a: Qry_F time per depth varying k (m = 3).
pub fn fig9a_qry_f_vary_k(scale: &BenchScale) -> Table {
    query_figure(
        "Fig. 9a",
        "Qry_F time per depth, varying k (m = 3)",
        QueryVariant::Full,
        scale,
        true,
        0,
    )
}

/// Fig. 9b: Qry_F time per depth varying m (k = 5).
pub fn fig9b_qry_f_vary_m(scale: &BenchScale) -> Table {
    query_figure(
        "Fig. 9b",
        "Qry_F time per depth, varying m (k = 5)",
        QueryVariant::Full,
        scale,
        false,
        0,
    )
}

/// Fig. 10a: Qry_E time per depth varying k (m = 3).
pub fn fig10a_qry_e_vary_k(scale: &BenchScale) -> Table {
    query_figure(
        "Fig. 10a",
        "Qry_E time per depth, varying k (m = 3)",
        QueryVariant::DupElim,
        scale,
        true,
        0,
    )
}

/// Fig. 10b: Qry_E time per depth varying m (k = 5).
pub fn fig10b_qry_e_vary_m(scale: &BenchScale) -> Table {
    query_figure(
        "Fig. 10b",
        "Qry_E time per depth, varying m (k = 5)",
        QueryVariant::DupElim,
        scale,
        false,
        0,
    )
}

/// Fig. 11a: Qry_Ba time per depth varying k (m = 3, p scaled from the paper's 150).
pub fn fig11a_qry_ba_vary_k(scale: &BenchScale) -> Table {
    let p = batching_parameter(scale);
    query_figure(
        "Fig. 11a",
        "Qry_Ba time per depth, varying k (m = 3)",
        QueryVariant::Batched { p },
        scale,
        true,
        p,
    )
}

/// Fig. 11b: Qry_Ba time per depth varying m (k = 5).
pub fn fig11b_qry_ba_vary_m(scale: &BenchScale) -> Table {
    let p = batching_parameter(scale);
    query_figure(
        "Fig. 11b",
        "Qry_Ba time per depth, varying m (k = 5)",
        QueryVariant::Batched { p },
        scale,
        false,
        p,
    )
}

/// Fig. 11c: Qry_Ba time per depth varying the batching parameter p (k = 5, m = 3).
pub fn fig11c_qry_ba_vary_p(scale: &BenchScale) -> Table {
    let mut table = Table::new(
        "Fig. 11c",
        "Qry_Ba time per depth, varying the batching parameter p",
        &["dataset", "p", "time / depth", "depths scanned"],
    );
    // The paper sweeps p from 200 to 550 at full scale; proportionally smaller here.
    let base = batching_parameter(scale);
    let p_values: Vec<usize> = [1usize, 2, 3, 4].iter().map(|mult| (base * mult).max(1)).collect();
    for kind in DatasetKind::ALL {
        let (owner, relation, outsourced) = prepare_dataset(kind, scale.query_rows, scale, 11);
        let m_attrs = relation.num_attributes();
        let query = QueryWorkload::fixed(m_attrs, 3.min(m_attrs), 5, 11);
        for &p in &p_values {
            let perf = measure_query(
                &owner,
                &relation,
                &outsourced,
                &query,
                &QueryConfig::batched(p),
                scale,
                11,
            );
            table.push_row(vec![
                kind.name().to_string(),
                p.to_string(),
                fmt_secs(perf.seconds_per_depth),
                perf.depths.to_string(),
            ]);
        }
    }
    table
}

/// The batching parameter used at this scale (the paper uses p = 150–500 for
/// 100k–1M-row datasets; proportionally this is a handful of depths at laptop scale).
pub fn batching_parameter(scale: &BenchScale) -> usize {
    (scale.max_depth / 2).max(2)
}

// ====================================================================================
// Fig. 12 — the three variants side by side
// ====================================================================================

/// Fig. 12: Qry_F vs Qry_E vs Qry_Ba time per depth (k = 5, m = 3).
pub fn fig12_variant_comparison(scale: &BenchScale) -> Table {
    let p = batching_parameter(scale);
    let mut table = Table::new(
        "Fig. 12",
        "Query variants compared (k = 5, m = 3)",
        &["dataset", "Qry_F / depth", "Qry_E / depth", "Qry_Ba / depth", "speedup F→Ba"],
    );
    for kind in DatasetKind::ALL {
        let (owner, relation, out) = prepare_dataset(kind, scale.query_rows, scale, 12);
        let m_attrs = relation.num_attributes();
        let query = QueryWorkload::fixed(m_attrs, 3.min(m_attrs), 5, 12);
        let full = measure_query(&owner, &relation, &out, &query, &QueryConfig::full(), scale, 12);
        let elim =
            measure_query(&owner, &relation, &out, &query, &QueryConfig::dup_elim(), scale, 12);
        let batched =
            measure_query(&owner, &relation, &out, &query, &QueryConfig::batched(p), scale, 12);
        let speedup = if batched.seconds_per_depth > 0.0 {
            full.seconds_per_depth / batched.seconds_per_depth
        } else {
            f64::NAN
        };
        table.push_row(vec![
            kind.name().to_string(),
            fmt_secs(full.seconds_per_depth),
            fmt_secs(elim.seconds_per_depth),
            fmt_secs(batched.seconds_per_depth),
            format!("{speedup:.1}x"),
        ]);
    }
    table
}

// ====================================================================================
// Table 3 and Fig. 13 — communication
// ====================================================================================

/// Table 3: total communication bandwidth and latency per dataset (k = 20, m = 4).
pub fn table3_bandwidth(scale: &BenchScale) -> Table {
    let mut table = Table::new(
        "Table 3",
        "Communication bandwidth & latency (k = 20, m = 4, Qry_F)",
        &["dataset", "bandwidth", "latency @50Mbps", "depths"],
    );
    for kind in DatasetKind::ALL {
        let (owner, relation, out) = prepare_dataset(kind, scale.query_rows, scale, 13);
        let m_attrs = relation.num_attributes();
        let query = QueryWorkload::fixed(m_attrs, 4.min(m_attrs), 20.min(scale.query_rows), 13);
        let perf = measure_query(&owner, &relation, &out, &query, &QueryConfig::full(), scale, 13);
        table.push_row(vec![
            kind.name().to_string(),
            fmt_mb(perf.total_bytes),
            fmt_secs(perf.latency_seconds),
            perf.depths.to_string(),
        ]);
    }
    table
}

/// Fig. 13a: bandwidth per depth varying m; Fig. 13b: total bandwidth varying k
/// (synthetic dataset, Qry_F).
pub fn fig13_bandwidth(scale: &BenchScale) -> Table {
    let mut table = Table::new(
        "Fig. 13",
        "Communication on the synthetic dataset (Qry_F): per-depth vs m, total vs k",
        &["sweep", "value", "bytes / depth", "total bandwidth"],
    );
    let (owner, relation, out) =
        prepare_dataset(DatasetKind::Synthetic, scale.query_rows, scale, 14);
    let m_attrs = relation.num_attributes();

    for &m in &M_SWEEP {
        let query = QueryWorkload::fixed(m_attrs, m.min(m_attrs), 5, 14);
        let perf = measure_query(&owner, &relation, &out, &query, &QueryConfig::full(), scale, 14);
        table.push_row(vec![
            "m (k = 5)".to_string(),
            m.to_string(),
            fmt_mb(perf.bytes_per_depth as u64),
            fmt_mb(perf.total_bytes),
        ]);
    }
    for &k in &K_SWEEP {
        let query = QueryWorkload::fixed(m_attrs, 4.min(m_attrs), k.min(scale.query_rows), 14);
        let perf = measure_query(&owner, &relation, &out, &query, &QueryConfig::full(), scale, 14);
        table.push_row(vec![
            "k (m = 4)".to_string(),
            k.to_string(),
            fmt_mb(perf.bytes_per_depth as u64),
            fmt_mb(perf.total_bytes),
        ]);
    }
    table
}

// ====================================================================================
// §11.3 — comparison with the secure kNN baseline
// ====================================================================================

/// §11.3: SecTopK vs the SkNN baseline — per-query time and bandwidth on the same data.
pub fn knn_comparison(scale: &BenchScale) -> Table {
    let mut table = Table::new(
        "§11.3",
        "SecTopK (Qry_E) vs secure-kNN baseline [21], k = 10",
        &[
            "rows",
            "SecTopK time",
            "SecTopK bandwidth",
            "kNN time",
            "kNN bandwidth",
            "kNN secure mults",
        ],
    );
    let mut rng = StdRng::seed_from_u64(113);
    for &rows in &[scale.knn_rows / 2, scale.knn_rows] {
        let kind = DatasetKind::Synthetic;
        let (owner, relation, out) = prepare_dataset(kind, rows, scale, 113);
        let m_attrs = relation.num_attributes();
        let k = 10.min(rows);
        let query = QueryWorkload::fixed(m_attrs, 3.min(m_attrs), k, 113);

        let started = Instant::now();
        let topk =
            measure_query(&owner, &relation, &out, &query, &QueryConfig::dup_elim(), scale, 113);
        let topk_time = started.elapsed().as_secs_f64();

        let db = encrypt_for_knn(&relation, owner.keys(), &mut rng).expect("kNN encryption");
        let mut clouds = TwoClouds::new(owner.keys(), 113).expect("cloud setup");
        let upper = vec![2_000u64; relation.num_attributes()];
        let started = Instant::now();
        let knn = sknn_query(&mut clouds, &db, &upper, k).expect("kNN query");
        let knn_time = started.elapsed().as_secs_f64();

        table.push_row(vec![
            rows.to_string(),
            fmt_secs(topk_time),
            fmt_mb(topk.total_bytes),
            fmt_secs(knn_time),
            fmt_mb(knn.channel.bytes),
            knn.secure_multiplications.to_string(),
        ]);
    }
    table
}

// ====================================================================================
// Fig. 14 — top-k join
// ====================================================================================

/// Fig. 14: secure top-k join time as a function of the number of joined attributes.
pub fn fig14_topk_join(scale: &BenchScale) -> Table {
    use sectopk_core::{encrypt_for_join, join_token, top_k_join, JoinQuery};

    let mut table = Table::new(
        "Fig. 14",
        "Top-k join ./sec: time vs number of carried attributes (R1, R2 synthetic)",
        &["carried attrs", "time", "bandwidth", "matching pairs"],
    );
    let mut rng = StdRng::seed_from_u64(14);
    let keys =
        MasterKeys::generate(scale.modulus_bits, scale.ehl_keys, &mut rng).expect("key generation");

    // R1: join_rows.0 tuples × 10 attributes, R2: join_rows.1 tuples × 15 attributes, as
    // in §12.4.1 (scaled).  Join keys drawn from a small domain so matches exist.
    let r1 = join_relation(scale.join_rows.0, 10, 21);
    let r2 = join_relation(scale.join_rows.1, 15, 22);
    let enc_r1 = encrypt_for_join(&r1, &keys, "join/left", &mut rng).expect("encrypt R1");
    let enc_r2 = encrypt_for_join(&r2, &keys, "join/right", &mut rng).expect("encrypt R2");

    for &carried in &[1usize, 3, 5, 8] {
        let query = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 5 };
        let carry_left: Vec<usize> = (0..carried.min(10)).collect();
        let carry_right: Vec<usize> = (0..carried.min(15)).collect();
        let token =
            join_token(&keys, 10, 15, &query, &carry_left, &carry_right).expect("join token");
        let mut clouds = TwoClouds::new(&keys, 14).expect("cloud setup");
        let started = Instant::now();
        let outcome = top_k_join(&mut clouds, &enc_r1, &enc_r2, &token).expect("secure join");
        let elapsed = started.elapsed().as_secs_f64();
        table.push_row(vec![
            (carry_left.len() + carry_right.len()).to_string(),
            fmt_secs(elapsed),
            fmt_mb(clouds.channel().bytes),
            outcome.matching_pairs.to_string(),
        ]);
    }
    table
}

/// A synthetic relation for the join benchmark: attribute 0 is a small-domain join key,
/// the rest are uniform scores.
fn join_relation(rows: usize, attributes: usize, seed: u64) -> Relation {
    use rand::Rng;
    use sectopk_storage::{ObjectId, Row};
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows(
        (0..rows)
            .map(|i| {
                let mut values = vec![rng.gen_range(0..16u64)];
                values.extend((1..attributes).map(|_| rng.gen_range(0..1_000u64)));
                Row { id: ObjectId(i as u64), values }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> BenchScale {
        BenchScale::smoke()
    }

    #[test]
    fn fig7_produces_one_row_per_size() {
        let t = fig7_ehl_construction(&smoke());
        assert_eq!(t.rows.len(), smoke().ehl_items.len());
    }

    #[test]
    fn fig8_covers_all_datasets() {
        let t = fig8_dataset_encryption(&smoke());
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("insurance"));
    }

    #[test]
    fn query_perf_is_measured() {
        let scale = smoke();
        let (owner, relation, out) =
            prepare_dataset(DatasetKind::Insurance, scale.query_rows, &scale, 1);
        let query = QueryWorkload::fixed(relation.num_attributes(), 2, 2, 1);
        let perf =
            measure_query(&owner, &relation, &out, &query, &QueryConfig::dup_elim(), &scale, 1);
        assert!(perf.seconds_per_depth > 0.0);
        assert!(perf.total_bytes > 0);
        assert!(perf.depths >= 1 && perf.depths <= scale.max_depth);
    }

    #[test]
    fn knn_comparison_has_two_rows() {
        let t = knn_comparison(&smoke());
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn join_relation_shape() {
        let r = join_relation(12, 5, 3);
        assert_eq!(r.len(), 12);
        assert_eq!(r.num_attributes(), 5);
    }

    #[test]
    fn batching_parameter_is_positive() {
        assert!(batching_parameter(&smoke()) >= 2);
        assert!(batching_parameter(&BenchScale::laptop()) >= 2);
    }
}
