//! # sectopk-bench
//!
//! The benchmark harness that regenerates every table and figure of the paper's
//! evaluation (§11 and §12.4.1).  The measurement logic lives in [`runners`] so that the
//! `figures` binary (which prints the same rows/series the paper reports) and the
//! Criterion micro-benchmarks share one code path; [`scale`] holds the knobs that map the
//! paper-scale workloads onto laptop-scale ones.
//!
//! Run `cargo run --release -p sectopk-bench --bin figures -- --help` for the experiment
//! index, or `cargo bench` for the Criterion micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runners;
pub mod scale;

pub use report::Table;
pub use scale::BenchScale;
