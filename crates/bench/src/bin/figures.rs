//! `figures` — regenerate the rows/series of every table and figure of the paper's
//! evaluation (§11, §12.4.1).
//!
//! ```text
//! cargo run --release -p sectopk-bench --bin figures -- --list
//! cargo run --release -p sectopk-bench --bin figures -- --experiment fig9
//! cargo run --release -p sectopk-bench --bin figures -- --all
//! cargo run --release -p sectopk-bench --bin figures -- --all --paper-scale   # hours!
//! cargo run --release -p sectopk-bench --bin figures -- --experiment table3 --json
//! ```

use std::env;
use std::process::ExitCode;

use sectopk_bench::{runners, BenchScale, Table};

struct Experiment {
    key: &'static str,
    description: &'static str,
    run: fn(&BenchScale) -> Vec<Table>,
}

fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            key: "fig7",
            description: "EHL vs EHL+ construction time and size",
            run: |s| vec![runners::fig7_ehl_construction(s)],
        },
        Experiment {
            key: "fig8",
            description: "Database encryption time and size per dataset",
            run: |s| vec![runners::fig8_dataset_encryption(s)],
        },
        Experiment {
            key: "fig9",
            description: "Qry_F time per depth, varying k and m",
            run: |s| vec![runners::fig9a_qry_f_vary_k(s), runners::fig9b_qry_f_vary_m(s)],
        },
        Experiment {
            key: "fig10",
            description: "Qry_E time per depth, varying k and m",
            run: |s| vec![runners::fig10a_qry_e_vary_k(s), runners::fig10b_qry_e_vary_m(s)],
        },
        Experiment {
            key: "fig11",
            description: "Qry_Ba time per depth, varying k and m",
            run: |s| vec![runners::fig11a_qry_ba_vary_k(s), runners::fig11b_qry_ba_vary_m(s)],
        },
        Experiment {
            key: "fig11c",
            description: "Qry_Ba time per depth, varying the batching parameter p",
            run: |s| vec![runners::fig11c_qry_ba_vary_p(s)],
        },
        Experiment {
            key: "fig12",
            description: "Qry_F vs Qry_E vs Qry_Ba comparison",
            run: |s| vec![runners::fig12_variant_comparison(s)],
        },
        Experiment {
            key: "table3",
            description: "Communication bandwidth and latency per dataset",
            run: |s| vec![runners::table3_bandwidth(s)],
        },
        Experiment {
            key: "fig13",
            description: "Bandwidth per depth (vs m) and total bandwidth (vs k)",
            run: |s| vec![runners::fig13_bandwidth(s)],
        },
        Experiment {
            key: "knn",
            description: "SecTopK vs secure-kNN baseline (§11.3)",
            run: |s| vec![runners::knn_comparison(s)],
        },
        Experiment {
            key: "fig14",
            description: "Top-k join time vs number of carried attributes",
            run: |s| vec![runners::fig14_topk_join(s)],
        },
    ]
}

fn print_help() {
    println!("figures — regenerate the paper's evaluation tables and figures\n");
    println!("USAGE:");
    println!("  figures --list                     list the available experiments");
    println!("  figures --experiment <key> [...]   run one or more experiments");
    println!("  figures --all                      run every experiment");
    println!("\nOPTIONS:");
    println!("  --paper-scale   use the paper's full dataset sizes (very slow)");
    println!("  --smoke         use the minimal smoke-test scale");
    println!("  --json          emit JSON instead of plain-text tables");
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }

    let mut scale = BenchScale::laptop();
    if args.iter().any(|a| a == "--paper-scale") {
        scale = BenchScale::paper();
    }
    if args.iter().any(|a| a == "--smoke") {
        scale = BenchScale::smoke();
    }
    let as_json = args.iter().any(|a| a == "--json");

    let all = experiments();
    if args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        for e in &all {
            println!("  {:<8} {}", e.key, e.description);
        }
        return ExitCode::SUCCESS;
    }

    // Collect the requested experiment keys.
    let mut requested: Vec<&Experiment> = Vec::new();
    if args.iter().any(|a| a == "--all") {
        requested = all.iter().collect();
    } else {
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if arg == "--experiment" || arg == "-e" {
                match iter.next() {
                    Some(key) => match all.iter().find(|e| e.key == key.as_str()) {
                        Some(e) => requested.push(e),
                        None => {
                            eprintln!("unknown experiment '{key}'; use --list");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--experiment needs a key; use --list");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    if requested.is_empty() {
        eprintln!("nothing to run; use --all, --experiment <key>, or --list");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "# scale: {} rows / max depth {} / {}-bit modulus (use --paper-scale for the full workload)",
        scale.query_rows, scale.max_depth, scale.modulus_bits
    );
    for e in requested {
        eprintln!("# running {} — {}", e.key, e.description);
        for table in (e.run)(&scale) {
            if as_json {
                println!("{}", table.to_json());
            } else {
                println!("{}", table.render());
            }
        }
    }
    ExitCode::SUCCESS
}
