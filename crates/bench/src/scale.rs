//! Scaling knobs for the benchmark harness.
//!
//! The paper's testbed is a 24-core Xeon with 128 GB of RAM running million-record
//! datasets under 128-bit-security Paillier keys; this reproduction has to run on
//! whatever machine executes `cargo bench`.  The *shape* of every figure (who wins, how
//! quantities scale in k, m, p, n) is preserved at much smaller operating points; the
//! [`BenchScale`] struct collects those operating points so every runner and the
//! `figures` binary agree on them, and `--paper-scale` restores the paper's numbers for
//! anyone with the patience (and hardware) to run them.

use serde::{Deserialize, Serialize};

/// The operating point used by the benchmark runners.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchScale {
    /// Paillier modulus size in bits.
    pub modulus_bits: usize,
    /// Number of EHL PRF keys (`s`).
    pub ehl_keys: usize,
    /// Number of rows per dataset used for the query-processing figures.
    pub query_rows: usize,
    /// Hard cap on the number of depths scanned per query (time-per-depth figures do not
    /// need the scan to run to completion).
    pub max_depth: usize,
    /// Number of items for the EHL-construction figure (Fig. 7) at each measured point.
    pub ehl_items: Vec<usize>,
    /// Rows per dataset for the encryption figure (Fig. 8).
    pub encryption_rows: usize,
    /// Sizes of the two relations joined in Fig. 14.
    pub join_rows: (usize, usize),
    /// Rows for the secure-kNN comparison (§11.3).
    pub knn_rows: usize,
    /// Assumed inter-cloud link speed in Mbps (Table 3 uses 50 Mbps).
    pub link_mbps: f64,
}

impl BenchScale {
    /// The laptop-scale default: every figure completes in minutes.
    pub fn laptop() -> Self {
        BenchScale {
            modulus_bits: 128,
            ehl_keys: 5,
            query_rows: 60,
            max_depth: 10,
            ehl_items: vec![100, 200, 400, 800, 1_600],
            encryption_rows: 400,
            join_rows: (40, 80),
            knn_rows: 50,
            link_mbps: 50.0,
        }
    }

    /// A minimal scale used by the Criterion micro-benchmarks and smoke tests.
    pub fn smoke() -> Self {
        BenchScale {
            modulus_bits: 128,
            ehl_keys: 3,
            query_rows: 16,
            max_depth: 3,
            ehl_items: vec![25, 50],
            encryption_rows: 40,
            join_rows: (8, 12),
            knn_rows: 12,
            link_mbps: 50.0,
        }
    }

    /// The paper's operating point (§11): full dataset sizes, 0.1M–1M items for Fig. 7,
    /// and a 256-bit modulus (the size the paper quotes for the EHL+ analysis).  Running
    /// this takes many hours — it exists so the harness documents the real workload.
    pub fn paper() -> Self {
        BenchScale {
            modulus_bits: 256,
            ehl_keys: 5,
            query_rows: 1_000_000,
            max_depth: 1_000,
            ehl_items: (1..=10).map(|i| i * 100_000).collect(),
            encryption_rows: usize::MAX, // use each dataset's native size
            join_rows: (5_000, 10_000),
            knn_rows: 2_000,
            link_mbps: 50.0,
        }
    }
}

impl Default for BenchScale {
    fn default() -> Self {
        Self::laptop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        let smoke = BenchScale::smoke();
        let laptop = BenchScale::laptop();
        let paper = BenchScale::paper();
        assert!(smoke.query_rows < laptop.query_rows);
        assert!(laptop.query_rows < paper.query_rows);
        assert!(smoke.max_depth <= laptop.max_depth);
        assert_eq!(paper.join_rows, (5_000, 10_000));
        assert_eq!(BenchScale::default(), laptop);
    }
}
