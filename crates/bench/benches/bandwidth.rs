//! Table 3 / Fig. 13 micro-benchmark: the communication-bound primitives (batched EHL
//! equality exchange, RecoverEnc, batched comparison) whose per-depth message counts make
//! up the bandwidth figures, plus a whole-query measurement that reports bytes/depth via
//! the metered channel.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_bench::runners::{measure_query, prepare_dataset};
use sectopk_bench::BenchScale;
use sectopk_core::QueryConfig;
use sectopk_crypto::keys::MasterKeys;
use sectopk_datasets::{DatasetKind, QueryWorkload};
use sectopk_ehl::EhlEncoder;
use sectopk_protocols::TwoClouds;

fn bench_bandwidth(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let master = MasterKeys::generate(128, 5, &mut rng).unwrap();
    let encoder = EhlEncoder::new(&master.ehl_keys);
    let pk = master.paillier_public.clone();

    let mut group = c.benchmark_group("table3_fig13_bandwidth");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    // The per-depth message pattern is dominated by m² equality exchanges (m ∈ 2..8).
    for &m in &[2usize, 4, 8] {
        let encodings: Vec<_> = (0..m)
            .map(|i| encoder.encode(&(i as u64).to_be_bytes(), &pk, &mut rng).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("eq_batch_m_squared", m), &m, |b, &m| {
            let mut clouds = TwoClouds::new(&master, 13).unwrap();
            b.iter(|| {
                let pairs: Vec<_> = (0..m)
                    .flat_map(|i| (0..m).map(move |j| (i, j)))
                    .filter(|(i, j)| i != j)
                    .map(|(i, j)| (&encodings[i], &encodings[j]))
                    .collect();
                black_box(clouds.eq_batch(&pairs, "bench", None).unwrap())
            })
        });
    }

    group.bench_function("whole_query_bytes_per_depth", |b| {
        let scale = BenchScale::smoke();
        let (owner, relation, er) =
            prepare_dataset(DatasetKind::Synthetic, scale.query_rows, &scale, 13);
        let query = QueryWorkload::fixed(relation.num_attributes(), 4, 5, 13);
        b.iter(|| {
            let perf =
                measure_query(&owner, &relation, &er, &query, &QueryConfig::full(), &scale, 13);
            black_box(perf.bytes_per_depth)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
