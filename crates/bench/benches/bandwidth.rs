//! Table 3 / Fig. 13 micro-benchmark: the communication-bound primitives (batched EHL
//! equality exchange, RecoverEnc, batched comparison) whose per-depth message counts make
//! up the bandwidth figures, plus a whole-query measurement that reports bytes/depth via
//! the metered channel.
//!
//! Since the transport refactor the channel records *measured* wire sizes (binary codec
//! framing included) instead of `byte_len()` estimates, and this bench additionally
//! compares batched vs. unbatched `SecDedup` — one `Dedup` message per depth versus one
//! `EqTest` round per matrix pair — writing the rounds/bytes baseline to
//! `BENCH_transport.json` at the workspace root.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use sectopk_bench::runners::{measure_query, prepare_dataset};
use sectopk_bench::BenchScale;
use sectopk_core::QueryConfig;
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::PaillierPublicKey;
use sectopk_datasets::{DatasetKind, QueryWorkload};
use sectopk_ehl::EhlEncoder;
use sectopk_protocols::{ScoredItem, TransportKind, TwoClouds};

/// Per-configuration measurement of one `SecDedup` execution.
#[derive(Clone, Copy, Debug, Serialize)]
struct DedupCost {
    depth_items: usize,
    batched: bool,
    rounds: u64,
    bytes: u64,
    messages: u64,
}

fn dedup_items(
    count: usize,
    encoder: &EhlEncoder,
    pk: &PaillierPublicKey,
    rng: &mut StdRng,
) -> Vec<ScoredItem> {
    (0..count)
        .map(|i| ScoredItem {
            // Every third item repeats an object so the dedup path has real work.
            ehl: encoder
                .encode(&((i % ((count / 3).max(1))) as u64).to_be_bytes(), pk, rng)
                .unwrap(),
            worst: pk.encrypt_u64(i as u64, rng).unwrap(),
            best: pk.encrypt_u64(i as u64 + 10, rng).unwrap(),
        })
        .collect()
}

fn measure_dedup(master: &MasterKeys, depth_items: usize, batched: bool) -> DedupCost {
    let mut rng = StdRng::seed_from_u64(depth_items as u64);
    let encoder = EhlEncoder::new(&master.ehl_keys);
    let pk = master.paillier_public.clone();
    let mut clouds =
        TwoClouds::with_transport(master, 7, TransportKind::InProcess, batched).unwrap();
    let items = dedup_items(depth_items, &encoder, &pk, &mut rng);
    let out = clouds.sec_dedup(items, 0).unwrap();
    assert_eq!(out.len(), depth_items);
    let metrics = clouds.channel();
    DedupCost {
        depth_items,
        batched,
        rounds: metrics.rounds,
        bytes: metrics.bytes,
        messages: metrics.total_messages(),
    }
}

/// Run batched vs. unbatched `SecDedup` at depths 10/50/100 once each, print the
/// comparison, and record the baseline to `BENCH_transport.json`.
fn record_transport_baseline(master: &MasterKeys) {
    let mut results: Vec<DedupCost> = Vec::new();
    println!(
        "\nSecDedup rounds/bytes, batched (one Dedup message) vs unbatched (EqTest per pair):"
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "items", "rounds(b)", "rounds(u)", "bytes(b)", "bytes(u)"
    );
    for &depth_items in &[10usize, 50, 100] {
        let batched = measure_dedup(master, depth_items, true);
        let unbatched = measure_dedup(master, depth_items, false);
        assert!(
            batched.rounds < unbatched.rounds,
            "batching must strictly reduce rounds at depth {depth_items}"
        );
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12}",
            depth_items, batched.rounds, unbatched.rounds, batched.bytes, unbatched.bytes
        );
        results.push(batched);
        results.push(unbatched);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    let json = serde_json::to_string_pretty(&results).expect("serialize baseline");
    if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("could not record BENCH_transport.json: {e}");
    } else {
        println!("baseline recorded to BENCH_transport.json\n");
    }
}

fn bench_bandwidth(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let master = MasterKeys::generate(128, 5, &mut rng).unwrap();
    let encoder = EhlEncoder::new(&master.ehl_keys);
    let pk = master.paillier_public.clone();

    // One-shot rounds/bytes comparison + baseline file (uses a lighter 3-key EHL so the
    // unbatched depth-100 run stays quick).  Gated behind an env var so routine bench
    // runs stay fast and do not rewrite the committed baseline.
    let mut baseline_rng = StdRng::seed_from_u64(31);
    let baseline_master = MasterKeys::generate(128, 3, &mut baseline_rng).unwrap();
    if std::env::var("SECTOPK_RECORD_BASELINE").is_ok() {
        record_transport_baseline(&baseline_master);
    } else {
        println!(
            "\n(set SECTOPK_RECORD_BASELINE=1 to re-run the batched-vs-unbatched SecDedup \
             sweep at depths 10/50/100 and rewrite BENCH_transport.json)"
        );
    }

    let mut group = c.benchmark_group("table3_fig13_bandwidth");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    // The per-depth message pattern is dominated by m² equality exchanges (m ∈ 2..8).
    for &m in &[2usize, 4, 8] {
        let encodings: Vec<_> = (0..m)
            .map(|i| encoder.encode(&(i as u64).to_be_bytes(), &pk, &mut rng).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("eq_batch_m_squared", m), &m, |b, &m| {
            let mut clouds = TwoClouds::new(&master, 13).unwrap();
            b.iter(|| {
                let pairs: Vec<_> = (0..m)
                    .flat_map(|i| (0..m).map(move |j| (i, j)))
                    .filter(|(i, j)| i != j)
                    .map(|(i, j)| (&encodings[i], &encodings[j]))
                    .collect();
                black_box(clouds.eq_batch(&pairs, "bench", None).unwrap())
            })
        });
    }

    // Timed batched dedup at the smallest comparison depth (the unbatched variants are
    // measured once above — their cost is dominated by the per-pair round trips).
    group.bench_function("sec_dedup_batched_depth10", |b| {
        let mut clouds = TwoClouds::new(&baseline_master, 7).unwrap();
        let bench_encoder = EhlEncoder::new(&baseline_master.ehl_keys);
        let bench_pk = baseline_master.paillier_public.clone();
        let mut item_rng = StdRng::seed_from_u64(10);
        b.iter(|| {
            let items = dedup_items(10, &bench_encoder, &bench_pk, &mut item_rng);
            black_box(clouds.sec_dedup(items, 0).unwrap())
        })
    });

    group.bench_function("whole_query_bytes_per_depth", |b| {
        let scale = BenchScale::smoke();
        let (owner, relation, er) =
            prepare_dataset(DatasetKind::Synthetic, scale.query_rows, &scale, 13);
        let query = QueryWorkload::fixed(relation.num_attributes(), 4, 5, 13);
        b.iter(|| {
            let perf =
                measure_query(&owner, &relation, &er, &query, &QueryConfig::full(), &scale, 13);
            black_box(perf.bytes_per_depth)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
