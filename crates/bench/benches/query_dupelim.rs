//! Fig. 10 micro-benchmark: the SecDupElim-optimised query `Qry_E`, varying k and m.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sectopk_bench::runners::{measure_query, prepare_dataset};
use sectopk_bench::BenchScale;
use sectopk_core::QueryConfig;
use sectopk_datasets::{DatasetKind, QueryWorkload};

fn bench_query_dupelim(c: &mut Criterion) {
    let scale = BenchScale::smoke();
    let (owner, relation, er) =
        prepare_dataset(DatasetKind::Insurance, scale.query_rows, &scale, 10);
    let m_attrs = relation.num_attributes();

    let mut group = c.benchmark_group("fig10_qry_e");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    for &k in &[2usize, 10] {
        let query = QueryWorkload::fixed(m_attrs, 2, k, 10);
        group.bench_with_input(BenchmarkId::new("vary_k", k), &k, |b, _| {
            b.iter(|| {
                black_box(measure_query(
                    &owner,
                    &relation,
                    &er,
                    &query,
                    &QueryConfig::dup_elim(),
                    &scale,
                    10,
                ))
            })
        });
    }
    for &m in &[2usize, 3] {
        let query = QueryWorkload::fixed(m_attrs, m, 3, 10);
        group.bench_with_input(BenchmarkId::new("vary_m", m), &m, |b, _| {
            b.iter(|| {
                black_box(measure_query(
                    &owner,
                    &relation,
                    &er,
                    &query,
                    &QueryConfig::dup_elim(),
                    &scale,
                    10,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_dupelim);
criterion_main!(benches);
