//! Multi-session serving throughput: aggregate queries/second of the `QueryServer` as
//! the number of concurrent sessions (and S2 worker threads) grows.
//!
//! Two regimes matter:
//!
//! * **Latency-bound** (nonzero inter-cloud RTT — the paper's §11.2.5 WAN setting):
//!   each query spends most of its wall-clock waiting out round trips, so multiplexing
//!   N sessions over one S2 overlaps the waits and scales aggregate throughput toward
//!   N× until the CPU saturates.  This is the regime the committed baseline
//!   (`BENCH_throughput.json`) sweeps, because it is hardware-independent: the speedup
//!   comes from overlapping waits, not from core count.
//! * **CPU-bound** (ideal link): scaling follows the host's core count; the sweep
//!   records it for reference without asserting on it.
//!
//! `SECTOPK_RECORD_BASELINE=1 cargo bench -p sectopk-bench --bench throughput` re-runs
//! the sweep at 1/4/8/16 sessions and rewrites `BENCH_throughput.json` at the
//! workspace root, asserting the ≥3× aggregate-throughput criterion at 8 sessions.
//! The sweep also records a `tcp-loopback` column — the same workload over real
//! sockets to a loopback `TcpCloudServer` — and asserts its aggregate q/s stays
//! within a 5× sanity bound of the multiplex ideal-link rows in both directions,
//! plus a `tcp-faults-*` column pricing fault-tolerant serving: q/s and p99 query
//! latency at 0% / 1% / 5% injected connection drops, retry and resumption riding
//! out every fault (`tests/chaos_soak.rs` proves those runs byte-identical; the
//! bench prices them).
//!
//! A second sweep (`intra-*` rows) measures **intra-query** parallelism: one session,
//! one query, 1/2/4/8 `SECTOPK_INTRA_PARALLEL`-style workers threading S2's
//! parallel-compute/serial-commit pipeline and S1's data-parallel client loops.  On a
//! host with ≥4 cores, 4 workers must cut single-query latency by ≥2× on the ideal
//! link; on smaller hosts the sweep records honest numbers (plus the `cores` field)
//! without asserting.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use sectopk_core::{DataOwner, FaultPlan, Outsourced, Query, RetryPolicy, Session, VariantChoice};
use sectopk_crypto::pool::shard_seed;
use sectopk_datasets::{fig3_relation, QueryWorkload, WorkloadSpec};
use sectopk_protocols::{LinkProfile, MultiplexServer, TcpCloudServer, TcpServerConfig};
use sectopk_server::{QueryServer, ServeConfig};

/// One variant the planner chose during a sweep point, with how often.
#[derive(Clone, Debug, Serialize)]
struct VariantCount {
    variant: &'static str,
    p: Option<usize>,
    queries: usize,
}

/// One row of the recorded sweep.  `planned_variants` and `errors` make the recorded
/// baseline self-describing: every row names the variants (and `p`) the adaptive
/// planner executed and how many queries failed.
#[derive(Clone, Debug, Serialize)]
struct ThroughputPoint {
    /// Link column: `wan-20ms` / `ideal` (simulated `LinkProfile`s over the multiplex
    /// transport), `tcp-loopback` (real sockets to a loopback `TcpCloudServer`), or
    /// `intra-ideal` / `intra-wan-20ms` (single-session single-query latency swept
    /// over the intra-query worker count).
    link: String,
    sessions: usize,
    /// S2-side worker threads: the session count for the multi-session rows, the
    /// intra-query worker count for the `intra-*` rows.
    s2_workers: usize,
    queries: usize,
    rtt_ms: u64,
    wall_seconds: f64,
    qps: f64,
    /// Aggregate-throughput speedup over the 1-session run of the same link profile
    /// (for `intra-*` rows: single-query speedup over the 1-worker run; for
    /// `tcp-faults-*` rows: throughput relative to the fault-free control row, so a
    /// value below 1 is the price of the injected faults).
    speedup_vs_one_session: f64,
    /// Cores available on the recording host — ideal-link scaling (and whether the
    /// intra-query ≥2× assertion was armed) depends on it.
    cores: usize,
    rounds_total: u64,
    bytes_total: u64,
    /// The planner decisions behind the run (`variant(Auto)` serving).
    planned_variants: Vec<VariantCount>,
    /// Failed queries across all sessions (serving continues past failures).
    errors: usize,
    /// For the `tcp-faults-*` rows: the injected fault period (a connection is severed
    /// after every Nth frame send; `0` = fault-free control row).  `null` elsewhere.
    fault_drop_every: Option<u64>,
    /// For the `tcp-faults-*` rows: p99 per-query latency in seconds — the tail cost
    /// of riding out reconnect-resume-resend under the injected fault rate.  `null`
    /// elsewhere, and `null` whenever the run produced fewer than [`MIN_P99_SAMPLES`]
    /// latency samples (a 99th percentile of 16 queries is just the max, so small runs
    /// report nothing rather than a mislabeled number).
    p99_seconds: Option<f64>,
    /// Transport-level faults absorbed invisibly by retry (reconnect-resume
    /// recoveries, shed-retry successes) across all sessions.  Nonzero on the
    /// fault-injected rows, zero elsewhere — kept separate from `errors`, which counts
    /// failed *queries*.
    transport_failures: u64,
}

/// Minimum latency samples before a p99 is reported.  Below this the 99th percentile
/// degenerates to the sample maximum (for n ≤ 100, `ceil(0.99·n) == n`), which is a
/// different — and much noisier — statistic, so small runs record `null` instead.
const MIN_P99_SAMPLES: usize = 100;

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn serving_fixture() -> (DataOwner, Outsourced, QueryWorkload) {
    let mut rng = StdRng::seed_from_u64(0x7117);
    let owner = DataOwner::new(128, 2, &mut rng).expect("keygen");
    let relation = fig3_relation();
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
    let spec = WorkloadSpec { queries: 16, m_range: (1, 3), k_range: (1, 3) };
    let workload = QueryWorkload::generate(&spec, 3, 0x7117);
    (owner, outsourced, workload)
}

fn measure(
    owner: &DataOwner,
    outsourced: &Outsourced,
    workload: &QueryWorkload,
    sessions: usize,
    rtt_ms: u64,
    one_session_qps: Option<f64>,
) -> ThroughputPoint {
    let server = QueryServer::new(owner.keys(), outsourced.clone(), sessions);
    let config = ServeConfig::new(sessions, 0xBEA7).with_variant(VariantChoice::Auto).with_link(
        if rtt_ms == 0 { LinkProfile::ideal() } else { LinkProfile::with_rtt_ms(rtt_ms) },
    );
    let report = server.serve(workload, &config).expect("serve");
    let qps = report.throughput_qps();
    ThroughputPoint {
        link: if rtt_ms == 0 { "ideal".into() } else { format!("wan-{rtt_ms}ms") },
        sessions,
        s2_workers: sessions,
        queries: report.queries,
        rtt_ms,
        wall_seconds: report.wall_seconds,
        qps,
        speedup_vs_one_session: one_session_qps.map_or(1.0, |base| qps / base),
        cores: available_cores(),
        rounds_total: report.sessions.iter().map(|s| s.metrics.rounds).sum(),
        bytes_total: report.sessions.iter().map(|s| s.metrics.bytes).sum(),
        planned_variants: report
            .variant_histogram()
            .into_iter()
            .map(|(variant, p, queries)| VariantCount { variant, p, queries })
            .collect(),
        errors: report.error_count(),
        fault_drop_every: None,
        p99_seconds: None,
        transport_failures: report.transport_failures(),
    }
}

/// Single-session, single-query latency at `workers` intra-query workers: S2 executes
/// its decrypt batches through the parallel-compute/serial-commit pipeline and S1
/// data-parallelizes its client loops, while the transcript stays byte-identical to
/// the serial run (see `tests/intra_parallel_equivalence.rs`).  `qps` here is simply
/// `1 / latency`.
fn measure_intra(
    owner: &DataOwner,
    outsourced: &Outsourced,
    single_query: &QueryWorkload,
    workers: usize,
    rtt_ms: u64,
    one_worker_qps: Option<f64>,
) -> ThroughputPoint {
    let server = QueryServer::new(owner.keys(), outsourced.clone(), 1);
    let config = ServeConfig::new(1, 0xBEA7)
        .with_variant(VariantChoice::Auto)
        .with_intra_workers(workers)
        .with_link(if rtt_ms == 0 {
            LinkProfile::ideal()
        } else {
            LinkProfile::with_rtt_ms(rtt_ms)
        });
    let report = server.serve(single_query, &config).expect("serve");
    let qps = report.throughput_qps();
    ThroughputPoint {
        link: if rtt_ms == 0 { "intra-ideal".into() } else { format!("intra-wan-{rtt_ms}ms") },
        sessions: 1,
        s2_workers: workers,
        queries: report.queries,
        rtt_ms,
        wall_seconds: report.wall_seconds,
        qps,
        speedup_vs_one_session: one_worker_qps.map_or(1.0, |base| qps / base),
        cores: available_cores(),
        rounds_total: report.sessions.iter().map(|s| s.metrics.rounds).sum(),
        bytes_total: report.sessions.iter().map(|s| s.metrics.bytes).sum(),
        planned_variants: report
            .variant_histogram()
            .into_iter()
            .map(|(variant, p, queries)| VariantCount { variant, p, queries })
            .collect(),
        errors: report.error_count(),
        fault_drop_every: None,
        p99_seconds: None,
        transport_failures: report.transport_failures(),
    }
}

/// Serve the workload over **real TCP sockets**: a loopback `TcpCloudServer` with a
/// `sessions`-wide worker pool, one `RemoteSession` per session thread, the same
/// round-robin query deal as `QueryServer::serve`.  Real sockets give real-socket
/// numbers; the simulated `LinkProfile` rows stay the reproducible baseline.
fn measure_tcp(
    owner: &DataOwner,
    outsourced: &Outsourced,
    workload: &QueryWorkload,
    sessions: usize,
    one_session_qps: Option<f64>,
) -> ThroughputPoint {
    let listener = TcpCloudServer::serve_pool(
        "127.0.0.1:0",
        Arc::new(MultiplexServer::new(sessions)),
        TcpServerConfig::default(),
    )
    .expect("bind loopback listener");
    let addr = listener.local_addr().to_string();
    let parts = workload.partition(sessions);

    struct SessionTally {
        queries: usize,
        errors: usize,
        rounds: u64,
        bytes: u64,
        plans: Vec<(&'static str, Option<usize>)>,
    }

    let start = Instant::now();
    let tallies: Vec<SessionTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(i, queries)| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    let mut session = owner
                        .connect_remote(outsourced, addr, shard_seed(0xBEA7, i as u64))
                        .expect("remote session connects");
                    let mut tally = SessionTally {
                        queries: queries.len(),
                        errors: 0,
                        rounds: 0,
                        bytes: 0,
                        plans: Vec::new(),
                    };
                    for query in queries {
                        let built =
                            Query::from_spec(query.clone()).with_variant(VariantChoice::Auto);
                        match session.execute(&built) {
                            Ok(resolved) => {
                                if let Some(plan) = resolved.plan() {
                                    tally
                                        .plans
                                        .push((plan.variant_name(), plan.batching_parameter()));
                                }
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    let metrics = session.metrics();
                    tally.rounds = metrics.rounds;
                    tally.bytes = metrics.bytes;
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let queries: usize = tallies.iter().map(|t| t.queries).sum();
    let qps = queries as f64 / wall_seconds;
    let mut planned_variants: Vec<VariantCount> = Vec::new();
    for (variant, p) in tallies.iter().flat_map(|t| t.plans.iter().copied()) {
        match planned_variants.iter_mut().find(|v| (v.variant, v.p) == (variant, p)) {
            Some(row) => row.queries += 1,
            None => planned_variants.push(VariantCount { variant, p, queries: 1 }),
        }
    }
    ThroughputPoint {
        link: "tcp-loopback".into(),
        sessions,
        s2_workers: sessions,
        queries,
        rtt_ms: 0,
        wall_seconds,
        qps,
        speedup_vs_one_session: one_session_qps.map_or(1.0, |base| qps / base),
        cores: available_cores(),
        rounds_total: tallies.iter().map(|t| t.rounds).sum(),
        bytes_total: tallies.iter().map(|t| t.bytes).sum(),
        planned_variants,
        errors: tallies.iter().map(|t| t.errors).sum(),
        fault_drop_every: None,
        p99_seconds: None,
        transport_failures: 0,
    }
}

/// Serve the workload through [`QueryServer::serve_tcp`] — real loopback sockets with
/// session resumption and a patient [`RetryPolicy`] — while a deterministic
/// [`FaultPlan`] severs each session's connection after every `drop_every`th frame
/// send (`0` = fault-free control).  Records aggregate q/s plus the p99 per-query
/// latency: the throughput and tail cost of riding out reconnect-resume-resend at the
/// injected fault rate.  `tests/chaos_soak.rs` proves these runs are byte-identical to
/// fault-free serving; this row prices them.
fn measure_tcp_faults(
    owner: &DataOwner,
    outsourced: &Outsourced,
    workload: &QueryWorkload,
    sessions: usize,
    drop_every: u64,
    fault_free_qps: Option<f64>,
) -> ThroughputPoint {
    let server = QueryServer::new(owner.keys(), outsourced.clone(), sessions);
    let retry = RetryPolicy {
        attempts: 12,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        deadline: Duration::from_secs(120),
    };
    let mut config =
        ServeConfig::new(sessions, 0xBEA7).with_variant(VariantChoice::Auto).with_retry(retry);
    if drop_every > 0 {
        config = config.with_faults(FaultPlan::none().with_drop_after_send_every(drop_every));
    }
    let report = server.serve_tcp(workload, &config).expect("fault-injected TCP serve");
    let qps = report.throughput_qps();
    let mut latencies: Vec<f64> = report
        .sessions
        .iter()
        .flat_map(|s| s.outcomes.iter().map(|o| o.stats.total_seconds))
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    // Below MIN_P99_SAMPLES the "p99" index degenerates to the last element — the
    // sample max, not a percentile — so report None uniformly instead of a number
    // that changes meaning with the sample count.
    let p99 = if latencies.len() >= MIN_P99_SAMPLES {
        latencies.get(((latencies.len() as f64 * 0.99).ceil() as usize).saturating_sub(1)).copied()
    } else {
        None
    };
    let drop_pct = if drop_every == 0 { 0.0 } else { 100.0 / drop_every as f64 };
    ThroughputPoint {
        link: format!("tcp-faults-{drop_pct}pct"),
        sessions,
        s2_workers: sessions,
        queries: report.queries,
        rtt_ms: 0,
        wall_seconds: report.wall_seconds,
        qps,
        speedup_vs_one_session: fault_free_qps.map_or(1.0, |base| qps / base),
        cores: available_cores(),
        rounds_total: report.sessions.iter().map(|s| s.metrics.rounds).sum(),
        bytes_total: report.sessions.iter().map(|s| s.metrics.bytes).sum(),
        planned_variants: report
            .variant_histogram()
            .into_iter()
            .map(|(variant, p, queries)| VariantCount { variant, p, queries })
            .collect(),
        errors: report.error_count(),
        fault_drop_every: Some(drop_every),
        p99_seconds: p99,
        transport_failures: report.transport_failures(),
    }
}

/// Sweep 1/4/8/16 concurrent sessions over the WAN and ideal link profiles, print the
/// comparison, record the baseline, and enforce the ≥3× criterion at 8 sessions.
fn record_throughput_baseline() {
    let (owner, outsourced, workload) = serving_fixture();
    let mut results: Vec<ThroughputPoint> = Vec::new();
    println!("\nAggregate serving throughput, 16 queries dealt round-robin:");
    println!("{:>8} {:>7} {:>9} {:>9} {:>9}", "link", "sessions", "wall(s)", "q/s", "speedup");
    for &rtt_ms in &[20u64, 0] {
        let mut one_session_qps = None;
        for &sessions in &[1usize, 4, 8, 16] {
            let point = measure(&owner, &outsourced, &workload, sessions, rtt_ms, one_session_qps);
            if sessions == 1 {
                one_session_qps = Some(point.qps);
            }
            println!(
                "{:>8} {:>7} {:>9.3} {:>9.2} {:>8.2}x",
                if rtt_ms == 0 { "ideal".to_string() } else { format!("{rtt_ms}ms") },
                point.sessions,
                point.wall_seconds,
                point.qps,
                point.speedup_vs_one_session,
            );
            results.push(point.clone());
        }
    }
    // The tcp-loopback column: the same sweep over real sockets.
    let mut one_session_qps = None;
    for &sessions in &[1usize, 4, 8, 16] {
        let point = measure_tcp(&owner, &outsourced, &workload, sessions, one_session_qps);
        if sessions == 1 {
            one_session_qps = Some(point.qps);
        }
        println!(
            "{:>8} {:>7} {:>9.3} {:>9.2} {:>8.2}x",
            "tcp", point.sessions, point.wall_seconds, point.qps, point.speedup_vs_one_session,
        );
        results.push(point.clone());
    }
    // The fault-tolerance column: the same workload through `serve_tcp` with retry and
    // resumption enabled, at 0% / 1% / 5% injected connection drops (a drop after
    // every 100th / 20th frame send).  Every row must come back clean — the retry
    // layer, not the caller, absorbs the faults — and p99 prices the recovery tail.
    println!("\nFault-tolerant TCP serving, 4 sessions, retry + resumption enabled:");
    println!(
        "{:>16} {:>7} {:>9} {:>9} {:>10} {:>9}",
        "link", "drop", "wall(s)", "q/s", "p99(ms)", "vs 0%"
    );
    let mut fault_free_qps = None;
    for &drop_every in &[0u64, 100, 20] {
        let point =
            measure_tcp_faults(&owner, &outsourced, &workload, 4, drop_every, fault_free_qps);
        if drop_every == 0 {
            fault_free_qps = Some(point.qps);
        }
        assert_eq!(
            point.errors, 0,
            "every injected fault must be absorbed by retry (drop_every={drop_every})"
        );
        if drop_every > 0 {
            assert!(
                point.transport_failures > 0,
                "faults were injected (drop_every={drop_every}) but none were absorbed — \
                 the FaultPlan is not reaching the transport"
            );
        }
        println!(
            "{:>16} {:>6}% {:>9.3} {:>9.2} {:>10} {:>8.2}x  ({} faults absorbed)",
            point.link,
            if drop_every == 0 { 0.0 } else { 100.0 / drop_every as f64 },
            point.wall_seconds,
            point.qps,
            point.p99_seconds.map_or_else(|| "n/a".to_string(), |p| format!("{:.2}", p * 1e3)),
            point.speedup_vs_one_session,
            point.transport_failures,
        );
        results.push(point.clone());
    }
    // A loose floor: on loopback, riding out a 5% drop rate costs reconnects and
    // millisecond backoffs, not order-of-magnitude collapse.  A steeper fall means the
    // retry path is rebuilding more than the severed connection.
    let worst = results
        .iter()
        .filter(|p| p.fault_drop_every.is_some_and(|d| d > 0))
        .map(|p| p.speedup_vs_one_session)
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst >= 0.05,
        "faulted serving fell more than 20x below the fault-free control ({worst:.3}x)"
    );

    // Intra-query parallelism: one session, ONE query, sweeping the worker count that
    // threads S2's parallel-compute/serial-commit pipeline and S1's client loops.
    let single = QueryWorkload { queries: vec![workload.queries[0].clone()] };
    println!("\nSingle-query latency vs intra-query workers ({} cores):", available_cores());
    println!("{:>14} {:>7} {:>9} {:>9} {:>9}", "link", "workers", "wall(s)", "q/s", "speedup");
    for &rtt_ms in &[20u64, 0] {
        let mut one_worker_qps = None;
        for &workers in &[1usize, 2, 4, 8] {
            let point =
                measure_intra(&owner, &outsourced, &single, workers, rtt_ms, one_worker_qps);
            if workers == 1 {
                one_worker_qps = Some(point.qps);
            }
            println!(
                "{:>14} {:>7} {:>9.3} {:>9.2} {:>8.2}x",
                point.link,
                point.s2_workers,
                point.wall_seconds,
                point.qps,
                point.speedup_vs_one_session,
            );
            results.push(point.clone());
        }
    }
    // The intra-query criterion: on a host with ≥4 cores, 4 workers must answer a
    // single ideal-link query at least 2× faster than the serial run.  On smaller
    // hosts the rows are recorded honestly (see the `cores` field) without asserting —
    // the scaling claim is meaningless when the OS can't schedule the workers.
    let cores = available_cores();
    let one = results
        .iter()
        .find(|p| p.link == "intra-ideal" && p.s2_workers == 1)
        .expect("1-worker intra point");
    let four = results
        .iter()
        .find(|p| p.link == "intra-ideal" && p.s2_workers == 4)
        .expect("4-worker intra point");
    if cores >= 4 {
        assert!(
            four.qps >= 2.0 * one.qps,
            "4 intra-query workers must cut single-query ideal-link latency ≥2× \
             (got {:.2}× on {cores} cores)",
            four.qps / one.qps
        );
    } else {
        println!(
            "({cores} core(s) available: intra-query scaling recorded without the ≥2x assertion)"
        );
    }

    // Sanity bound on the real-socket overhead: loopback TCP serves the same workload
    // within 5× of the multiplex ideal-link aggregate throughput, in both directions
    // (a collapse or an implausible speedup both indicate a metering/transport bug).
    for &sessions in &[1usize, 4, 8, 16] {
        let ideal = results
            .iter()
            .find(|p| p.link == "ideal" && p.sessions == sessions)
            .expect("ideal point");
        let tcp = results
            .iter()
            .find(|p| p.link == "tcp-loopback" && p.sessions == sessions)
            .expect("tcp point");
        let ratio = tcp.qps / ideal.qps;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "tcp-loopback vs multiplex-ideal q/s at {sessions} sessions out of sanity \
             bounds: {ratio:.2}x"
        );
    }
    // The serving criterion: 8 concurrent sessions + 8 S2 workers must deliver at
    // least 3× the aggregate throughput of the single-session baseline on the
    // latency-bound link.  (The ideal-link scaling additionally depends on core count
    // and is recorded without assertion.)
    let wan: Vec<&ThroughputPoint> = results.iter().filter(|p| p.rtt_ms > 0).collect();
    let base = wan.iter().find(|p| p.sessions == 1).expect("1-session WAN point");
    let eight = wan.iter().find(|p| p.sessions == 8).expect("8-session WAN point");
    assert!(
        eight.qps >= 3.0 * base.qps,
        "8-session serving must be ≥3× the 1-session baseline (got {:.2}×)",
        eight.qps / base.qps
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = serde_json::to_string_pretty(&results).expect("serialize baseline");
    if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("could not record BENCH_throughput.json: {e}");
    } else {
        println!("baseline recorded to BENCH_throughput.json\n");
    }
}

fn bench_throughput(c: &mut Criterion) {
    if std::env::var("SECTOPK_RECORD_BASELINE").is_ok() {
        record_throughput_baseline();
    } else {
        println!(
            "\n(set SECTOPK_RECORD_BASELINE=1 to re-run the 1/4/8/16-session serving sweep \
             and rewrite BENCH_throughput.json)"
        );
    }

    let (owner, outsourced, workload) = serving_fixture();
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    // Timed ideal-link serving at small session counts (the WAN sweep above is a
    // one-shot measurement: its wall-clock is dominated by deliberate sleeps).
    for &sessions in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("serve_16_queries_ideal_link", sessions),
            &sessions,
            |b, &sessions| {
                let server = QueryServer::new(owner.keys(), outsourced.clone(), sessions);
                let config = ServeConfig::new(sessions, 0xBEA7).with_variant(VariantChoice::Auto);
                b.iter(|| black_box(server.serve(&workload, &config).expect("serve")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
