//! Fig. 14 micro-benchmark: the secure top-k join operator `./sec` as a function of the
//! number of carried attributes.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::{encrypt_for_join, join_token, top_k_join, JoinQuery};
use sectopk_crypto::MasterKeys;
use sectopk_protocols::TwoClouds;
use sectopk_storage::{ObjectId, Relation, Row};

fn join_relation(rows: usize, attributes: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows(
        (0..rows)
            .map(|i| {
                let mut values = vec![rng.gen_range(0..6u64)];
                values.extend((1..attributes).map(|_| rng.gen_range(0..500u64)));
                Row { id: ObjectId(i as u64), values }
            })
            .collect(),
    )
}

fn bench_join(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(14);
    let keys = MasterKeys::generate(128, 4, &mut rng).unwrap();
    let r1 = join_relation(6, 4, 21);
    let r2 = join_relation(9, 5, 22);
    let enc_r1 = encrypt_for_join(&r1, &keys, "join/left", &mut rng).unwrap();
    let enc_r2 = encrypt_for_join(&r2, &keys, "join/right", &mut rng).unwrap();

    let mut group = c.benchmark_group("fig14_topk_join");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    for &carried in &[1usize, 3] {
        let query = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 3 };
        let carry_left: Vec<usize> = (0..carried).collect();
        let carry_right: Vec<usize> = (0..carried).collect();
        let token = join_token(&keys, 4, 5, &query, &carry_left, &carry_right).unwrap();
        let mut clouds = TwoClouds::new(&keys, 14).unwrap();
        group.bench_with_input(
            BenchmarkId::new("carried_attributes", carried * 2),
            &carried,
            |b, _| b.iter(|| black_box(top_k_join(&mut clouds, &enc_r1, &enc_r2, &token).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
