//! §11.3 micro-benchmark: one SecTopK query versus one secure-kNN baseline query on the
//! same (small) relation.  The baseline's cost is O(n·m) per query, so even at this tiny
//! scale the gap is visible and grows linearly with n.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_bench::runners::{measure_query, prepare_dataset};
use sectopk_bench::BenchScale;
use sectopk_core::QueryConfig;
use sectopk_datasets::{DatasetKind, QueryWorkload};
use sectopk_knn::{encrypt_for_knn, sknn_query};

fn bench_knn_comparison(c: &mut Criterion) {
    let scale = BenchScale::smoke();
    let mut rng = StdRng::seed_from_u64(113);

    let mut group = c.benchmark_group("sec11_3_knn_comparison");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    for &rows in &[8usize, 16] {
        let (owner, relation, er) = prepare_dataset(DatasetKind::Synthetic, rows, &scale, 113);
        let query = QueryWorkload::fixed(relation.num_attributes(), 2, 3, 113);
        group.bench_with_input(BenchmarkId::new("sectopk_qry_e", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(measure_query(
                    &owner,
                    &relation,
                    &er,
                    &query,
                    &QueryConfig::dup_elim(),
                    &scale,
                    113,
                ))
            })
        });

        let db = encrypt_for_knn(&relation, owner.keys(), &mut rng).unwrap();
        let upper = vec![2_000u64; relation.num_attributes()];
        group.bench_with_input(BenchmarkId::new("sknn_baseline", rows), &rows, |b, _| {
            let mut clouds = sectopk_protocols::TwoClouds::new(owner.keys(), 113).unwrap();
            b.iter(|| black_box(sknn_query(&mut clouds, &db, &upper, 3).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn_comparison);
criterion_main!(benches);
