//! Fig. 12 micro-benchmark: the three query variants side by side on the same dataset
//! and query (the relative ordering Qry_Ba ≤ Qry_E ≤ Qry_F is the reproduced claim).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sectopk_bench::runners::{measure_query, prepare_dataset};
use sectopk_bench::BenchScale;
use sectopk_core::QueryConfig;
use sectopk_datasets::{DatasetKind, QueryWorkload};

fn bench_variants(c: &mut Criterion) {
    let scale = BenchScale::smoke();
    let (owner, relation, er) = prepare_dataset(DatasetKind::Pamap, scale.query_rows, &scale, 12);
    let query = QueryWorkload::fixed(relation.num_attributes(), 2, 3, 12);

    let mut group = c.benchmark_group("fig12_variant_comparison");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("qry_f", |b| {
        b.iter(|| {
            black_box(measure_query(
                &owner,
                &relation,
                &er,
                &query,
                &QueryConfig::full(),
                &scale,
                12,
            ))
        })
    });
    group.bench_function("qry_e", |b| {
        b.iter(|| {
            black_box(measure_query(
                &owner,
                &relation,
                &er,
                &query,
                &QueryConfig::dup_elim(),
                &scale,
                12,
            ))
        })
    });
    group.bench_function("qry_ba", |b| {
        b.iter(|| {
            black_box(measure_query(
                &owner,
                &relation,
                &er,
                &query,
                &QueryConfig::batched(2),
                &scale,
                12,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
