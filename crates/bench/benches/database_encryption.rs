//! Fig. 8 micro-benchmark: the `Enc(R)` database-encryption procedure on (scaled-down)
//! versions of the four evaluation datasets.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::DataOwner;
use sectopk_datasets::{generate, DatasetKind};

fn bench_encryption(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let owner = DataOwner::new(128, 5, &mut rng).unwrap();

    let mut group = c.benchmark_group("fig8_database_encryption");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for kind in DatasetKind::ALL {
        let relation = generate(&kind.spec().with_rows(24), 8);
        group.bench_with_input(BenchmarkId::new("enc_r", kind.name()), &relation, |b, relation| {
            b.iter(|| black_box(owner.encrypt(relation, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encryption);
criterion_main!(benches);
