//! Fig. 11 micro-benchmark: the batched query `Qry_Ba`, varying k and the batching
//! parameter p.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sectopk_bench::runners::{measure_query, prepare_dataset};
use sectopk_bench::BenchScale;
use sectopk_core::QueryConfig;
use sectopk_datasets::{DatasetKind, QueryWorkload};

fn bench_query_batched(c: &mut Criterion) {
    let scale = BenchScale::smoke();
    let (owner, relation, er) =
        prepare_dataset(DatasetKind::Diabetes, scale.query_rows, &scale, 11);
    let m_attrs = relation.num_attributes();

    let mut group = c.benchmark_group("fig11_qry_ba");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    for &k in &[2usize, 10] {
        let query = QueryWorkload::fixed(m_attrs, 2, k, 11);
        group.bench_with_input(BenchmarkId::new("vary_k", k), &k, |b, _| {
            b.iter(|| {
                black_box(measure_query(
                    &owner,
                    &relation,
                    &er,
                    &query,
                    &QueryConfig::batched(2),
                    &scale,
                    11,
                ))
            })
        });
    }
    for &p in &[1usize, 2, 3] {
        let query = QueryWorkload::fixed(m_attrs, 2, 3, 11);
        group.bench_with_input(BenchmarkId::new("vary_p", p), &p, |b, &p| {
            b.iter(|| {
                black_box(measure_query(
                    &owner,
                    &relation,
                    &er,
                    &query,
                    &QueryConfig::batched(p),
                    &scale,
                    11,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_batched);
criterion_main!(benches);
