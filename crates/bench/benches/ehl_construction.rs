//! Fig. 7 micro-benchmark: constructing EHL (Bloom-style, H = 23) vs EHL+ encodings.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_crypto::paillier::generate_keypair;
use sectopk_crypto::prf::PrfKey;
use sectopk_ehl::{EhlEncoder, DEFAULT_BUCKETS};

fn bench_ehl(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let (pk, _) = generate_keypair(256, &mut rng).unwrap();
    let keys: Vec<PrfKey> = (0..5u8).map(|i| PrfKey([i + 1; 32])).collect();
    let encoder = EhlEncoder::new(&keys);

    let mut group = c.benchmark_group("fig7_ehl_construction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for &batch in &[10usize, 25] {
        group.bench_with_input(BenchmarkId::new("ehl_bloom", batch), &batch, |b, &batch| {
            b.iter(|| {
                for i in 0..batch {
                    black_box(
                        encoder
                            .encode_bloom(&(i as u64).to_be_bytes(), DEFAULT_BUCKETS, &pk, &mut rng)
                            .unwrap(),
                    );
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("ehl_plus", batch), &batch, |b, &batch| {
            b.iter(|| {
                for i in 0..batch {
                    black_box(encoder.encode(&(i as u64).to_be_bytes(), &pk, &mut rng).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ehl);
criterion_main!(benches);
