//! Micro-benchmarks of the cryptographic substrate: Paillier, Damgård–Jurik, SHA-256 /
//! HMAC and the EHL equality test.  These are the unit costs every per-depth figure of
//! the paper decomposes into.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_crypto::damgard_jurik::DjPublicKey;
use sectopk_crypto::hmac::hmac_sha256;
use sectopk_crypto::paillier::generate_keypair;
use sectopk_crypto::prf::PrfKey;
use sectopk_crypto::sha256::sha256;
use sectopk_ehl::EhlEncoder;

fn bench_crypto(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (pk, sk) = generate_keypair(256, &mut rng).unwrap();
    let dj = DjPublicKey::from_paillier(&pk);
    let keys: Vec<PrfKey> = (0..5u8).map(|i| PrfKey([i; 32])).collect();
    let encoder = EhlEncoder::new(&keys);

    let mut group = c.benchmark_group("crypto_primitives");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("sha256_1kb", |b| {
        let data = vec![0xabu8; 1024];
        b.iter(|| sha256(black_box(&data)))
    });
    group.bench_function("hmac_sha256_64b", |b| {
        let data = [0x5au8; 64];
        b.iter(|| hmac_sha256(b"key", black_box(&data)))
    });
    group.bench_function("paillier_encrypt_256", |b| {
        b.iter(|| pk.encrypt_u64(black_box(123_456), &mut rng).unwrap())
    });
    group.bench_function("paillier_decrypt_256", |b| {
        let c = pk.encrypt_u64(987, &mut rng).unwrap();
        b.iter(|| sk.decrypt_u64(black_box(&c)).unwrap())
    });
    group.bench_function("paillier_homomorphic_add", |b| {
        let x = pk.encrypt_u64(1, &mut rng).unwrap();
        let y = pk.encrypt_u64(2, &mut rng).unwrap();
        b.iter(|| pk.add(black_box(&x), black_box(&y)))
    });
    group.bench_function("dj_layered_encrypt", |b| {
        let inner = pk.encrypt_u64(42, &mut rng).unwrap();
        b.iter(|| dj.encrypt_ciphertext(black_box(&inner), &mut rng).unwrap())
    });
    group.bench_function("dj_select_exponentiation", |b| {
        let inner = pk.encrypt_u64(42, &mut rng).unwrap();
        let layered = dj.encrypt_u64(1, &mut rng).unwrap();
        b.iter(|| dj.mul_by_ciphertext(black_box(&layered), black_box(&inner)))
    });
    group.bench_function("ehl_plus_encode", |b| {
        b.iter(|| encoder.encode(black_box(b"object-1234"), &pk, &mut rng).unwrap())
    });
    group.bench_function("ehl_plus_eq_test", |b| {
        let x = encoder.encode(b"a", &pk, &mut rng).unwrap();
        let y = encoder.encode(b"b", &pk, &mut rng).unwrap();
        b.iter(|| x.eq_test(black_box(&y), &pk, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
