//! Micro-benchmarks of the cryptographic substrate: Paillier, Damgård–Jurik, SHA-256 /
//! HMAC and the EHL equality test.  These are the unit costs every per-depth figure of
//! the paper decomposes into.
//!
//! The `modpow`-dominated operations (encrypt / decrypt / rerandomize / scalar-mul and
//! the DJ layered ops) are swept over 256/512/1024-bit moduli; their means are the
//! source of the committed `BENCH_crypto.json` before/after table.
//!
//! `SECTOPK_RECORD_BASELINE=1 cargo bench -p sectopk-bench --bench crypto_primitives`
//! re-measures the nonce-precomputation rows (textbook `r^N` exponentiation vs the
//! amortized fixed-base window tables), asserts the fixed-base path is ≥1.5× faster at
//! every modulus size, and merges the rows into `BENCH_crypto.json` in place.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use num_bigint::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};

use sectopk_crypto::damgard_jurik::DjPublicKey;
use sectopk_crypto::hmac::hmac_sha256;
use sectopk_crypto::paillier::generate_keypair;
use sectopk_crypto::prf::PrfKey;
use sectopk_crypto::sha256::sha256;
use sectopk_ehl::EhlEncoder;

/// One before/after row of `BENCH_crypto.json`.
#[derive(Serialize)]
struct FixedBaseRow {
    bench: String,
    n_bits: usize,
    before_us: f64,
    after_us: f64,
    speedup: f64,
    note: String,
}

/// Median wall-clock microseconds of `f` over the given inputs.
fn median_us_over<T>(inputs: &[T], mut f: impl FnMut(&T)) -> f64 {
    let mut samples: Vec<f64> = inputs
        .iter()
        .map(|x| {
            let start = Instant::now();
            f(x);
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Measure the nonce-precomputation speedup of the fixed-base window tables over the
/// textbook exponentiation, assert it is ≥1.5× at every modulus size, and merge the
/// rows into the committed `BENCH_crypto.json` (replacing any previous recording of
/// the same rows, leaving every other row untouched).
fn record_fixed_base_baseline() {
    const ITERS: usize = 9;
    let mut rows: Vec<FixedBaseRow> = Vec::new();
    println!("\nNonce precomputation, textbook exponentiation vs fixed-base tables:");
    println!(
        "{:>26} {:>6} {:>13} {:>11} {:>9}",
        "bench", "bits", "textbook(us)", "fixed(us)", "speedup"
    );
    for &bits in &[256usize, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let (pk, _sk) = generate_keypair(bits, &mut rng).unwrap();
        let dj = DjPublicKey::from_paillier(&pk);

        let rs: Vec<BigUint> = (0..ITERS)
            .map(|_| sectopk_crypto::bigint::random_invertible(&mut rng, pk.n()))
            .collect();
        let exps: Vec<BigUint> =
            (0..ITERS).map(|_| sectopk_crypto::bigint::random_below(&mut rng, pk.n())).collect();
        let dj_exps: Vec<BigUint> =
            (0..ITERS).map(|_| sectopk_crypto::bigint::random_below(&mut rng, dj.n())).collect();
        // One untimed call per path so any lazily built table is excluded.
        let _ = (pk.nonce_from_r(&rs[0]), pk.nonce_from_exponent(&exps[0]));
        let _ = (dj.nonce_from_r(&rs[0]), dj.nonce_from_exponent(&dj_exps[0]));

        let cases: [(&str, f64, f64, &str); 2] = [
            (
                "paillier_nonce_fixed_base",
                median_us_over(&rs, |r| {
                    black_box(pk.nonce_from_r(r));
                }),
                median_us_over(&exps, |a| {
                    black_box(pk.nonce_from_exponent(a));
                }),
                "nonce r^N mod N^2; before = textbook exponentiation, after = H^a over \
                 the key's fixed-base window table",
            ),
            (
                "dj_nonce_fixed_base",
                median_us_over(&rs, |r| {
                    black_box(dj.nonce_from_r(r));
                }),
                median_us_over(&dj_exps, |a| {
                    black_box(dj.nonce_from_exponent(a));
                }),
                "nonce r^{N^2} mod N^3; before = textbook exponentiation, after = H^a \
                 over the key's fixed-base window table",
            ),
        ];
        for (bench, before_us, after_us, note) in cases {
            let speedup = before_us / after_us;
            println!("{bench:>26} {bits:>6} {before_us:>13.1} {after_us:>11.1} {speedup:>8.2}x");
            assert!(
                speedup >= 1.5,
                "{bench} at {bits} bits: fixed-base must be ≥1.5× the textbook \
                 exponentiation (got {speedup:.2}×)"
            );
            rows.push(FixedBaseRow {
                bench: bench.into(),
                n_bits: bits,
                before_us: round3(before_us),
                after_us: round3(after_us),
                speedup: round3(speedup),
                note: note.into(),
            });
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json");
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "[]".into());
    let parsed: Value = serde_json::from_str(&existing).expect("parse BENCH_crypto.json");
    let Value::Seq(mut entries) = parsed else {
        panic!("BENCH_crypto.json is not a JSON array");
    };
    let recorded: Vec<&str> = rows.iter().map(|r| r.bench.as_str()).collect();
    entries.retain(|entry| {
        let Value::Map(fields) = entry else { return true };
        !fields.iter().any(
            |(k, v)| matches!((k.as_str(), v), ("bench", Value::Str(s)) if recorded.contains(&s.as_str())),
        )
    });
    entries.extend(rows.iter().map(|r| r.to_value()));
    let json = serde_json::to_string_pretty(&Value::Seq(entries)).expect("serialize baseline");
    if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("could not record BENCH_crypto.json: {e}");
    } else {
        println!("fixed-base rows merged into BENCH_crypto.json\n");
    }
}

fn bench_crypto(c: &mut Criterion) {
    if std::env::var("SECTOPK_RECORD_BASELINE").is_ok() {
        record_fixed_base_baseline();
    }

    let mut rng = StdRng::seed_from_u64(1);
    let (pk, sk) = generate_keypair(256, &mut rng).unwrap();
    let dj = DjPublicKey::from_paillier(&pk);
    let keys: Vec<PrfKey> = (0..5u8).map(|i| PrfKey([i; 32])).collect();
    let encoder = EhlEncoder::new(&keys);

    let mut group = c.benchmark_group("crypto_primitives");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("sha256_1kb", |b| {
        let data = vec![0xabu8; 1024];
        b.iter(|| sha256(black_box(&data)))
    });
    group.bench_function("hmac_sha256_64b", |b| {
        let data = [0x5au8; 64];
        b.iter(|| hmac_sha256(b"key", black_box(&data)))
    });
    group.bench_function("paillier_homomorphic_add", |b| {
        let x = pk.encrypt_u64(1, &mut rng).unwrap();
        let y = pk.encrypt_u64(2, &mut rng).unwrap();
        b.iter(|| pk.add(black_box(&x), black_box(&y)))
    });
    group.bench_function("ehl_plus_encode", |b| {
        b.iter(|| encoder.encode(black_box(b"object-1234"), &pk, &mut rng).unwrap())
    });
    group.bench_function("ehl_plus_eq_test", |b| {
        let x = encoder.encode(b"a", &pk, &mut rng).unwrap();
        let y = encoder.encode(b"b", &pk, &mut rng).unwrap();
        b.iter(|| x.eq_test(black_box(&y), &pk, &mut rng))
    });
    group.finish();

    // The modpow-dominated core, swept over modulus sizes.  256-bit N is the paper's
    // EHL+ configuration; 1024-bit N is where the asymptotic wins (Karatsuba over the
    // DJ `N³` modulus, CRT decryption) show up.
    let mut group = c.benchmark_group("modpow_core");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for &bits in &[256usize, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let (pk, sk) = generate_keypair(bits, &mut rng).unwrap();
        let dj = DjPublicKey::from_paillier(&pk);
        let dj_sk = sectopk_crypto::damgard_jurik::DjSecretKey::from_paillier(&sk);

        group.bench_with_input(BenchmarkId::new("paillier_encrypt", bits), &bits, |b, _| {
            b.iter(|| pk.encrypt_u64(black_box(123_456), &mut rng).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("paillier_decrypt", bits), &bits, |b, _| {
            let c = pk.encrypt_u64(987, &mut rng).unwrap();
            b.iter(|| sk.decrypt_u64(black_box(&c)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("paillier_rerandomize", bits), &bits, |b, _| {
            let c = pk.encrypt_u64(55, &mut rng).unwrap();
            b.iter(|| pk.rerandomize(black_box(&c), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("paillier_scalar_mul", bits), &bits, |b, _| {
            let c = pk.encrypt_u64(7, &mut rng).unwrap();
            let k = sectopk_crypto::bigint::random_below(&mut rng, pk.n());
            b.iter(|| pk.mul_plain(black_box(&c), black_box(&k)))
        });
        group.bench_with_input(BenchmarkId::new("dj_layered_encrypt", bits), &bits, |b, _| {
            let inner = pk.encrypt_u64(42, &mut rng).unwrap();
            b.iter(|| dj.encrypt_ciphertext(black_box(&inner), &mut rng).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dj_scalar_mul", bits), &bits, |b, _| {
            let inner = pk.encrypt_u64(42, &mut rng).unwrap();
            let layered = dj.encrypt_u64(1, &mut rng).unwrap();
            b.iter(|| dj.mul_by_ciphertext(black_box(&layered), black_box(&inner)))
        });
        group.bench_with_input(BenchmarkId::new("dj_rerandomize", bits), &bits, |b, _| {
            let layered = dj.encrypt_u64(9, &mut rng).unwrap();
            b.iter(|| dj.rerandomize(black_box(&layered), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("dj_decrypt", bits), &bits, |b, _| {
            let inner = pk.encrypt_u64(21, &mut rng).unwrap();
            let layered = dj.encrypt_ciphertext(&inner, &mut rng).unwrap();
            b.iter(|| dj_sk.decrypt(black_box(&layered)).unwrap())
        });
        // Nonce precomputation itself: the textbook `r^N mod N²` (resp. `r^{N²} mod
        // N³`) exponentiation vs the amortized fixed-base path `H^a` over the key's
        // precomputed window table — the cost a RandomnessPool refill actually pays.
        group.bench_with_input(BenchmarkId::new("paillier_nonce_textbook", bits), &bits, |b, _| {
            b.iter(|| {
                let r = sectopk_crypto::bigint::random_invertible(&mut rng, pk.n());
                pk.nonce_from_r(black_box(&r))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("paillier_nonce_fixed_base", bits),
            &bits,
            |b, _| {
                b.iter(|| {
                    let a = sectopk_crypto::bigint::random_below(&mut rng, pk.n());
                    pk.nonce_from_exponent(black_box(&a))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("dj_nonce_textbook", bits), &bits, |b, _| {
            b.iter(|| {
                let r = sectopk_crypto::bigint::random_invertible(&mut rng, pk.n());
                dj.nonce_from_r(black_box(&r))
            })
        });
        group.bench_with_input(BenchmarkId::new("dj_nonce_fixed_base", bits), &bits, |b, _| {
            b.iter(|| {
                let a = sectopk_crypto::bigint::random_below(&mut rng, dj.n());
                dj.nonce_from_exponent(black_box(&a))
            })
        });
        // The latency-path cost with a pre-filled RandomnessPool: the exponentiation
        // (`r^N mod N²` resp. `r^{N²} mod N³`) happened ahead of time, the online
        // operation is a couple of multiplications.
        group.bench_with_input(BenchmarkId::new("paillier_encrypt_online", bits), &bits, |b, _| {
            let r = sectopk_crypto::bigint::random_invertible(&mut rng, pk.n());
            let nonce = pk.nonce_from_r(&r);
            b.iter(|| pk.encrypt_with_nonce(black_box(&BigUint::from(123_456u64)), &nonce))
        });
        group.bench_with_input(BenchmarkId::new("dj_encrypt_online", bits), &bits, |b, _| {
            let inner = pk.encrypt_u64(42, &mut rng).unwrap();
            let r = sectopk_crypto::bigint::random_invertible(&mut rng, pk.n());
            let nonce = dj.nonce_from_r(&r);
            b.iter(|| dj.encrypt_with_nonce(black_box(inner.as_biguint()), &nonce))
        });
    }
    group.finish();

    // Key generation (dominated by Miller–Rabin modpows plus the trial-division sieve).
    let mut group = c.benchmark_group("keygen");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_secs(3));
    for &bits in &[256usize, 512] {
        group.bench_with_input(BenchmarkId::new("paillier_keygen", bits), &bits, |b, _| {
            let mut rng = StdRng::seed_from_u64(2024);
            b.iter(|| generate_keypair(black_box(bits), &mut rng).unwrap())
        });
    }
    group.finish();

    drop((dj, sk));
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
