//! # sectopk-metrics
//!
//! Lock-cheap observability for the serving stack: monotonic [`Counter`]s, [`Gauge`]s
//! and fixed-bucket log-scale [`Histogram`]s behind one [`Registry`], plus the
//! [`TraceHook`] trait a future tracing backend plugs into.
//!
//! # Design: never on the determinism path
//!
//! The protocol engine guarantees byte-identical results, leakage ledgers and
//! `ChannelMetrics` for a fixed seed, across transports and worker counts.  This crate
//! must never endanger that, so:
//!
//! * A [`Registry`] is either **enabled** (backed by shared atomics) or **disabled**
//!   (a `None`, the default).  Every handle cloned from a disabled registry is a
//!   no-op: no allocation, no atomic traffic, and — critically — **no wall-clock
//!   reads**.  Instrumented code asks [`Histogram::start`] for a timestamp, which
//!   returns `None` when disabled, so `Instant::now()` is only ever called when the
//!   operator opted in.
//! * Metrics are **observe-only**: nothing in the protocol reads them back to make a
//!   decision, so enabling them cannot perturb protocol bytes.  The invariance suite
//!   (`tests/metrics_invariance.rs`) pins this: enabled-vs-disabled runs are
//!   byte-identical in results, ledgers and `ChannelMetrics`.
//! * Deterministic events (requests by kind, sheds, replay hits) land in counters
//!   whose values are exactly reproducible; wall-clock durations land only in
//!   histograms, which tests assert **structurally** (bucket monotonicity, count =
//!   observations), never on timing values.
//!
//! # Concurrency
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of an
//! `Arc<AtomicU64>` (or a fixed atomic bucket array) and record with relaxed atomic
//! adds — no locks on the hot path.  The registry's name→handle maps take a mutex
//! only at handle **creation** and at [`Registry::snapshot`] time, so instrumented
//! code caches its handles once and then records lock-free.
//!
//! # Histograms
//!
//! Power-of-two log-scale buckets: an observation of `v` lands in the bucket of its
//! bit length (`v = 0` → bucket 0, else `ceil(log2(v + 1))`), covering the full `u64`
//! range in [`HISTOGRAM_BUCKETS`] buckets with one atomic add.  Nanosecond latencies
//! from ~1ns to ~584 years resolve to within 2×, which is what an operator needs from
//! a round-latency histogram — exact tails come from the recorded sum/count and the
//! approximate quantiles in [`MetricsSnapshot`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Number of log-scale buckets in every [`Histogram`]: bucket `i` counts observations
/// of bit length `i` (bucket 0 counts exact zeros), so 65 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket an observation lands in: its bit length (0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (`2^index - 1`, saturating at `u64::MAX`).
fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Shared cells of one histogram.
#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The maps behind an enabled registry.  Locked only at handle creation and snapshot
/// time; recording goes straight to the shared atomics.
#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
}

/// A metrics registry: either enabled (shared atomic storage) or disabled (every
/// handle is a no-op and no clock is ever read).  Cloning shares the storage.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A disabled registry: all handles are no-ops, [`Registry::snapshot`] is empty.
    /// This is the default, so un-instrumented callers pay nothing.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// A fresh enabled registry.
    pub fn enabled() -> Self {
        Registry { inner: Some(Arc::new(Inner::default())) }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The monotonic counter named `name` (created on first use).  Cache the handle:
    /// creation takes the registry lock, recording does not.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// The log-scale histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCells::new())),
            )
        }))
    }

    /// A point-in-time copy of every metric, safe to take while recording continues.
    /// Disabled registries snapshot to [`MetricsSnapshot::default`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = self.inner.as_ref() else { return MetricsSnapshot::default() };
        let counters = inner
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cells)| {
                let buckets = cells
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, bucket)| {
                        let count = bucket.load(Ordering::Relaxed);
                        (count > 0).then(|| HistogramBucket { le: bucket_upper_bound(i), count })
                    })
                    .collect();
                (
                    name.clone(),
                    HistogramSnapshot {
                        count: cells.count.load(Ordering::Relaxed),
                        sum: cells.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// A human-readable dump of [`Registry::snapshot`] — what
    /// `sectopk-s2d --metrics-period` prints.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// A monotonic counter handle.  No-op when cloned from a disabled registry.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what uninstrumented code holds by default).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can go up and down (queue depths, pool occupancy).
/// No-op when cloned from a disabled registry.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Set the gauge to `value`.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A log-scale histogram handle.  No-op when cloned from a disabled registry.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether observations are recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX` ≈ 584 years).
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Begin a timing sample: reads the clock **only when enabled**, so disabled
    /// registries stay entirely off the wall-clock (the determinism contract).
    pub fn start(&self) -> Option<Instant> {
        self.0.is_some().then(Instant::now)
    }

    /// Finish a timing sample begun with [`Histogram::start`].
    pub fn stop(&self, started: Option<Instant>) {
        if let Some(started) = started {
            self.observe_duration(started.elapsed());
        }
    }
}

/// One non-empty histogram bucket in a snapshot: everything observed at or below
/// `le` (and above the previous bucket's bound).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (`2^i - 1` nanoseconds for latencies).
    pub le: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Point-in-time state of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on `u64` overflow).
    pub sum: u64,
    /// The non-empty buckets, in ascending `le` order.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0.0–1.0) — a ≤2×
    /// overestimate, which is the honest resolution of a log-scale histogram.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= rank {
                return Some(bucket.le);
            }
        }
        self.buckets.last().map(|b| b.le)
    }
}

/// A serializable point-in-time copy of a whole [`Registry`] — what `ServeReport`
/// carries and what a live `QueryServer` / `sectopk-s2d` can be polled for mid-run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A named histogram's snapshot, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Render as indented human-readable text (one metric per line, durations shown
    /// as approximate milliseconds where the name ends in `_nanos`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name} {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, hist) in &self.histograms {
                let _ = write!(out, "  {name} count={} mean={:.0}", hist.count, hist.mean());
                for q in [0.5, 0.9, 0.99] {
                    if let Some(le) = hist.quantile(q) {
                        let _ = write!(out, " p{:.0}≤{le}", q * 100.0);
                    }
                }
                out.push('\n');
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Span hooks for a pluggable tracing backend: the protocol layer calls
/// [`TraceHook::enter`]/[`TraceHook::exit`] around every protocol round, and the
/// default implementations are no-ops, so tracing costs nothing until a backend
/// overrides them.  Implementations must be cheap and must never block the round.
pub trait TraceHook: Send + Sync {
    /// A span named `span` begins (e.g. `round:Compare`).
    fn enter(&self, span: &str) {
        let _ = span;
    }

    /// The span named `span` ends.
    fn exit(&self, span: &str) {
        let _ = span;
    }
}

/// The default [`TraceHook`]: does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTrace;

impl TraceHook for NoopTrace {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_total_noop() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let counter = registry.counter("c");
        counter.incr();
        counter.add(10);
        assert_eq!(counter.value(), 0);
        let gauge = registry.gauge("g");
        gauge.set(7);
        assert_eq!(gauge.value(), 0);
        let histogram = registry.histogram("h");
        assert!(histogram.start().is_none(), "disabled histograms must not read the clock");
        histogram.observe(123);
        histogram.stop(None);
        assert_eq!(registry.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_and_gauges_record_and_share_by_name() {
        let registry = Registry::enabled();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.incr();
        b.add(2);
        assert_eq!(a.value(), 3, "same-name handles share one cell");
        registry.gauge("depth").set(5);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("requests"), 3);
        assert_eq!(snapshot.gauges.get("depth"), Some(&5));
    }

    #[test]
    fn histogram_buckets_are_log_scale_and_structurally_consistent() {
        let registry = Registry::enabled();
        let histogram = registry.histogram("lat");
        let values = [0u64, 1, 2, 3, 4, 1000, 1_000_000, u64::MAX];
        for v in values {
            histogram.observe(v);
        }
        let snapshot = registry.snapshot();
        let hist = snapshot.histogram("lat").expect("recorded");
        assert_eq!(hist.count, values.len() as u64);
        assert_eq!(hist.count, hist.buckets.iter().map(|b| b.count).sum::<u64>());
        assert!(
            hist.buckets.windows(2).all(|w| w[0].le < w[1].le),
            "bucket bounds must be strictly increasing: {:?}",
            hist.buckets
        );
        assert_eq!(hist.sum, values.iter().fold(0u64, |acc, v| acc.wrapping_add(*v)));
        assert!(hist.quantile(0.5).is_some());
        assert_eq!(hist.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 7, 8, 1 << 20, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn timing_samples_only_touch_the_clock_when_enabled() {
        let histogram = Registry::enabled().histogram("t");
        let sample = histogram.start();
        assert!(sample.is_some());
        histogram.stop(sample);
        assert_eq!(histogram.0.as_ref().unwrap().count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_round_trips_through_serde_and_renders() {
        let registry = Registry::enabled();
        registry.counter("pool.shed").add(4);
        registry.histogram("round_nanos").observe(1500);
        let snapshot = registry.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snapshot);
        let rendered = snapshot.render();
        assert!(rendered.contains("pool.shed 4"), "render missing counter: {rendered}");
        assert!(rendered.contains("round_nanos count=1"), "render missing histogram: {rendered}");
    }

    #[test]
    fn trace_hook_defaults_are_noops() {
        let hook: &dyn TraceHook = &NoopTrace;
        hook.enter("round:Compare");
        hook.exit("round:Compare");
    }
}
