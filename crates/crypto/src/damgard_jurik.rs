//! The Damgård–Jurik generalized Paillier cryptosystem (PKC'01), specialised to the
//! single extra layer (`s = 2`) that SecTopK needs (§3.3 of the paper).
//!
//! With `s = 2` the message space is `Z_{N²}` — exactly the ciphertext space of plain
//! Paillier under the same modulus — which allows a Paillier ciphertext to be treated as
//! a plaintext of the outer layer.  The single homomorphic identity the paper relies on:
//!
//! ```text
//! E2(Enc(m1))^Enc(m2) = E2(Enc(m1) · Enc(m2)) = E2(Enc(m1 + m2))
//! ```
//!
//! is exercised directly by the sub-protocols SecWorst / SecBest / SecUpdate (Algorithms
//! 4, 6 and 9) and verified by the unit tests below.

use num_bigint::{BigUint, MontgomeryContext};
use num_traits::{One, Zero};
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::bigint::{factorial, l_function, mod_inverse, random_invertible, to_signed};
use crate::error::{CryptoError, Result};
use crate::paillier::{Ciphertext, PaillierPublicKey, PaillierSecretKey};

/// The Damgård–Jurik exponent used throughout the paper: one extra layer over Paillier.
pub const DJ_S: u32 = 2;

/// A layered (Damgård–Jurik, `s = 2`) ciphertext: an element of `Z_{N³}^*` encrypting an
/// element of `Z_{N²}` — typically an inner Paillier ciphertext.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LayeredCiphertext(pub(crate) BigUint);

impl LayeredCiphertext {
    /// Raw group element backing this ciphertext.
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Serialized length in bytes (for channel bandwidth accounting).
    pub fn byte_len(&self) -> usize {
        (self.0.bits() as usize).div_ceil(8)
    }

    /// The canonical wire form: the group element as a big-endian byte string.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Parse the canonical big-endian wire form produced by [`Self::to_bytes_be`].
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        LayeredCiphertext(BigUint::from_bytes_be(bytes))
    }
}

// Same wire form as the inner Paillier [`Ciphertext`]: a big-endian byte string, so the
// metered channel measures exactly `byte_len` bytes per shipped ciphertext.
impl Serialize for LayeredCiphertext {
    fn to_value(&self) -> serde::Value {
        serde::Value::Bytes(self.to_bytes_be())
    }
}

impl Deserialize for LayeredCiphertext {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        crate::encoding::bytes_from_value(v, "LayeredCiphertext")
            .map(|b| LayeredCiphertext::from_bytes_be(&b))
    }
}

/// Public (encryption) half of the Damgård–Jurik scheme, derived from a Paillier public
/// key: same modulus `N`, ciphertexts live in `Z_{N^{s+1}}`.
///
/// Like [`PaillierPublicKey`], the precomputed quantities — the big moduli and the
/// [`MontgomeryContext`] for `N³` — live behind one shared [`Arc`], so clones (one per
/// cloud view, per engine, per pool) are pointer bumps and every exponentiation under
/// `N³` reuses the same CIOS parameters.
#[derive(Clone, Debug)]
pub struct DjPublicKey {
    inner: Arc<DjInner>,
}

#[derive(Debug)]
struct DjInner {
    paillier: PaillierPublicKey,
    /// `N²` — the message-space modulus of the outer layer.
    n_s: BigUint,
    /// `N³` — the ciphertext-space modulus of the outer layer.
    n_s_plus_1: BigUint,
    /// Montgomery parameters for `N³` (odd for any product of odd primes).
    ctx_n3: MontgomeryContext,
    /// `2⁻¹ mod N`, used by the binomial expansion of `(1+N)^m mod N³`.
    inv2_mod_n: BigUint,
    /// `H₃ = h^{N²} mod N³`, the fixed base of the precomputed-nonce subgroup
    /// (same `h =` [`crate::paillier::NONCE_BASE_H`] as the inner layer).
    nonce_base: BigUint,
    /// Fixed-base power table of `H₃` covering exponents up to `|N|` bits.
    nonce_table: num_bigint::FixedBaseTable,
}

// Everything in `DjInner` is derived from the Paillier public key, so only that key
// crosses the wire and deserialization rebuilds the caches.
impl Serialize for DjPublicKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("paillier".to_string(), self.inner.paillier.to_value())])
    }
}

impl Deserialize for DjPublicKey {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let paillier = PaillierPublicKey::from_value(
            v.get("paillier").ok_or_else(|| serde::Error::missing_field("paillier"))?,
        )?;
        Ok(DjPublicKey::from_paillier(&paillier))
    }
}

impl DjPublicKey {
    /// Build the outer-layer public key from the shared Paillier public key.
    pub fn from_paillier(pk: &PaillierPublicKey) -> Self {
        let n = pk.n();
        let n_s = n * n;
        let n_s_plus_1 = &n_s * n;
        let ctx_n3 =
            MontgomeryContext::new(&n_s_plus_1).expect("N³ is odd for any product of odd primes");
        // N is odd, so 2⁻¹ mod N = (N+1)/2.
        let inv2_mod_n = (n + BigUint::one()) >> 1u32;
        let h = BigUint::from(crate::paillier::NONCE_BASE_H);
        let nonce_base = ctx_n3.modpow(&h, &n_s);
        let nonce_table = ctx_n3.precompute_fixed_base(&nonce_base, n.bits());
        DjPublicKey {
            inner: Arc::new(DjInner {
                paillier: pk.clone(),
                n_s,
                n_s_plus_1,
                ctx_n3,
                inv2_mod_n,
                nonce_base,
                nonce_table,
            }),
        }
    }

    /// The shared modulus `N`.
    pub fn n(&self) -> &BigUint {
        self.inner.paillier.n()
    }

    /// The outer message-space modulus `N²`.
    pub fn n_s(&self) -> &BigUint {
        &self.inner.n_s
    }

    /// The outer ciphertext-space modulus `N³`.
    pub fn n_s_plus_1(&self) -> &BigUint {
        &self.inner.n_s_plus_1
    }

    /// The inner Paillier public key.
    pub fn paillier(&self) -> &PaillierPublicKey {
        &self.inner.paillier
    }

    /// Encrypt an arbitrary message `m ∈ Z_{N²}` under the outer layer:
    /// `E2(m) = (1+N)^m · r^{N²} mod N³`.
    pub fn encrypt<R: RngCore + CryptoRng>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<LayeredCiphertext> {
        if m >= self.n_s() {
            return Err(CryptoError::PlaintextOutOfRange);
        }
        let r = random_invertible(rng, self.n());
        Ok(self.encrypt_with_randomness(m, &r))
    }

    /// Encrypt a small constant (e.g. the `E2(1)` used on line 6 of Algorithm 4).
    pub fn encrypt_u64<R: RngCore + CryptoRng>(
        &self,
        m: u64,
        rng: &mut R,
    ) -> Result<LayeredCiphertext> {
        self.encrypt(&BigUint::from(m), rng)
    }

    /// Encrypt an inner Paillier ciphertext: the "doubly encrypted" `E2(Enc(m))` object
    /// the sub-protocols exchange.
    pub fn encrypt_ciphertext<R: RngCore + CryptoRng>(
        &self,
        inner: &Ciphertext,
        rng: &mut R,
    ) -> Result<LayeredCiphertext> {
        self.encrypt(inner.as_biguint(), rng)
    }

    /// Deterministic encryption with caller-supplied randomness.
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> LayeredCiphertext {
        self.encrypt_with_nonce(m, &self.nonce_from_r(r))
    }

    /// The encryption nonce `r^{N²} mod N³` for a given `r ∈ Z_N^*` — the expensive
    /// half of a layered encryption, precomputable ahead of time (see
    /// [`crate::pool::RandomnessPool`]).
    pub fn nonce_from_r(&self, r: &BigUint) -> BigUint {
        self.inner.ctx_n3.modpow(r, self.n_s())
    }

    /// `H₃ = h^{N²} mod N³` for `h =` [`crate::paillier::NONCE_BASE_H`] — the fixed
    /// base of the amortized nonce subgroup, and the differential reference for
    /// [`Self::nonce_from_exponent`].
    pub fn nonce_base(&self) -> &BigUint {
        &self.inner.nonce_base
    }

    /// The encryption nonce `H₃^a mod N³` for a pool-drawn random exponent `a < N`,
    /// evaluated over the key's cached fixed-base table (one Montgomery multiplication
    /// per nonzero 4-bit window, no squarings) — the outer-layer twin of
    /// [`crate::paillier::PaillierPublicKey::nonce_from_exponent`].
    pub fn nonce_from_exponent(&self, a: &BigUint) -> BigUint {
        self.inner.ctx_n3.fixed_base_modpow(&self.inner.nonce_table, a)
    }

    /// Encryption given a precomputed nonce `r^{N²} mod N³`.
    ///
    /// `(1+N)^m mod N³` is evaluated by the binomial identity
    /// `1 + mN + (m(m−1)/2 mod N)·N²` — all terms of degree ≥ 3 vanish mod `N³` — so
    /// the only exponentiation left in an encryption is the nonce itself.
    pub fn encrypt_with_nonce(&self, m: &BigUint, r_ns: &BigUint) -> LayeredCiphertext {
        let n3 = self.n_s_plus_1();
        LayeredCiphertext((self.g_pow(m) * r_ns) % n3)
    }

    /// `(1+N)^m mod N³` via the closed-form binomial expansion (no exponentiation).
    fn g_pow(&self, m: &BigUint) -> BigUint {
        let n = self.n();
        let n3 = self.n_s_plus_1();
        if m.is_zero() {
            return BigUint::one();
        }
        // binom = m(m−1)/2 mod N; the division by 2 becomes a multiplication by
        // 2⁻¹ = (N+1)/2, valid because N is odd.
        let m_mod_n = m % n;
        let m_minus_1_mod_n = ((&m_mod_n + n) - BigUint::one()) % n;
        let binom = ((m_mod_n * m_minus_1_mod_n) % n) * &self.inner.inv2_mod_n % n;
        // 1 + mN + binom·N²  <  N³ + N³: one reduction suffices.
        (BigUint::one() + m * n + binom * self.n_s()) % n3
    }

    /// Homomorphic addition in the outer layer: `E2(a) · E2(b) = E2(a + b mod N²)`.
    pub fn add(&self, a: &LayeredCiphertext, b: &LayeredCiphertext) -> LayeredCiphertext {
        LayeredCiphertext((&a.0 * &b.0) % self.n_s_plus_1())
    }

    /// Scalar multiplication in the outer layer: `E2(a)^k = E2(k · a mod N²)`
    /// (windowed Montgomery exponentiation under the cached `N³` context).
    ///
    /// This is the operation that realises the paper's layered identity when `k` is an
    /// inner Paillier ciphertext: `E2(Enc(m1))^{Enc(m2)} = E2(Enc(m1+m2))`.
    pub fn mul_plain(&self, a: &LayeredCiphertext, k: &BigUint) -> LayeredCiphertext {
        LayeredCiphertext(self.inner.ctx_n3.modpow(&a.0, k))
    }

    /// Scalar multiplication by an inner Paillier ciphertext (sugar over [`Self::mul_plain`]).
    pub fn mul_by_ciphertext(&self, a: &LayeredCiphertext, k: &Ciphertext) -> LayeredCiphertext {
        self.mul_plain(a, k.as_biguint())
    }

    /// Fused double scalar multiplication `a^{k_a} · b^{k_b} mod N³` by Strauss–Shamir
    /// joint exponentiation ([`num_bigint::MontgomeryContext::multi_modpow`]): one
    /// shared squaring chain instead of two, ~2× over
    /// `add(mul_by_ciphertext(a, k_a), mul_by_ciphertext(b, k_b))` — the exact shape of
    /// the oblivious-select steps (`E2(x)^{E(t)} · E2(y)^{E(1−t)}`).  Bit-for-bit equal
    /// to the unfused path, which stays as the differential reference.
    pub fn mul_add_ciphertexts(
        &self,
        a: &LayeredCiphertext,
        k_a: &Ciphertext,
        b: &LayeredCiphertext,
        k_b: &Ciphertext,
    ) -> LayeredCiphertext {
        LayeredCiphertext(self.inner.ctx_n3.multi_modpow(
            &a.0,
            k_a.as_biguint(),
            &b.0,
            k_b.as_biguint(),
        ))
    }

    /// Homomorphic negation in the outer layer.
    pub fn negate(&self, a: &LayeredCiphertext) -> LayeredCiphertext {
        let inv = mod_inverse(&a.0, self.n_s_plus_1())
            .expect("layered ciphertext is invertible for honestly generated keys");
        LayeredCiphertext(inv)
    }

    /// Subtraction in the outer layer: `E2(a) / E2(b) = E2(a − b mod N²)`.
    pub fn sub(&self, a: &LayeredCiphertext, b: &LayeredCiphertext) -> LayeredCiphertext {
        self.add(a, &self.negate(b))
    }

    /// Re-randomize a layered ciphertext.
    pub fn rerandomize<R: RngCore + CryptoRng>(
        &self,
        a: &LayeredCiphertext,
        rng: &mut R,
    ) -> LayeredCiphertext {
        let r = random_invertible(rng, self.n());
        self.rerandomize_with_nonce(a, &self.nonce_from_r(&r))
    }

    /// Re-randomization given a precomputed nonce `r^{N²} mod N³`.
    pub fn rerandomize_with_nonce(
        &self,
        a: &LayeredCiphertext,
        r_ns: &BigUint,
    ) -> LayeredCiphertext {
        LayeredCiphertext((&a.0 * r_ns) % self.n_s_plus_1())
    }

    /// Sanity-check a layered ciphertext received from the network.
    pub fn validate(&self, a: &LayeredCiphertext) -> Result<()> {
        if a.0.is_zero() || a.0 >= *self.n_s_plus_1() {
            Err(CryptoError::CiphertextOutOfRange)
        } else {
            Ok(())
        }
    }
}

/// Secret (decryption) half of the Damgård–Jurik scheme.  Wraps the Paillier secret key —
/// the crypto cloud S2 holds both.
///
/// Like the Paillier secret key, decryption runs in CRT form: the dominating
/// exponentiation `c^λ mod N³` becomes two half-width exponentiations modulo `p³` and
/// `q³`, recombined with Garner's formula before the exponent-extraction recursion.
/// The CRT parameters are derived from the Paillier key's factors and live behind an
/// [`Arc`] (cheap clones); serialization ships only the Paillier key and rebuilds them.
#[derive(Clone)]
pub struct DjSecretKey {
    paillier: PaillierSecretKey,
    public: DjPublicKey,
    crt: Arc<DjCrt>,
}

impl std::fmt::Debug for DjSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; the public half identifies the key for debugging.
        f.debug_struct("DjSecretKey").field("public", &self.public).finish_non_exhaustive()
    }
}

/// CRT parameters for the outer-layer modulus `N³ = p³·q³`.
///
/// Each branch decrypts with the *half-size* exponent `p−1` (resp. `q−1`) instead of
/// `λ`: `c^{p−1} mod p³ = (1+N)^{y} mod p³` with `y = m(p−1) mod p²` (the nonce's
/// contribution vanishes because `N²(p−1) ≡ 0 mod p²(p−1)`, the group order), and `y`
/// is extracted from the binomial closed form
/// `1 + y·q·p + (y(y−1)/2 mod p)·q²·p² (mod p³)` with two inversions precomputed here.
/// No `Debug`: the fields are the factors themselves and must never be formatted.
struct DjCrt {
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    p_cubed: BigUint,
    q_cubed: BigUint,
    ctx_p3: MontgomeryContext,
    ctx_q3: MontgomeryContext,
    /// Branch exponents `p − 1` and `q − 1`.
    p_minus_1: BigUint,
    q_minus_1: BigUint,
    /// `q⁻¹ mod p²` and `p⁻¹ mod q²` (strip the co-factor from the linear term).
    q_inv_mod_p2: BigUint,
    p_inv_mod_q2: BigUint,
    /// `q mod p` and `p mod q` (the co-factor re-enters the quadratic correction).
    q_mod_p: BigUint,
    p_mod_q: BigUint,
    /// `2⁻¹ mod p` / `2⁻¹ mod q` for the binomial correction term.
    inv2_mod_p: BigUint,
    inv2_mod_q: BigUint,
    /// `(p−1)⁻¹ mod p²` and `(q−1)⁻¹ mod q²` (divide the branch exponent back out).
    pm1_inv_mod_p2: BigUint,
    qm1_inv_mod_q2: BigUint,
    /// Garner coefficient `(p²)⁻¹ mod q²` recombining the branch messages in `Z_{N²}`.
    p2_inv_mod_q2: BigUint,
}

impl Serialize for DjSecretKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("paillier".to_string(), self.paillier.to_value())])
    }
}

impl Deserialize for DjSecretKey {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let paillier = PaillierSecretKey::from_value(
            v.get("paillier").ok_or_else(|| serde::Error::missing_field("paillier"))?,
        )?;
        Ok(DjSecretKey::from_paillier(&paillier))
    }
}

impl DjSecretKey {
    /// Derive the outer-layer secret key from the Paillier secret key.
    pub fn from_paillier(sk: &PaillierSecretKey) -> Self {
        let public = DjPublicKey::from_paillier(sk.public_key());
        let (p, q) = sk.factors();
        let p_squared = p * p;
        let q_squared = q * q;
        let p_cubed = &p_squared * p;
        let q_cubed = &q_squared * q;
        let ctx_p3 = MontgomeryContext::new(&p_cubed).expect("p³ is odd for an odd prime p");
        let ctx_q3 = MontgomeryContext::new(&q_cubed).expect("q³ is odd for an odd prime q");
        let invertible = "factors are odd, distinct and coprime to their co-factors";
        let crt = DjCrt {
            p_minus_1: p - BigUint::one(),
            q_minus_1: q - BigUint::one(),
            q_inv_mod_p2: mod_inverse(q, &p_squared).expect(invertible),
            p_inv_mod_q2: mod_inverse(p, &q_squared).expect(invertible),
            q_mod_p: q % p,
            p_mod_q: p % q,
            inv2_mod_p: (p + BigUint::one()) >> 1u32,
            inv2_mod_q: (q + BigUint::one()) >> 1u32,
            pm1_inv_mod_p2: mod_inverse(&(p - BigUint::one()), &p_squared).expect(invertible),
            qm1_inv_mod_q2: mod_inverse(&(q - BigUint::one()), &q_squared).expect(invertible),
            p2_inv_mod_q2: mod_inverse(&p_squared, &q_squared).expect(invertible),
            p: p.clone(),
            q: q.clone(),
            p_squared,
            q_squared,
            p_cubed,
            q_cubed,
            ctx_p3,
            ctx_q3,
        };
        DjSecretKey { paillier: sk.clone(), public, crt: Arc::new(crt) }
    }

    /// The matching public key.
    pub fn public_key(&self) -> &DjPublicKey {
        &self.public
    }

    /// The inner Paillier secret key.
    pub fn paillier(&self) -> &PaillierSecretKey {
        &self.paillier
    }

    /// Decrypt a layered ciphertext to its message in `Z_{N²}`, in CRT form.
    ///
    /// Each prime-power branch raises to the *half-size* exponent `p−1` (not `λ`):
    /// `c^{p−1} mod p³ = (1+N)^{m(p−1) mod p²} mod p³` because the nonce's order
    /// divides `N²(p−1)`.  The exponent `y = m(p−1) mod p²` falls out of the binomial
    /// closed form in two steps (no recursion), `m mod p²` follows by multiplying with
    /// `(p−1)⁻¹ mod p²`, and Garner recombines the halves in `Z_{N²}`.  Bit-for-bit
    /// equal to [`Self::decrypt_via_lambda`].
    pub fn decrypt(&self, c: &LayeredCiphertext) -> Result<BigUint> {
        self.public.validate(c)?;
        let crt = &*self.crt;
        let m_p = Self::decrypt_branch(
            &c.0,
            &crt.p,
            &crt.p_squared,
            &crt.p_cubed,
            &crt.ctx_p3,
            &crt.p_minus_1,
            &crt.q_inv_mod_p2,
            &crt.q_mod_p,
            &crt.inv2_mod_p,
            &crt.pm1_inv_mod_p2,
        )?;
        let m_q = Self::decrypt_branch(
            &c.0,
            &crt.q,
            &crt.q_squared,
            &crt.q_cubed,
            &crt.ctx_q3,
            &crt.q_minus_1,
            &crt.p_inv_mod_q2,
            &crt.p_mod_q,
            &crt.inv2_mod_q,
            &crt.qm1_inv_mod_q2,
        )?;
        // Garner: m = m_p + p² · ((m_q − m_p) · (p²)⁻¹ mod q²)  ∈ Z_{N²}
        let diff = ((&crt.q_squared + &m_q) - (&m_p % &crt.q_squared)) % &crt.q_squared;
        Ok(m_p + &crt.p_squared * ((diff * &crt.p2_inv_mod_q2) % &crt.q_squared))
    }

    /// One CRT branch of [`Self::decrypt`]: recover `m mod p²` from `c mod p³`.
    #[allow(clippy::too_many_arguments)]
    fn decrypt_branch(
        c: &BigUint,
        p: &BigUint,
        p_squared: &BigUint,
        p_cubed: &BigUint,
        ctx_p3: &MontgomeryContext,
        p_minus_1: &BigUint,
        cofactor_inv: &BigUint, // q⁻¹ mod p²
        cofactor: &BigUint,     // q mod p
        inv2: &BigUint,         // 2⁻¹ mod p
        pm1_inv: &BigUint,      // (p−1)⁻¹ mod p²
    ) -> Result<BigUint> {
        // a = c^{p−1} mod p³ = 1 + y·q·p + (y(y−1)/2 mod p)·q²·p²  with y = m(p−1) mod p².
        let a = ctx_p3.modpow(&(c % p_cubed), p_minus_1);
        if !(&a % p).is_one() {
            return Err(CryptoError::DecryptionFailed);
        }
        // x = L_p(a) mod p² = y·q + (y(y−1)/2 mod p)·q²·p ;  w = x·q⁻¹ = y + (…)·q·p.
        let x = l_function(&a, p) % p_squared;
        let w = (&x * cofactor_inv) % p_squared;
        // y mod p survives the correction term (it is divisible by p).
        let y1 = &w % p;
        let y1_minus_1 = (&y1 + p - BigUint::one()) % p;
        let half_binom = ((&y1 * y1_minus_1) % p) * inv2 % p;
        // Undo the correction: w − y = (y(y−1)/2)·q·p, and as a multiple of p only its
        // factor modulo p matters: correction = ((y(y−1)/2)·q mod p) · p < p².
        let correction = ((half_binom * cofactor) % p) * p;
        let y = ((&w + p_squared) - correction) % p_squared;
        // m mod p² = y · (p−1)⁻¹ mod p².
        Ok((y * pm1_inv) % p_squared)
    }

    /// The textbook decryption with a single full-width `c^λ mod N³` — kept as the
    /// reference implementation the CRT fast path is differentially tested against.
    pub fn decrypt_via_lambda(&self, c: &LayeredCiphertext) -> Result<BigUint> {
        self.public.validate(c)?;
        let n = self.public.n();
        let n_s = self.public.n_s();
        let n_s_plus_1 = self.public.n_s_plus_1();
        let lambda = self.lambda();

        let a = c.0.modpow(lambda, n_s_plus_1);
        let i = extract_exponent(&a, n, DJ_S)?;
        let lambda_inv = mod_inverse(lambda, n_s)?;
        Ok((i * lambda_inv) % n_s)
    }

    /// Decrypt a layered ciphertext whose message is an inner Paillier ciphertext,
    /// returning that inner ciphertext (the operation at the heart of RecoverEnc).
    pub fn decrypt_to_ciphertext(&self, c: &LayeredCiphertext) -> Result<Ciphertext> {
        let raw = self.decrypt(c)?;
        if raw.is_zero() {
            // An inner plaintext of zero is not a valid Paillier ciphertext; the
            // protocols never produce it for honest executions.
            return Err(CryptoError::DecryptionFailed);
        }
        Ok(Ciphertext::from_biguint(raw))
    }

    /// Fully decrypt a doubly encrypted value: outer DJ layer, then inner Paillier layer.
    pub fn decrypt_both_layers(&self, c: &LayeredCiphertext) -> Result<BigUint> {
        let inner = self.decrypt_to_ciphertext(c)?;
        self.paillier.decrypt(&inner)
    }

    /// Fully decrypt into the signed representation.
    pub fn decrypt_both_layers_signed(&self, c: &LayeredCiphertext) -> Result<num_bigint::BigInt> {
        Ok(to_signed(&self.decrypt_both_layers(c)?, self.public.n()))
    }

    fn lambda(&self) -> &BigUint {
        // λ is private to the Paillier key; re-expose it through a crate-internal
        // accessor to avoid duplicating key material.
        self.paillier.lambda_for_dj()
    }
}

/// Extract `i` from `a = (1+N)^i mod N^{s+1}` where `i < N^s`, using the iterative
/// algorithm from the Damgård–Jurik paper (Theorem 1).
fn extract_exponent(a: &BigUint, n: &BigUint, s: u32) -> Result<BigUint> {
    let mut i = BigUint::zero();
    for j in 1..=s {
        let n_j = n.pow(j);
        let n_j_plus_1 = n.pow(j + 1);
        // t1 = L(a mod N^{j+1})
        let a_mod = a % &n_j_plus_1;
        if !(&a_mod % n).is_one() {
            return Err(CryptoError::DecryptionFailed);
        }
        let mut t1 = l_function(&a_mod, n) % &n_j;
        let mut t2 = i.clone();
        let mut i_k = i.clone();
        for k in 2..=j {
            // i_k counts down: i, i-1, i-2, ...
            if i_k.is_zero() {
                i_k = &n_j - BigUint::one();
            } else {
                i_k -= BigUint::one();
            }
            t2 = (&t2 * &i_k) % &n_j;
            let k_fact_inv = mod_inverse(&factorial(k as u64), &n_j)?;
            let term = (&t2 * n.pow(k - 1) % &n_j) * k_fact_inv % &n_j;
            t1 = ((&t1 + &n_j) - term) % &n_j;
        }
        i = t1;
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::{generate_keypair, MIN_MODULUS_BITS};
    use num_bigint::BigInt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DjPublicKey, DjSecretKey, PaillierPublicKey, PaillierSecretKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let (pk, sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let dj_pk = DjPublicKey::from_paillier(&pk);
        let dj_sk = DjSecretKey::from_paillier(&sk);
        (dj_pk, dj_sk, pk, sk, rng)
    }

    #[test]
    fn round_trip_small_values() {
        let (dj_pk, dj_sk, _pk, _sk, mut rng) = setup();
        for m in [0u64, 1, 2, 255, 1_000_000, u64::MAX] {
            let c = dj_pk.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(dj_sk.decrypt(&c).unwrap(), BigUint::from(m), "m = {m}");
        }
    }

    #[test]
    fn round_trip_values_larger_than_n() {
        let (dj_pk, dj_sk, pk, _sk, mut rng) = setup();
        // Messages in [N, N²) exercise the second extraction round.
        let m = pk.n() + BigUint::from(12345u64);
        let c = dj_pk.encrypt(&m, &mut rng).unwrap();
        assert_eq!(dj_sk.decrypt(&c).unwrap(), m);

        let m2 = dj_pk.n_s() - BigUint::one();
        let c2 = dj_pk.encrypt(&m2, &mut rng).unwrap();
        assert_eq!(dj_sk.decrypt(&c2).unwrap(), m2);
    }

    #[test]
    fn rejects_plaintext_outside_message_space() {
        let (dj_pk, _dj_sk, _pk, _sk, mut rng) = setup();
        let too_big = dj_pk.n_s().clone();
        assert!(matches!(dj_pk.encrypt(&too_big, &mut rng), Err(CryptoError::PlaintextOutOfRange)));
    }

    #[test]
    fn outer_layer_homomorphic_addition() {
        let (dj_pk, dj_sk, _pk, _sk, mut rng) = setup();
        let a = dj_pk.encrypt_u64(1_000, &mut rng).unwrap();
        let b = dj_pk.encrypt_u64(2_345, &mut rng).unwrap();
        let sum = dj_pk.add(&a, &b);
        assert_eq!(dj_sk.decrypt(&sum).unwrap(), BigUint::from(3_345u64));
    }

    #[test]
    fn outer_layer_scalar_multiplication() {
        let (dj_pk, dj_sk, _pk, _sk, mut rng) = setup();
        let a = dj_pk.encrypt_u64(21, &mut rng).unwrap();
        let doubled = dj_pk.mul_plain(&a, &BigUint::from(2u32));
        assert_eq!(dj_sk.decrypt(&doubled).unwrap(), BigUint::from(42u64));
    }

    #[test]
    fn layered_encryption_round_trip() {
        let (dj_pk, dj_sk, pk, sk, mut rng) = setup();
        let inner = pk.encrypt_u64(777, &mut rng).unwrap();
        let layered = dj_pk.encrypt_ciphertext(&inner, &mut rng).unwrap();
        let recovered = dj_sk.decrypt_to_ciphertext(&layered).unwrap();
        assert_eq!(sk.decrypt_u64(&recovered).unwrap(), 777);
        assert_eq!(dj_sk.decrypt_both_layers(&layered).unwrap(), BigUint::from(777u64));
    }

    #[test]
    fn paper_identity_e2_enc_m1_pow_enc_m2() {
        // E2(Enc(m1))^{Enc(m2)}  ~  E2(Enc(m1 + m2))   — the only homomorphic property the
        // construction relies on (§3.3).
        let (dj_pk, dj_sk, pk, _sk, mut rng) = setup();
        let m1 = 1_234u64;
        let m2 = 8_766u64;
        let enc_m1 = pk.encrypt_u64(m1, &mut rng).unwrap();
        let enc_m2 = pk.encrypt_u64(m2, &mut rng).unwrap();

        let layered = dj_pk.encrypt_ciphertext(&enc_m1, &mut rng).unwrap();
        let combined = dj_pk.mul_by_ciphertext(&layered, &enc_m2);

        assert_eq!(dj_sk.decrypt_both_layers(&combined).unwrap(), BigUint::from(m1 + m2));
    }

    #[test]
    fn select_between_ciphertexts_with_encrypted_bit() {
        // The SecWorst/SecBest trick (Algorithm 4 line 6):
        //   E2(t)^{Enc(x)} · (E2(1) / E2(t))^{Enc(0)}  =  E2( t·Enc(x) + (1−t)·Enc(0) )
        // decrypting to Enc(x) when t = 1 and Enc(0) when t = 0.
        let (dj_pk, dj_sk, pk, _sk, mut rng) = setup();
        let enc_x = pk.encrypt_u64(555, &mut rng).unwrap();
        let enc_zero = pk.encrypt_u64(0, &mut rng).unwrap();

        for t in [0u64, 1] {
            let e2_t = dj_pk.encrypt_u64(t, &mut rng).unwrap();
            let e2_one = dj_pk.encrypt_u64(1, &mut rng).unwrap();
            let one_minus_t = dj_pk.sub(&e2_one, &e2_t);

            let left = dj_pk.mul_by_ciphertext(&e2_t, &enc_x);
            let right = dj_pk.mul_by_ciphertext(&one_minus_t, &enc_zero);
            let selected = dj_pk.add(&left, &right);

            let value = dj_sk.decrypt_both_layers(&selected).unwrap();
            let expected = if t == 1 { 555u64 } else { 0 };
            assert_eq!(value, BigUint::from(expected), "t = {t}");
        }
    }

    #[test]
    fn fixed_base_nonce_matches_naive_exponentiation() {
        let (dj_pk, dj_sk, pk, _sk, mut rng) = setup();
        let h = BigUint::from(crate::paillier::NONCE_BASE_H);
        assert_eq!(dj_pk.nonce_base(), &h.modpow(dj_pk.n_s(), dj_pk.n_s_plus_1()));
        for a in [
            BigUint::zero(),
            BigUint::one(),
            pk.n() - BigUint::one(),
            crate::bigint::random_below(&mut rng, pk.n()),
        ] {
            assert_eq!(
                dj_pk.nonce_from_exponent(&a),
                dj_pk.nonce_base().modpow_naive(&a, dj_pk.n_s_plus_1()),
            );
        }
        let a = crate::bigint::random_below(&mut rng, pk.n());
        let c = dj_pk.encrypt_with_nonce(&BigUint::from(31337u64), &dj_pk.nonce_from_exponent(&a));
        assert_eq!(dj_sk.decrypt(&c).unwrap(), BigUint::from(31337u64));
    }

    #[test]
    fn fused_mul_add_matches_unfused_path() {
        // The oblivious-select shape: E2(t)^{Enc(x)} · E2(1−t)^{Enc(y)}.  The fused
        // Strauss–Shamir path must be bit-for-bit equal to the two-modpow reference.
        let (dj_pk, _dj_sk, pk, _sk, mut rng) = setup();
        let enc_x = pk.encrypt_u64(555, &mut rng).unwrap();
        let enc_y = pk.encrypt_u64(77, &mut rng).unwrap();
        for t in [0u64, 1] {
            let e2_t = dj_pk.encrypt_u64(t, &mut rng).unwrap();
            let e2_one = dj_pk.encrypt_u64(1, &mut rng).unwrap();
            let one_minus_t = dj_pk.sub(&e2_one, &e2_t);
            let unfused = dj_pk.add(
                &dj_pk.mul_by_ciphertext(&e2_t, &enc_x),
                &dj_pk.mul_by_ciphertext(&one_minus_t, &enc_y),
            );
            let fused = dj_pk.mul_add_ciphertexts(&e2_t, &enc_x, &one_minus_t, &enc_y);
            assert_eq!(fused, unfused, "t = {t}");
        }
    }

    #[test]
    fn rerandomize_preserves_message() {
        let (dj_pk, dj_sk, _pk, _sk, mut rng) = setup();
        let a = dj_pk.encrypt_u64(31337, &mut rng).unwrap();
        let b = dj_pk.rerandomize(&a, &mut rng);
        assert_ne!(a, b);
        assert_eq!(dj_sk.decrypt(&b).unwrap(), BigUint::from(31337u64));
    }

    #[test]
    fn signed_full_decryption() {
        let (dj_pk, dj_sk, pk, _sk, mut rng) = setup();
        let inner = pk.encrypt_i64(-42, &mut rng).unwrap();
        let layered = dj_pk.encrypt_ciphertext(&inner, &mut rng).unwrap();
        assert_eq!(dj_sk.decrypt_both_layers_signed(&layered).unwrap(), BigInt::from(-42));
    }

    #[test]
    fn validate_rejects_garbage() {
        let (dj_pk, _dj_sk, _pk, _sk, _rng) = setup();
        assert!(dj_pk.validate(&LayeredCiphertext(BigUint::zero())).is_err());
        assert!(dj_pk.validate(&LayeredCiphertext(dj_pk.n_s_plus_1().clone())).is_err());
    }
}
