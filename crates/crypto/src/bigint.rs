//! Multi-precision helpers shared by the Paillier and Damgård–Jurik implementations.
//!
//! `num-bigint` provides the raw arbitrary-precision arithmetic (see DESIGN.md §3 for the
//! dependency justification); this module adds the number-theoretic operations the
//! cryptosystems need: modular inverse, random sampling in `Z_N` and `Z_N^*`, the
//! symmetric ("signed") plaintext representation used for score comparisons, and L-function
//! style exact divisions.

use num_bigint::{BigInt, BigUint, RandBigInt, Sign};
use num_integer::Integer;
use num_traits::{One, Signed, Zero};
use rand::{CryptoRng, RngCore};

use crate::error::{CryptoError, Result};

/// Compute the modular inverse of `a` modulo `m`, if it exists.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Result<BigUint> {
    if m.is_zero() {
        return Err(CryptoError::NotInvertible);
    }
    let a = BigInt::from_biguint(Sign::Plus, a.clone() % m);
    let m_int = BigInt::from_biguint(Sign::Plus, m.clone());
    let e = a.extended_gcd(&m_int);
    if !e.gcd.is_one() {
        return Err(CryptoError::NotInvertible);
    }
    // extended_gcd guarantees a*x + m*y = gcd; normalise x into [0, m).
    let mut x = e.x % &m_int;
    if x.is_negative() {
        x += &m_int;
    }
    Ok(x.to_biguint().expect("normalised to non-negative"))
}

/// Sample a uniformly random element of `Z_m` (i.e. `[0, m)`).
pub fn random_below<R: RngCore + CryptoRng>(rng: &mut R, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus must be positive");
    rng.gen_biguint_below(m)
}

/// Sample a uniformly random element of `Z_m^*` (invertible residues).
///
/// For an RSA-style modulus the failure probability per draw is negligible, but the loop
/// makes the function correct for any modulus > 1.
pub fn random_invertible<R: RngCore + CryptoRng>(rng: &mut R, m: &BigUint) -> BigUint {
    assert!(m > &BigUint::one(), "modulus must exceed 1");
    loop {
        let candidate = rng.gen_biguint_below(m);
        if candidate.is_zero() {
            continue;
        }
        if candidate.gcd(m).is_one() {
            return candidate;
        }
    }
}

/// Sample a random integer with exactly `bits` bits (most significant bit forced to 1).
pub fn random_exact_bits<R: RngCore + CryptoRng>(rng: &mut R, bits: u64) -> BigUint {
    assert!(bits >= 2, "need at least 2 bits");
    let mut x = rng.gen_biguint(bits);
    x.set_bit(bits - 1, true);
    x
}

/// Interpret `x ∈ Z_n` in the symmetric (signed) representation: values greater than
/// `n/2` are mapped to the negative number `x - n`.
///
/// The paper's SecDedup sub-protocol replaces a duplicate's worst score with
/// `Z = N − 1 ≡ −1 (mod N)` so that it sorts below every genuine score (§8.2.3, Fig. 3);
/// all plaintext comparisons therefore happen in this representation.
pub fn to_signed(x: &BigUint, n: &BigUint) -> BigInt {
    let half = n >> 1u32;
    if x > &half {
        BigInt::from_biguint(Sign::Plus, x.clone()) - BigInt::from_biguint(Sign::Plus, n.clone())
    } else {
        BigInt::from_biguint(Sign::Plus, x.clone())
    }
}

/// Map a signed integer back into `Z_n`.
pub fn from_signed(x: &BigInt, n: &BigUint) -> BigUint {
    let n_int = BigInt::from_biguint(Sign::Plus, n.clone());
    let mut r = x % &n_int;
    if r.is_negative() {
        r += &n_int;
    }
    r.to_biguint().expect("normalised to non-negative")
}

/// Exact division `(u - 1) / n`, the `L` function of the Paillier / Damgård–Jurik
/// cryptosystems.  Panics if `u ≢ 1 (mod n)` — callers guarantee this by construction.
pub fn l_function(u: &BigUint, n: &BigUint) -> BigUint {
    debug_assert!(((u - BigUint::one()) % n).is_zero(), "L-function input must be ≡ 1 mod n");
    (u - BigUint::one()) / n
}

/// Convert an arbitrary byte string (e.g. an HMAC tag) to an element of `Z_m` by
/// interpreting it as a big-endian integer and reducing.
pub fn bytes_to_element(bytes: &[u8], m: &BigUint) -> BigUint {
    BigUint::from_bytes_be(bytes) % m
}

/// A small deterministic factorial, used by the Damgård–Jurik decryption recursion
/// (the `k!` terms are tiny because `s` is tiny).
pub fn factorial(k: u64) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=k {
        acc *= BigUint::from(i);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = BigUint::from(10007u32); // prime
        for a in [1u32, 2, 3, 17, 5000, 10006] {
            let a = BigUint::from(a);
            let inv = mod_inverse(&a, &m).unwrap();
            assert_eq!((a * inv) % &m, BigUint::one());
        }
    }

    #[test]
    fn mod_inverse_rejects_non_invertible() {
        let m = BigUint::from(12u32);
        assert_eq!(mod_inverse(&BigUint::from(4u32), &m), Err(CryptoError::NotInvertible));
        assert_eq!(mod_inverse(&BigUint::from(6u32), &m), Err(CryptoError::NotInvertible));
        assert!(mod_inverse(&BigUint::from(5u32), &m).is_ok());
    }

    #[test]
    fn mod_inverse_zero_modulus() {
        assert_eq!(
            mod_inverse(&BigUint::from(3u32), &BigUint::zero()),
            Err(CryptoError::NotInvertible)
        );
    }

    #[test]
    fn random_below_is_in_range() {
        let mut r = rng();
        let m = BigUint::from(1_000_000u64);
        for _ in 0..200 {
            assert!(random_below(&mut r, &m) < m);
        }
    }

    #[test]
    fn random_invertible_is_invertible() {
        let mut r = rng();
        let m = BigUint::from(3u32 * 5 * 7 * 11);
        for _ in 0..100 {
            let x = random_invertible(&mut r, &m);
            assert!(x.gcd(&m).is_one());
            assert!(!x.is_zero());
        }
    }

    #[test]
    fn random_exact_bits_has_correct_length() {
        let mut r = rng();
        for bits in [8u64, 16, 64, 128, 256] {
            for _ in 0..10 {
                let x = random_exact_bits(&mut r, bits);
                assert_eq!(x.bits(), bits);
            }
        }
    }

    #[test]
    fn signed_round_trip() {
        let n = BigUint::from(1000u32);
        for v in [0i64, 1, 2, 499, 500] {
            let unsigned = BigUint::from(v as u64);
            assert_eq!(to_signed(&unsigned, &n), BigInt::from(v));
        }
        // 501..999 map to negatives.
        assert_eq!(to_signed(&BigUint::from(999u32), &n), BigInt::from(-1));
        assert_eq!(to_signed(&BigUint::from(501u32), &n), BigInt::from(-499));
        // Round trip.
        for v in [-499i64, -1, 0, 1, 500] {
            let b = BigInt::from(v);
            assert_eq!(to_signed(&from_signed(&b, &n), &n), b);
        }
    }

    #[test]
    fn l_function_divides_exactly() {
        let n = BigUint::from(77u32);
        let u = BigUint::one() + BigUint::from(5u32) * &n;
        assert_eq!(l_function(&u, &n), BigUint::from(5u32));
    }

    #[test]
    fn bytes_to_element_reduces() {
        let m = BigUint::from(97u32);
        let e = bytes_to_element(&[0xff; 32], &m);
        assert!(e < m);
        // Deterministic for the same bytes.
        assert_eq!(e, bytes_to_element(&[0xff; 32], &m));
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), BigUint::one());
        assert_eq!(factorial(1), BigUint::one());
        assert_eq!(factorial(2), BigUint::from(2u32));
        assert_eq!(factorial(5), BigUint::from(120u32));
        assert_eq!(factorial(10), BigUint::from(3_628_800u64));
    }
}
