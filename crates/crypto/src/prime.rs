//! Probabilistic prime generation (trial division + Miller–Rabin) used for Paillier /
//! Damgård–Jurik key generation.
//!
//! The paper's experiments use "128-bit security for the Paillier and DJ encryption"
//! (§11); key sizes in this reproduction are a constructor parameter, so the same code
//! path generates the small keys used in fast tests and the larger keys used in benches.

use num_bigint::{BigUint, RandBigInt};
use num_traits::{One, Zero};
use rand::{CryptoRng, RngCore};

use crate::bigint::random_exact_bits;
use crate::error::{CryptoError, Result};

/// Small primes used for cheap trial division before running Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Number of Miller–Rabin rounds.  40 rounds gives an error probability below 2^-80 for
/// random candidates, which is the conventional choice for RSA-style key generation.
const MILLER_RABIN_ROUNDS: usize = 40;

/// Maximum number of candidates examined before giving up (far above the expected number,
/// which is O(bits) by the prime number theorem).
const MAX_CANDIDATES: usize = 100_000;

/// Returns `true` if `n` is (probably) prime.
///
/// Deterministic for `n < 2^32` (full trial division against the small prime table plus
/// Miller–Rabin with random bases), probabilistic with error < 2^-80 above that.
pub fn is_probable_prime<R: RngCore + CryptoRng>(n: &BigUint, rng: &mut R) -> bool {
    if n < &BigUint::from(2u32) {
        return false;
    }
    for &p in SMALL_PRIMES.iter() {
        let p_big = BigUint::from(p);
        if n == &p_big {
            return true;
        }
        if (n % &p_big).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin primality test with `rounds` random bases.
fn miller_rabin<R: RngCore + CryptoRng>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from(2u32);
    let n_minus_one = n - &one;

    // Write n - 1 = 2^s * d with d odd.
    let s = n_minus_one.trailing_zeros().unwrap_or(0);
    let d = &n_minus_one >> s;

    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = loop {
            let a = rng.gen_biguint_below(n);
            if a >= two && a <= n - &two {
                break a;
            }
        };
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_one {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.modpow(&two, n);
            if x == n_minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
pub fn generate_prime<R: RngCore + CryptoRng>(bits: u64, rng: &mut R) -> Result<BigUint> {
    if bits < 8 {
        return Err(CryptoError::KeySizeTooSmall { requested: bits as usize, minimum: 8 });
    }
    for _ in 0..MAX_CANDIDATES {
        let mut candidate = random_exact_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

/// Generate two distinct random primes of `bits` bits each, suitable as Paillier factors.
///
/// The primes are rejected if they are equal or if `gcd(pq, (p-1)(q-1)) != 1` (the
/// standard Paillier requirement, automatically satisfied for same-length primes but
/// checked for robustness with small test keys).
pub fn generate_safe_factor_pair<R: RngCore + CryptoRng>(
    bits: u64,
    rng: &mut R,
) -> Result<(BigUint, BigUint)> {
    use num_integer::Integer;
    for _ in 0..64 {
        let p = generate_prime(bits, rng)?;
        let q = generate_prime(bits, rng)?;
        if p == q {
            continue;
        }
        let n = &p * &q;
        let phi = (&p - BigUint::one()) * (&q - BigUint::one());
        if n.gcd(&phi).is_one() {
            return Ok((p, q));
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_primes_are_recognised() {
        let mut r = rng();
        for p in [2u32, 3, 5, 7, 11, 13, 97, 101, 251, 257, 65537] {
            assert!(is_probable_prime(&BigUint::from(p), &mut r), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_are_rejected() {
        let mut r = rng();
        for c in [0u32, 1, 4, 6, 8, 9, 15, 21, 25, 91, 100, 255, 65535, 65536] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        let mut r = rng();
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        for c in [561u32, 1105, 1729, 2465, 2821, 6601, 8911, 62745] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn known_large_prime() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let m127 = (BigUint::one() << 127u32) - BigUint::one();
        assert!(is_probable_prime(&m127, &mut r));
        // 2^128 - 1 factors as 3 * 5 * 17 * ...
        let c = (BigUint::one() << 128u32) - BigUint::one();
        assert!(!is_probable_prime(&c, &mut r));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [16u64, 32, 64, 128] {
            let p = generate_prime(bits, &mut r).unwrap();
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn too_small_request_is_rejected() {
        let mut r = rng();
        assert!(matches!(generate_prime(4, &mut r), Err(CryptoError::KeySizeTooSmall { .. })));
    }

    #[test]
    fn factor_pair_is_usable() {
        let mut r = rng();
        let (p, q) = generate_safe_factor_pair(64, &mut r).unwrap();
        assert_ne!(p, q);
        assert_eq!(p.bits(), 64);
        assert_eq!(q.bits(), 64);
    }
}
