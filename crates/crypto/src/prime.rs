//! Probabilistic prime generation (trial-division sieve + Miller–Rabin) used for
//! Paillier / Damgård–Jurik key generation.
//!
//! The paper's experiments use "128-bit security for the Paillier and DJ encryption"
//! (§11); key sizes in this reproduction are a constructor parameter, so the same code
//! path generates the small keys used in fast tests and the larger keys used in benches.
//!
//! Candidate search is incremental: one random odd starting point, residues against a
//! sieve of small primes computed once with word-sized divisions, then the search walks
//! `candidate + 2·Δ` updating only the residues (pure `u64` arithmetic) and runs
//! Miller–Rabin — whose modpows ride the Montgomery fast path of the vendored bignum —
//! only on candidates that survive the sieve.

use std::sync::OnceLock;

use num_bigint::{BigUint, MontgomeryContext, RandBigInt};
use num_traits::One;
use rand::{CryptoRng, RngCore};

use crate::bigint::random_exact_bits;
use crate::error::{CryptoError, Result};

/// Small primes used for cheap trial division before running Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Upper bound (exclusive) of the sieve prime table used by [`generate_prime`].
const SIEVE_LIMIT: u32 = 1 << 14;

/// How far the incremental search walks (`candidate + 2·Δ`, `Δ < SEARCH_SPAN`) before
/// drawing a fresh random starting point.  ~2¹³ odd candidates covers many times the
/// expected prime gap at every key size this library accepts.
const SEARCH_SPAN: u64 = 1 << 13;

/// The odd sieve primes `3, 5, 7, …` below [`SIEVE_LIMIT`], computed once.
fn sieve_primes() -> &'static [u32] {
    static PRIMES: OnceLock<Vec<u32>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let limit = SIEVE_LIMIT as usize;
        let mut composite = vec![false; limit];
        let mut primes = Vec::new();
        // Odd numbers only — generated candidates are always odd, so 2 never divides.
        for n in (3..limit).step_by(2) {
            if !composite[n] {
                primes.push(n as u32);
                let mut multiple = n * n;
                while multiple < limit {
                    composite[multiple] = true;
                    multiple += 2 * n; // skip even multiples
                }
            }
        }
        primes
    })
}

/// Number of Miller–Rabin rounds.  40 rounds gives an error probability below 2^-80 for
/// random candidates, which is the conventional choice for RSA-style key generation.
const MILLER_RABIN_ROUNDS: usize = 40;

/// Maximum number of candidates examined before giving up (far above the expected number,
/// which is O(bits) by the prime number theorem).
const MAX_CANDIDATES: usize = 100_000;

/// Returns `true` if `n` is (probably) prime.
///
/// Deterministic for `n < 2^32` (full trial division against the small prime table plus
/// Miller–Rabin with random bases), probabilistic with error < 2^-80 above that.
pub fn is_probable_prime<R: RngCore + CryptoRng>(n: &BigUint, rng: &mut R) -> bool {
    if n < &BigUint::from(2u32) {
        return false;
    }
    for &p in SMALL_PRIMES.iter() {
        let p64 = p as u64;
        if n.rem_u64(p64) == 0 {
            // Divisible by p: prime exactly when n *is* p.
            return *n == BigUint::from(p64);
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin primality test with `rounds` random bases.  All exponentiations share
/// one Montgomery context for the candidate (the candidate is odd: trial division by 2
/// already happened).
fn miller_rabin<R: RngCore + CryptoRng>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from(2u32);
    let n_minus_one = n - &one;
    let ctx = match MontgomeryContext::new(n) {
        Some(ctx) => ctx,
        None => return false, // even (and > 2, already screened): composite
    };

    // Write n - 1 = 2^s * d with d odd.
    let s = n_minus_one.trailing_zeros().unwrap_or(0);
    let d = &n_minus_one >> s;

    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = loop {
            let a = rng.gen_biguint_below(n);
            if a >= two && a <= n - &two {
                break a;
            }
        };
        let mut x = ctx.modpow(&a, &d);
        if x == one || x == n_minus_one {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.modpow(&x, &two);
            if x == n_minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// Incremental search: from a random odd `bits`-bit starting point, the candidate
/// residues against every sieve prime are computed once ([`BigUint::rem_u64`]); the
/// walk to `candidate + 2·Δ` then only checks `(residue + 2·Δ) mod p` in word
/// arithmetic and reserves Miller–Rabin for candidates no sieve prime divides.
pub fn generate_prime<R: RngCore + CryptoRng>(bits: u64, rng: &mut R) -> Result<BigUint> {
    if bits < 8 {
        return Err(CryptoError::KeySizeTooSmall { requested: bits as usize, minimum: 8 });
    }
    // Only sieve by primes whose square is below the candidate range: a larger prime
    // dividing a `bits`-bit candidate implies a smaller cofactor another sieve prime
    // already catches — and this keeps tiny test sizes (where a table prime can *be*
    // the candidate) correct.
    let max_sieve_prime: u64 = match bits.checked_sub(1).map(|b| b / 2) {
        Some(half_bits) if half_bits >= 14 => SIEVE_LIMIT as u64,
        Some(half_bits) => 1u64 << half_bits,
        None => unreachable!("bits >= 8 checked above"),
    };
    let primes: Vec<u64> =
        sieve_primes().iter().map(|&p| p as u64).take_while(|&p| p < max_sieve_prime).collect();

    for _ in 0..MAX_CANDIDATES {
        let mut base = random_exact_bits(rng, bits);
        base.set_bit(0, true); // force odd
        let residues: Vec<u64> = primes.iter().map(|&p| base.rem_u64(p)).collect();

        'delta: for delta in 0..SEARCH_SPAN {
            let offset = 2 * delta;
            for (&p, &r) in primes.iter().zip(residues.iter()) {
                if (r + offset) % p == 0 {
                    continue 'delta; // divisible by a sieve prime
                }
            }
            let candidate = &base + BigUint::from(offset);
            if candidate.bits() != bits {
                break; // walked past the top of the `bits`-bit range
            }
            if miller_rabin(&candidate, MILLER_RABIN_ROUNDS, rng) {
                return Ok(candidate);
            }
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

/// Generate two distinct random primes of `bits` bits each, suitable as Paillier factors.
///
/// The primes are rejected if they are equal or if `gcd(pq, (p-1)(q-1)) != 1` (the
/// standard Paillier requirement, automatically satisfied for same-length primes but
/// checked for robustness with small test keys).
pub fn generate_safe_factor_pair<R: RngCore + CryptoRng>(
    bits: u64,
    rng: &mut R,
) -> Result<(BigUint, BigUint)> {
    use num_integer::Integer;
    for _ in 0..64 {
        let p = generate_prime(bits, rng)?;
        let q = generate_prime(bits, rng)?;
        if p == q {
            continue;
        }
        let n = &p * &q;
        let phi = (&p - BigUint::one()) * (&q - BigUint::one());
        if n.gcd(&phi).is_one() {
            return Ok((p, q));
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_primes_are_recognised() {
        let mut r = rng();
        for p in [2u32, 3, 5, 7, 11, 13, 97, 101, 251, 257, 65537] {
            assert!(is_probable_prime(&BigUint::from(p), &mut r), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_are_rejected() {
        let mut r = rng();
        for c in [0u32, 1, 4, 6, 8, 9, 15, 21, 25, 91, 100, 255, 65535, 65536] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        let mut r = rng();
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        for c in [561u32, 1105, 1729, 2465, 2821, 6601, 8911, 62745] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn known_large_prime() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let m127 = (BigUint::one() << 127u32) - BigUint::one();
        assert!(is_probable_prime(&m127, &mut r));
        // 2^128 - 1 factors as 3 * 5 * 17 * ...
        let c = (BigUint::one() << 128u32) - BigUint::one();
        assert!(!is_probable_prime(&c, &mut r));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [16u64, 32, 64, 128] {
            let p = generate_prime(bits, &mut r).unwrap();
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn too_small_request_is_rejected() {
        let mut r = rng();
        assert!(matches!(generate_prime(4, &mut r), Err(CryptoError::KeySizeTooSmall { .. })));
    }

    #[test]
    fn factor_pair_is_usable() {
        let mut r = rng();
        let (p, q) = generate_safe_factor_pair(64, &mut r).unwrap();
        assert_ne!(p, q);
        assert_eq!(p.bits(), 64);
        assert_eq!(q.bits(), 64);
    }
}
