//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! The paper instantiates the pseudo-random functions used by the Encrypted Hash List
//! (EHL / EHL+) with HMAC-SHA-256 (§5, §11).  This module provides the underlying
//! compression function and streaming hasher; [`crate::hmac`] builds HMAC on top of it.
//!
//! The implementation is deliberately simple and allocation-free in the hot path; it is
//! validated in the unit tests against the NIST FIPS 180-4 example vectors.

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of a SHA-256 message block in bytes.
pub const BLOCK_LEN: usize = 64;

/// Initial hash values (first 32 bits of the fractional parts of the square roots of the
/// first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants (first 32 bits of the fractional parts of the cube roots of the first
/// 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A streaming SHA-256 hasher.
///
/// ```
/// use sectopk_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block buffer.
    buffer: [u8; BLOCK_LEN],
    /// Number of valid bytes in `buffer`.
    buffer_len: usize,
    /// Total number of message bytes processed so far.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha256").field("total_len", &self.total_len).finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; BLOCK_LEN], buffer_len: 0, total_len: 0 }
    }

    /// Feed `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially-filled buffer first.
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process whole blocks directly from the input.
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut tmp = [0u8; BLOCK_LEN];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finish the computation and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        // Number of zero bytes so that (buffer_len + 1 + zeros + 8) % 64 == 0.
        let pad_len =
            if self.buffer_len < 56 { 56 - self.buffer_len } else { 120 - self.buffer_len };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_count(&pad[..pad_len + 8]);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Convenience one-shot hash.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Like `update`, but does not advance the message length counter (used only for the
    /// final padding, whose bytes are not part of the message).
    fn update_no_count(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    /// The SHA-256 compression function operating on one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    Sha256::digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 100, 999] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "chunk {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the 55/56/64 byte padding boundaries.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(d1, h.finalize(), "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = sha256(b"object-1");
        let b = sha256(b"object-2");
        assert_ne!(a, b);
    }
}
