//! Error type shared by the cryptographic substrate.

use std::fmt;

/// Errors surfaced by the cryptographic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The requested key length is too small to be meaningful / secure enough to test.
    KeySizeTooSmall {
        /// Requested modulus bit-length.
        requested: usize,
        /// Minimum supported modulus bit-length.
        minimum: usize,
    },
    /// A ciphertext was presented under the wrong modulus / key.
    CiphertextOutOfRange,
    /// A plaintext does not fit in the scheme's message space.
    PlaintextOutOfRange,
    /// A value that must be invertible modulo N was not (probability ≈ 1/p of happening
    /// with honestly generated keys; indicates corrupted inputs).
    NotInvertible,
    /// Decryption produced an inconsistent intermediate value (wrong key or corrupted
    /// ciphertext).
    DecryptionFailed,
    /// Prime generation exhausted its iteration budget.
    PrimeGenerationFailed,
    /// A serialized key or ciphertext could not be parsed.
    Malformed(String),
    /// The other protocol party reported a failure, or a transport-level exchange
    /// (serialization, channel, thread) broke down.
    Protocol(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::KeySizeTooSmall { requested, minimum } => write!(
                f,
                "requested modulus of {requested} bits is below the supported minimum of {minimum} bits"
            ),
            CryptoError::CiphertextOutOfRange => {
                write!(f, "ciphertext is not an element of the expected group")
            }
            CryptoError::PlaintextOutOfRange => {
                write!(f, "plaintext does not fit in the message space")
            }
            CryptoError::NotInvertible => {
                write!(f, "value is not invertible modulo N (corrupted input or wrong key)")
            }
            CryptoError::DecryptionFailed => write!(f, "decryption failed (wrong key or corrupted ciphertext)"),
            CryptoError::PrimeGenerationFailed => write!(f, "prime generation exhausted its iteration budget"),
            CryptoError::Malformed(what) => write!(f, "malformed serialized value: {what}"),
            CryptoError::Protocol(what) => write!(f, "protocol failure: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenient result alias for the crypto crate.
pub type Result<T> = std::result::Result<T, CryptoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CryptoError::KeySizeTooSmall { requested: 64, minimum: 128 };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("128"));
        assert!(CryptoError::DecryptionFailed.to_string().contains("decryption"));
        assert!(CryptoError::Malformed("key".into()).to_string().contains("key"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CryptoError::NotInvertible, CryptoError::NotInvertible);
        assert_ne!(CryptoError::NotInvertible, CryptoError::DecryptionFailed);
    }
}
