//! Byte-string (de)serialization helpers shared by the ciphertext wire formats.
//!
//! Ciphertexts serialize as [`serde::Value::Bytes`] (raw big-endian byte strings) so the
//! binary wire codec of the transport layer ships them verbatim.  When a value has been
//! round-tripped through JSON instead (which has no byte-string type), the bytes come
//! back as a lowercase hex [`serde::Value::Str`]; the helpers here accept both.

/// Extract a byte string from a serialized value: either raw [`serde::Value::Bytes`] or
/// a hex [`serde::Value::Str`] (the JSON rendering of bytes).
pub fn bytes_from_value(
    v: &serde::Value,
    what: &str,
) -> std::result::Result<Vec<u8>, serde::Error> {
    match v {
        serde::Value::Bytes(b) => Ok(b.clone()),
        serde::Value::Str(s) => hex_decode(s)
            .ok_or_else(|| serde::Error::custom(format!("invalid hex byte string for {what}"))),
        other => Err(serde::Error::invalid_type("byte string", other)),
    }
}

/// Decode a lowercase/uppercase hex string into bytes; `None` on any malformed input.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// Encode bytes as a lowercase hex string (the inverse of [`hex_decode`]).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let cases: &[&[u8]] = &[b"", b"\x00", b"\xff\x00\xab", b"hello world"];
        for &c in cases {
            assert_eq!(hex_decode(&hex_encode(c)).unwrap(), c);
        }
    }

    #[test]
    fn hex_decode_rejects_garbage() {
        assert!(hex_decode("abc").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex digit");
    }

    #[test]
    fn bytes_from_value_accepts_both_forms() {
        let raw = serde::Value::Bytes(vec![1, 2, 255]);
        assert_eq!(bytes_from_value(&raw, "t").unwrap(), vec![1, 2, 255]);
        let hexed = serde::Value::Str("0102ff".into());
        assert_eq!(bytes_from_value(&hexed, "t").unwrap(), vec![1, 2, 255]);
        assert!(bytes_from_value(&serde::Value::U64(5), "t").is_err());
    }
}
