//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on the from-scratch [`crate::sha256`]
//! implementation.
//!
//! HMAC-SHA-256 is the pseudo-random function the paper uses to hash object identifiers
//! into the Encrypted Hash List (§5): `EHL+[i] = Enc(HMAC(k_i, o) mod N)`.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// The byte length of an HMAC-SHA-256 tag.
pub const TAG_LEN: usize = DIGEST_LEN;

/// A reusable HMAC-SHA-256 instance bound to one key.
///
/// Creating the instance precomputes the inner/outer padded keys, so evaluating the PRF
/// on many messages (as the EHL encoder does for every object in a relation) only costs
/// two compression-function invocations of state cloning per message.
#[derive(Clone)]
pub struct HmacSha256 {
    /// SHA-256 state primed with `key ⊕ ipad`.
    inner: Sha256,
    /// SHA-256 state primed with `key ⊕ opad`.
    outer: Sha256,
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HmacSha256 { .. }")
    }
}

impl HmacSha256 {
    /// Create an HMAC instance for `key`.  Keys longer than the SHA-256 block size are
    /// hashed first, as the standard requires.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);

        HmacSha256 { inner, outer }
    }

    /// Compute the HMAC tag of `message`.
    pub fn mac(&self, message: &[u8]) -> [u8; TAG_LEN] {
        let mut inner = self.inner.clone();
        inner.update(message);
        let inner_digest = inner.finalize();

        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verify a tag in constant time with respect to the tag contents.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        if tag.len() != TAG_LEN {
            return false;
        }
        let expected = self.mac(message);
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; TAG_LEN] {
    HmacSha256::new(key).mac(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than \
block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = hmac_sha256(&key, msg);
        assert_eq!(hex(&tag), "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
    }

    #[test]
    fn reusable_instance_matches_one_shot() {
        let mac = HmacSha256::new(b"secret-key");
        for i in 0..50u32 {
            let msg = format!("object-{i}");
            assert_eq!(mac.mac(msg.as_bytes()), hmac_sha256(b"secret-key", msg.as_bytes()));
        }
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = HmacSha256::new(b"k");
        let tag = mac.mac(b"msg");
        assert!(mac.verify(b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!mac.verify(b"msg", &bad));
        assert!(!mac.verify(b"msg", &tag[..31]));
        assert!(!mac.verify(b"other", &tag));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
