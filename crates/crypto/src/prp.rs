//! Keyed pseudo-random permutations over small domains.
//!
//! Two uses in the paper:
//!
//! * The data owner permutes the `M` sorted attribute lists with a PRP `P_K` during
//!   database encryption (Algorithm 2, line 9); the query token carries `P_K(i)` for each
//!   queried attribute so that S1 knows which encrypted list to scan without learning the
//!   attribute's identity (§7).
//! * S1 and S2 apply *ephemeral* uniformly random permutations inside the sub-protocols
//!   (SecWorst, SecDedup, SecFilter, …) to hide pairwise relations between items.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{CryptoRng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::prf::{Prf, PrfKey};

/// A keyed pseudo-random permutation of the domain `[0, n)`.
///
/// The permutation is derived deterministically from the key and the domain size via a
/// PRF-seeded Fisher–Yates shuffle, so the data owner and every authorized client compute
/// the same `P_K` without communicating.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct KeyedPrp {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl KeyedPrp {
    /// Derive the permutation of `[0, n)` determined by `key`.
    pub fn new(key: &PrfKey, n: usize) -> Self {
        let prf = Prf::new(key);
        let seed_hi = prf.eval_u64(format!("prp-seed-hi/{n}").as_bytes());
        let seed_lo = prf.eval_u64(format!("prp-seed-lo/{n}").as_bytes());
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed_hi.to_be_bytes());
        seed[8..16].copy_from_slice(&seed_lo.to_be_bytes());
        seed[16..24].copy_from_slice(&(n as u64).to_be_bytes());
        let mut rng = StdRng::from_seed(seed);

        let mut forward: Vec<usize> = (0..n).collect();
        forward.shuffle(&mut rng);
        let mut inverse = vec![0usize; n];
        for (i, &p) in forward.iter().enumerate() {
            inverse[p] = i;
        }
        KeyedPrp { forward, inverse }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Apply the permutation: `P_K(i)`.
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// Apply the inverse permutation: `P_K⁻¹(j)`.
    pub fn invert(&self, j: usize) -> usize {
        self.inverse[j]
    }

    /// The full forward mapping (index → image).
    pub fn forward_map(&self) -> &[usize] {
        &self.forward
    }
}

/// An ephemeral uniformly random permutation of `[0, n)`, freshly sampled by a party
/// inside a sub-protocol (denoted `π` in Algorithms 4, 6, 7, 9, 11, 12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomPermutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl RandomPermutation {
    /// Sample a fresh permutation of `[0, n)`.
    pub fn sample<R: RngCore + CryptoRng>(n: usize, rng: &mut R) -> Self {
        let mut forward: Vec<usize> = (0..n).collect();
        forward.shuffle(rng);
        let mut inverse = vec![0usize; n];
        for (i, &p) in forward.iter().enumerate() {
            inverse[p] = i;
        }
        RandomPermutation { forward, inverse }
    }

    /// The identity permutation (useful for tests and for the degenerate n ≤ 1 cases).
    pub fn identity(n: usize) -> Self {
        let forward: Vec<usize> = (0..n).collect();
        RandomPermutation { inverse: forward.clone(), forward }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Where index `i` is sent: `π(i)`.
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// The preimage of position `j`: `π⁻¹(j)`.
    pub fn invert(&self, j: usize) -> usize {
        self.inverse[j]
    }

    /// Permute a slice into a new vector: output position `π(i)` holds input element `i`.
    pub fn permute<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.len(), "permutation/domain size mismatch");
        let mut out: Vec<Option<T>> = vec![None; items.len()];
        for (i, item) in items.iter().enumerate() {
            out[self.forward[i]] = Some(item.clone());
        }
        out.into_iter().map(|x| x.expect("permutation is a bijection")).collect()
    }

    /// Undo [`Self::permute`].
    pub fn unpermute<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.len(), "permutation/domain size mismatch");
        let mut out: Vec<Option<T>> = vec![None; items.len()];
        for (j, item) in items.iter().enumerate() {
            out[self.inverse[j]] = Some(item.clone());
        }
        out.into_iter().map(|x| x.expect("permutation is a bijection")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keyed_prp_is_a_bijection() {
        let key = PrfKey([3u8; 32]);
        for n in [0usize, 1, 2, 5, 16, 101] {
            let prp = KeyedPrp::new(&key, n);
            assert_eq!(prp.len(), n);
            let mut seen = vec![false; n];
            for i in 0..n {
                let img = prp.apply(i);
                assert!(img < n);
                assert!(!seen[img], "duplicate image");
                seen[img] = true;
                assert_eq!(prp.invert(img), i);
            }
        }
    }

    #[test]
    fn keyed_prp_is_deterministic_per_key() {
        let key = PrfKey([9u8; 32]);
        let a = KeyedPrp::new(&key, 50);
        let b = KeyedPrp::new(&key, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn keyed_prp_differs_across_keys() {
        let a = KeyedPrp::new(&PrfKey([1u8; 32]), 64);
        let b = KeyedPrp::new(&PrfKey([2u8; 32]), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn random_permutation_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [0usize, 1, 2, 7, 64] {
            let perm = RandomPermutation::sample(n, &mut rng);
            let items: Vec<u32> = (0..n as u32).collect();
            let shuffled = perm.permute(&items);
            assert_eq!(perm.unpermute(&shuffled), items);
            // permute places item i at position π(i)
            for (i, &item) in items.iter().enumerate() {
                assert_eq!(shuffled[perm.apply(i)], item);
            }
        }
    }

    #[test]
    fn identity_permutation_is_identity() {
        let id = RandomPermutation::identity(10);
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(id.permute(&items), items);
        for i in 0..10 {
            assert_eq!(id.apply(i), i);
            assert_eq!(id.invert(i), i);
        }
    }

    #[test]
    fn sampled_permutations_vary() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = RandomPermutation::sample(64, &mut rng);
        let b = RandomPermutation::sample(64, &mut rng);
        assert_ne!(a, b, "two fresh 64-element permutations should not collide");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn permute_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let perm = RandomPermutation::sample(4, &mut rng);
        let _ = perm.permute(&[1u8, 2, 3]);
    }
}
