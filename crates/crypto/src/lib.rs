//! # sectopk-crypto
//!
//! Cryptographic substrate for the reproduction of *"Top-k Query Processing on Encrypted
//! Databases with Strong Security Guarantees"* (Meng, Zhu, Kollios; ICDE 2018).
//!
//! Everything the paper's construction relies on below the data-structure level lives
//! here and is implemented from scratch (on top of `num-bigint` for raw multi-precision
//! arithmetic — see `DESIGN.md` for the dependency policy):
//!
//! * [`sha256`] / [`hmac`] — SHA-256 and HMAC-SHA-256, the PRF instantiation of the EHL.
//! * [`prime`] — Miller–Rabin prime generation for key generation.
//! * [`paillier`] — the additively homomorphic Paillier cryptosystem (§3.3).
//! * [`damgard_jurik`] — the generalized Paillier (Damgård–Jurik) scheme with one extra
//!   layer, providing the `E2(Enc(m1))^{Enc(m2)} = E2(Enc(m1+m2))` identity.
//! * [`prf`] / [`prp`] — keyed PRFs and (keyed + ephemeral) pseudo-random permutations.
//! * [`keys`] — the data-owner / S1 / S2 / client key bundles of Algorithm 2.
//! * [`pool`] — amortizing pools of precomputed encryption nonces (`r^N mod N²`,
//!   `r^{N²} mod N³`) that take the exponentiation off the encrypt/re-randomize path.
//!
//! ## Quick example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sectopk_crypto::paillier::generate_keypair;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let (pk, sk) = generate_keypair(256, &mut rng).unwrap();
//! let a = pk.encrypt_u64(20, &mut rng).unwrap();
//! let b = pk.encrypt_u64(22, &mut rng).unwrap();
//! let sum = pk.add(&a, &b);
//! assert_eq!(sk.decrypt_u64(&sum).unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod damgard_jurik;
pub mod encoding;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod paillier;
pub mod par;
pub mod pool;
pub mod prf;
pub mod prime;
pub mod prp;
pub mod sha256;

pub use damgard_jurik::{DjPublicKey, DjSecretKey, LayeredCiphertext};
pub use error::{CryptoError, Result};
pub use keys::{ClientKeys, MasterKeys, S1Keys, S2Keys, DEFAULT_EHL_KEYS};
pub use paillier::{
    generate_keypair, Ciphertext, PaillierPublicKey, PaillierSecretKey, DEFAULT_MODULUS_BITS,
    MIN_MODULUS_BITS,
};
pub use par::par_map;
pub use pool::{shard_seed, RandomnessPool};
pub use prf::{Prf, PrfKey, PRF_KEY_LEN};
pub use prp::{KeyedPrp, RandomPermutation};
