//! Key material for the SecTopK scheme.
//!
//! Algorithm 2 of the paper has the data owner generate (a) a Paillier key pair
//! `(pk_p, sk_p)`, (b) `s` secret HMAC keys `κ_1, …, κ_s` for the EHL, and (c) a key `K`
//! for the pseudo-random permutation `P` that shuffles the attribute lists.  The owner
//! uploads `(pk_p, sk_p)` to the crypto cloud S2 and only `pk_p` to S1; authorized
//! clients receive `K` (and the EHL keys when they need to encode query-side objects).
//!
//! This module groups those pieces into an owner-side [`MasterKeys`] bundle and the two
//! cloud-side views [`S1Keys`] and [`S2Keys`].

use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::damgard_jurik::{DjPublicKey, DjSecretKey};
use crate::error::Result;
use crate::paillier::{
    generate_keypair, PaillierPublicKey, PaillierSecretKey, DEFAULT_MODULUS_BITS,
};
use crate::prf::PrfKey;

/// Number of HMAC keys (`s`) used by the EHL+ structure in the paper's experiments (§11.1).
pub const DEFAULT_EHL_KEYS: usize = 5;

/// The data owner's complete key material.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MasterKeys {
    /// Paillier public key (shared with both clouds and the clients).
    pub paillier_public: PaillierPublicKey,
    /// Paillier secret key (uploaded to the crypto cloud S2 only).
    pub paillier_secret: PaillierSecretKey,
    /// The `s` PRF keys `κ_1, …, κ_s` used by the EHL encoder.
    pub ehl_keys: Vec<PrfKey>,
    /// The PRP key `K` used to permute attribute lists; shared with authorized clients.
    pub prp_key: PrfKey,
}

impl MasterKeys {
    /// Generate a full key bundle with the given Paillier modulus size and `s` EHL keys.
    pub fn generate<R: RngCore + CryptoRng>(
        modulus_bits: usize,
        ehl_key_count: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let (paillier_public, paillier_secret) = generate_keypair(modulus_bits, rng)?;
        let master = PrfKey::random(rng);
        let ehl_keys = master.derive_family("ehl", ehl_key_count);
        let prp_key = master.derive(b"prp");
        Ok(MasterKeys { paillier_public, paillier_secret, ehl_keys, prp_key })
    }

    /// Generate a key bundle with the library defaults (256-bit N, s = 5).
    pub fn generate_default<R: RngCore + CryptoRng>(rng: &mut R) -> Result<Self> {
        Self::generate(DEFAULT_MODULUS_BITS, DEFAULT_EHL_KEYS, rng)
    }

    /// The view of the primary cloud S1: public key material only.
    pub fn s1_view(&self) -> S1Keys {
        S1Keys {
            paillier_public: self.paillier_public.clone(),
            dj_public: DjPublicKey::from_paillier(&self.paillier_public),
        }
    }

    /// The view of the crypto cloud S2: public *and* secret decryption keys, but none of
    /// the data-owner-side EHL / PRP keys (S2 never encodes or locates objects).
    pub fn s2_view(&self) -> S2Keys {
        S2Keys {
            paillier_public: self.paillier_public.clone(),
            paillier_secret: self.paillier_secret.clone(),
            dj_public: DjPublicKey::from_paillier(&self.paillier_public),
            dj_secret: DjSecretKey::from_paillier(&self.paillier_secret),
        }
    }

    /// The view handed to an authorized client: the PRP key for token generation plus the
    /// Paillier public key for decrypting nothing / verifying sizes (clients receive
    /// encrypted results and ask the owner or a dedicated service for final decryption in
    /// the paper's deployment; tests use the owner's secret key directly).
    pub fn client_view(&self) -> ClientKeys {
        ClientKeys {
            prp_key: self.prp_key.clone(),
            ehl_keys: self.ehl_keys.clone(),
            paillier_public: self.paillier_public.clone(),
        }
    }

    /// Number of EHL PRF keys (`s`).
    pub fn ehl_key_count(&self) -> usize {
        self.ehl_keys.len()
    }
}

/// Key material visible to the primary cloud S1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct S1Keys {
    /// Paillier public key.
    pub paillier_public: PaillierPublicKey,
    /// Damgård–Jurik public key (derived from the Paillier public key).
    pub dj_public: DjPublicKey,
}

/// Key material visible to the crypto cloud S2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct S2Keys {
    /// Paillier public key.
    pub paillier_public: PaillierPublicKey,
    /// Paillier secret key.
    pub paillier_secret: PaillierSecretKey,
    /// Damgård–Jurik public key.
    pub dj_public: DjPublicKey,
    /// Damgård–Jurik secret key.
    pub dj_secret: DjSecretKey,
}

/// Key material held by an authorized client.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClientKeys {
    /// PRP key `K` for mapping attribute indices to permuted list indices.
    pub prp_key: PrfKey,
    /// EHL PRF keys (needed when the client must encode objects, e.g. for joins).
    pub ehl_keys: Vec<PrfKey>,
    /// Paillier public key.
    pub paillier_public: PaillierPublicKey,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::MIN_MODULUS_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_produces_consistent_views() {
        let mut rng = StdRng::seed_from_u64(123);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 4, &mut rng).unwrap();
        assert_eq!(keys.ehl_key_count(), 4);

        let s1 = keys.s1_view();
        let s2 = keys.s2_view();
        let client = keys.client_view();

        assert_eq!(s1.paillier_public.n(), s2.paillier_public.n());
        assert_eq!(client.paillier_public.n(), s1.paillier_public.n());
        assert_eq!(s1.dj_public.n(), s2.dj_public.n());
    }

    #[test]
    fn s2_can_decrypt_what_s1_encrypts() {
        let mut rng = StdRng::seed_from_u64(77);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let s1 = keys.s1_view();
        let s2 = keys.s2_view();
        let c = s1.paillier_public.encrypt_u64(314, &mut rng).unwrap();
        assert_eq!(s2.paillier_secret.decrypt_u64(&c).unwrap(), 314);

        let layered = s1.dj_public.encrypt_u64(159, &mut rng).unwrap();
        assert_eq!(s2.dj_secret.decrypt(&layered).unwrap(), num_bigint::BigUint::from(159u64));
    }

    #[test]
    fn ehl_keys_are_pairwise_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 5, &mut rng).unwrap();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(keys.ehl_keys[i].as_bytes(), keys.ehl_keys[j].as_bytes());
            }
        }
        assert_ne!(keys.prp_key.as_bytes(), keys.ehl_keys[0].as_bytes());
    }

    #[test]
    fn distinct_generations_use_distinct_keys() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let b = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        assert_ne!(a.paillier_public.n(), b.paillier_public.n());
        assert_ne!(a.prp_key.as_bytes(), b.prp_key.as_bytes());
    }
}
