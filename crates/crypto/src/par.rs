//! Deterministic data-parallel mapping over scoped threads.
//!
//! [`par_map`] is the one parallel primitive the intra-query fan-out is built on: it
//! applies a pure function to every item of a slice across up to `workers` threads and
//! returns the results **in input order**.  Because the function is pure (no RNG, no
//! ledger, no pool access — callers pre-draw any randomness serially first), the output
//! is byte-identical to a serial map regardless of worker count or scheduling.  That is
//! the "parallel compute, serial commit" contract the protocol layers rely on to keep
//! transports and leakage ledgers deterministic while a single query scales with cores.

/// Apply `f` to every item of `items` using up to `workers` scoped threads, returning
/// the results in input order.  `workers <= 1` (or a short input) runs serially on the
/// caller's thread — the parallel path introduces no other observable difference.
pub fn par_map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Contiguous chunks, sized so every worker gets within one item of the others.
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for part in results.iter_mut() {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for workers in [0usize, 1, 2, 3, 4, 8, 97, 200] {
            assert_eq!(par_map(workers, &items, |x| x * x + 1), expected, "workers = {workers}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(par_map(4, &empty, |x| *x).is_empty());
        assert_eq!(par_map(4, &[42u64], |x| *x), vec![42]);
    }
}
