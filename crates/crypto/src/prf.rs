//! Keyed pseudo-random functions built on HMAC-SHA-256.
//!
//! The EHL+ encoder (§5) maps an object identifier into `Z_N` as
//! `o_i ← HMAC(k_i, o) mod N`; this module provides that mapping plus helpers for
//! deriving independent sub-keys from a master secret (the data owner generates
//! `κ_1, …, κ_s` for the EHL and a PRP key `K` in Algorithm 2).

use num_bigint::BigUint;
use serde::{Deserialize, Serialize};

use crate::bigint::bytes_to_element;
use crate::hmac::{hmac_sha256, HmacSha256};

/// Length of a PRF key in bytes.
pub const PRF_KEY_LEN: usize = 32;

/// A 256-bit PRF key.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrfKey(pub [u8; PRF_KEY_LEN]);

impl std::fmt::Debug for PrfKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("PrfKey(..)")
    }
}

impl PrfKey {
    /// Sample a fresh random key.
    pub fn random<R: rand::RngCore + rand::CryptoRng>(rng: &mut R) -> Self {
        let mut key = [0u8; PRF_KEY_LEN];
        rng.fill_bytes(&mut key);
        PrfKey(key)
    }

    /// Deterministically derive a labelled sub-key: `HMAC(master, label)`.
    ///
    /// Used to expand one master secret into the `s` EHL keys and the PRP key without the
    /// data owner having to store a whole key ring.
    pub fn derive(&self, label: &[u8]) -> PrfKey {
        PrfKey(hmac_sha256(&self.0, label))
    }

    /// Derive the numbered family `label‖i` of sub-keys.
    pub fn derive_family(&self, label: &str, count: usize) -> Vec<PrfKey> {
        (0..count).map(|i| self.derive(format!("{label}/{i}").as_bytes())).collect()
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; PRF_KEY_LEN] {
        &self.0
    }
}

/// A pseudo-random function `F_k : {0,1}* → Z_m` instantiated as
/// `HMAC-SHA-256(k, ·) mod m` (the EHL+ hashing map from §5).
#[derive(Clone, Debug)]
pub struct Prf {
    mac: HmacSha256,
}

impl Prf {
    /// Instantiate the PRF with `key`.
    pub fn new(key: &PrfKey) -> Self {
        Prf { mac: HmacSha256::new(&key.0) }
    }

    /// Raw 32-byte PRF output.
    pub fn eval_bytes(&self, input: &[u8]) -> [u8; 32] {
        self.mac.mac(input)
    }

    /// PRF output reduced into `Z_m` (`m` must be non-zero).
    pub fn eval_mod(&self, input: &[u8], m: &BigUint) -> BigUint {
        bytes_to_element(&self.eval_bytes(input), m)
    }

    /// PRF output reduced into `[0, m)` for a machine-word modulus — the bucket-index map
    /// of the original (Bloom-filter style) EHL: `HMAC(κ_i, o) mod H`.
    pub fn eval_mod_usize(&self, input: &[u8], m: usize) -> usize {
        assert!(m > 0, "modulus must be positive");
        let bytes = self.eval_bytes(input);
        // Use the top 16 bytes as a big-endian integer; the bias for the small H values
        // used by EHL (tens of buckets) is ≪ 2^-100.
        let mut acc: u128 = 0;
        for b in &bytes[..16] {
            acc = (acc << 8) | *b as u128;
        }
        (acc % (m as u128)) as usize
    }

    /// PRF output as a `u64` (used for deterministic seeds).
    pub fn eval_u64(&self, input: &[u8]) -> u64 {
        let bytes = self.eval_bytes(input);
        u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_traits::Zero;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> PrfKey {
        PrfKey([7u8; PRF_KEY_LEN])
    }

    #[test]
    fn deterministic_output() {
        let prf = Prf::new(&key());
        assert_eq!(prf.eval_bytes(b"object-1"), prf.eval_bytes(b"object-1"));
        assert_ne!(prf.eval_bytes(b"object-1"), prf.eval_bytes(b"object-2"));
    }

    #[test]
    fn different_keys_give_different_outputs() {
        let a = Prf::new(&PrfKey([1u8; 32]));
        let b = Prf::new(&PrfKey([2u8; 32]));
        assert_ne!(a.eval_bytes(b"x"), b.eval_bytes(b"x"));
    }

    #[test]
    fn eval_mod_is_in_range() {
        let prf = Prf::new(&key());
        let m = BigUint::from(1_000_003u64);
        for i in 0..100u32 {
            let v = prf.eval_mod(&i.to_be_bytes(), &m);
            assert!(v < m);
        }
    }

    #[test]
    fn eval_mod_usize_covers_buckets() {
        let prf = Prf::new(&key());
        let h = 23usize;
        let mut seen = vec![false; h];
        for i in 0..2000u32 {
            let v = prf.eval_mod_usize(&i.to_be_bytes(), h);
            assert!(v < h);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "2000 PRF outputs should cover all 23 buckets");
    }

    #[test]
    fn derived_keys_are_distinct_and_deterministic() {
        let master = key();
        let k1 = master.derive(b"ehl/0");
        let k2 = master.derive(b"ehl/1");
        assert_ne!(k1.0, k2.0);
        assert_eq!(master.derive(b"ehl/0").0, k1.0);

        let family = master.derive_family("ehl", 5);
        assert_eq!(family.len(), 5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(family[i].0, family[j].0, "derived keys must be pairwise distinct");
            }
        }
    }

    #[test]
    fn random_keys_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = PrfKey::random(&mut rng);
        let b = PrfKey::random(&mut rng);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = key();
        assert_eq!(format!("{k:?}"), "PrfKey(..)");
    }

    #[test]
    fn eval_u64_is_stable() {
        let prf = Prf::new(&key());
        assert_eq!(prf.eval_u64(b"seed"), prf.eval_u64(b"seed"));
        assert_ne!(prf.eval_u64(b"seed"), prf.eval_u64(b"seed2"));
    }

    #[test]
    fn eval_mod_handles_modulus_one() {
        let prf = Prf::new(&key());
        assert!(prf.eval_mod(b"x", &BigUint::from(1u32)).is_zero());
    }
}
