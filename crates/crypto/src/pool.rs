//! An amortizing pool of precomputed encryption nonces.
//!
//! The expensive half of a Paillier encryption (or re-randomization) is the nonce
//! `r^N mod N²`; for the Damgård–Jurik outer layer it is `r^{N²} mod N³`.  Neither
//! depends on the message, so they can be computed ahead of time and consumed with a
//! single multiplication on the latency path — the classic precomputation trick for
//! Paillier-style schemes, and what lets the S2 engine answer a burst of protocol
//! requests without paying one full exponentiation per returned ciphertext.
//!
//! A [`RandomnessPool`] owns its own deterministic RNG streams, one per nonce kind
//! (so a pool seeded identically produces identical ciphertext streams — the
//! transport-equivalence tests rely on this), and refills in batches of
//! [`RandomnessPool::batch`] nonces whenever a queue runs dry.  [`RandomnessPool::refill`] can be called explicitly during idle time to
//! move the precomputation off the critical path entirely.
//!
//! Ownership: pools are *not* part of the shared `Arc` key material — two parties
//! sharing a public key must not share a nonce stream — so each protocol party
//! (`S1State`, the S2 engine) owns its pools, seeded from its own seed.

use std::collections::VecDeque;

use num_bigint::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bigint::random_below;
use crate::damgard_jurik::{DjPublicKey, LayeredCiphertext};
use crate::error::Result;
use crate::paillier::{Ciphertext, PaillierPublicKey};

/// Default number of nonces computed per refill.
pub const DEFAULT_BATCH: usize = 32;

/// Derive the deterministic seed of per-session pool shard `session` from a party's
/// `base_seed`.
///
/// A multi-session server (one S2 engine pool serving many S1 sessions) must give every
/// session its **own** nonce stream: sessions sharing one pool would consume nonces in
/// arrival order, making ciphertexts depend on the interleaving of other sessions'
/// requests — the end of byte-for-byte reproducibility.  Mixing the session id into the
/// seed with a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) finalizer keeps each
/// shard deterministic in isolation while decorrelating the streams (a plain
/// `base_seed ^ session` would make shards of adjacent sessions collide whenever the
/// base seed already differs in the low bits).
pub fn shard_seed(base_seed: u64, session: u64) -> u64 {
    let mut z = base_seed ^ session.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stream tag mixed into a pool's seed to derive the Damgård–Jurik exponent stream.
///
/// Each nonce kind draws its exponents from its **own** RNG stream: with a single
/// shared RNG, the value of Paillier nonce *k* would depend on how many DJ draws
/// happened before it — i.e. on the `(paillier, dj)` split of every refill call — and
/// an upper-bound prefill (which splits differently than lazy consumption) would
/// silently shift both streams.
const DJ_STREAM_TAG: u64 = 0xD1;

/// A pool of precomputed Paillier (and optionally Damgård–Jurik) encryption nonces
/// for one public key.
#[derive(Debug)]
pub struct RandomnessPool {
    pk: PaillierPublicKey,
    dj: Option<DjPublicKey>,
    paillier_rng: StdRng,
    dj_rng: StdRng,
    paillier_nonces: VecDeque<BigUint>,
    dj_nonces: VecDeque<BigUint>,
    batch: usize,
}

impl RandomnessPool {
    /// A pool for Paillier nonces only.
    pub fn new(pk: &PaillierPublicKey, seed: u64) -> Self {
        RandomnessPool {
            pk: pk.clone(),
            dj: None,
            paillier_rng: StdRng::seed_from_u64(seed),
            dj_rng: StdRng::seed_from_u64(shard_seed(seed, DJ_STREAM_TAG)),
            paillier_nonces: VecDeque::new(),
            dj_nonces: VecDeque::new(),
            batch: DEFAULT_BATCH,
        }
    }

    /// A pool serving both the Paillier and the Damgård–Jurik layer of one modulus.
    pub fn with_dj(pk: &PaillierPublicKey, dj: &DjPublicKey, seed: u64) -> Self {
        let mut pool = Self::new(pk, seed);
        pool.dj = Some(dj.clone());
        pool
    }

    /// Number of nonces computed per batch refill.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Change the refill batch size (minimum 1).
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// How many nonces of each kind are currently ready.
    pub fn ready(&self) -> (usize, usize) {
        (self.paillier_nonces.len(), self.dj_nonces.len())
    }

    /// Precompute `paillier` + `dj` nonces now (e.g. during idle time between queries).
    ///
    /// Nonces come from the keys' amortized fixed-base path
    /// ([`PaillierPublicKey::nonce_from_exponent`] /
    /// [`DjPublicKey::nonce_from_exponent`]): draw a random exponent `a < N`, evaluate
    /// `H^a` over the precomputed power table — no squarings, ~5× fewer Montgomery
    /// operations than the textbook `r^N` exponentiation.
    ///
    /// Each nonce kind has its **own** RNG stream, consumed only by that kind's
    /// exponent draws (one draw per nonce), so nonce *k* of a kind is a function of
    /// the pool seed, the kind and *k* alone — never of refill timing, batch
    /// boundaries, or the `(paillier, dj)` split of earlier refill calls.  That
    /// invariant is what lets [`Self::prefill_parallel`] and idle-time refills of any
    /// size (including upper-bound prefills that overshoot one kind) leave the
    /// ciphertext stream byte-identical.
    pub fn refill(&mut self, paillier: usize, dj: usize) {
        for _ in 0..paillier {
            let a = random_below(&mut self.paillier_rng, self.pk.n());
            self.paillier_nonces.push_back(self.pk.nonce_from_exponent(&a));
        }
        if dj > 0 {
            let dj_pk = self.dj.clone().expect("refilling DJ nonces on a Paillier-only pool");
            for _ in 0..dj {
                let a = random_below(&mut self.dj_rng, dj_pk.n());
                self.dj_nonces.push_back(dj_pk.nonce_from_exponent(&a));
            }
        }
    }

    /// Precompute `paillier` + `dj` nonces using up to `workers` threads: exponents are
    /// drawn serially (preserving the draw-order invariant of [`Self::refill`] exactly),
    /// the table evaluations run data-parallel, and the results are queued in draw
    /// order — so the nonce stream is byte-identical to a serial refill of the same
    /// counts.  With `workers <= 1` this *is* a serial refill.
    pub fn prefill_parallel(&mut self, paillier: usize, dj: usize, workers: usize) {
        if workers <= 1 || paillier + dj < 2 {
            self.refill(paillier, dj);
            return;
        }
        let dj_pk = if dj > 0 {
            Some(self.dj.clone().expect("refilling DJ nonces on a Paillier-only pool"))
        } else {
            None
        };
        let paillier_exps: Vec<BigUint> =
            (0..paillier).map(|_| random_below(&mut self.paillier_rng, self.pk.n())).collect();
        let dj_exps: Vec<BigUint> = match &dj_pk {
            Some(dj_pk) => (0..dj).map(|_| random_below(&mut self.dj_rng, dj_pk.n())).collect(),
            None => Vec::new(),
        };

        let pk = &self.pk;
        let paillier_nonces =
            crate::par::par_map(workers, &paillier_exps, |a| pk.nonce_from_exponent(a));
        let dj_nonces = match &dj_pk {
            Some(dj_pk) => crate::par::par_map(workers, &dj_exps, |a| dj_pk.nonce_from_exponent(a)),
            None => Vec::new(),
        };
        self.paillier_nonces.extend(paillier_nonces);
        self.dj_nonces.extend(dj_nonces);
    }

    /// Pop a Paillier nonce `r^N mod N²`, refilling a batch if the queue is dry.
    pub fn next_paillier_nonce(&mut self) -> BigUint {
        if self.paillier_nonces.is_empty() {
            self.refill(self.batch, 0);
        }
        self.paillier_nonces.pop_front().expect("refill produced at least one nonce")
    }

    /// Pop a DJ nonce `r^{N²} mod N³`, refilling a batch if the queue is dry.
    ///
    /// Panics if the pool was built without a DJ key.
    pub fn next_dj_nonce(&mut self) -> BigUint {
        if self.dj_nonces.is_empty() {
            self.refill(0, self.batch);
        }
        self.dj_nonces.pop_front().expect("refill produced at least one nonce")
    }

    /// Encrypt `m` under the pool's Paillier key using a precomputed nonce.
    pub fn encrypt(&mut self, m: &BigUint) -> Result<Ciphertext> {
        if m >= self.pk.n() {
            return Err(crate::error::CryptoError::PlaintextOutOfRange);
        }
        let nonce = self.next_paillier_nonce();
        Ok(self.pk.encrypt_with_nonce(m, &nonce))
    }

    /// Encrypt a small unsigned integer (convenience for scores and flags).
    pub fn encrypt_u64(&mut self, m: u64) -> Result<Ciphertext> {
        self.encrypt(&BigUint::from(m))
    }

    /// Re-randomize a Paillier ciphertext using a precomputed nonce.
    pub fn rerandomize(&mut self, a: &Ciphertext) -> Ciphertext {
        let nonce = self.next_paillier_nonce();
        self.pk.rerandomize_with_nonce(a, &nonce)
    }

    /// Encrypt `m ∈ Z_{N²}` under the outer DJ layer using a precomputed nonce.
    pub fn encrypt_dj(&mut self, m: &BigUint) -> Result<LayeredCiphertext> {
        let dj = self.dj.clone().expect("DJ encryption on a Paillier-only pool");
        if m >= dj.n_s() {
            return Err(crate::error::CryptoError::PlaintextOutOfRange);
        }
        let nonce = self.next_dj_nonce();
        Ok(dj.encrypt_with_nonce(m, &nonce))
    }

    /// Encrypt a small constant under the outer DJ layer.
    pub fn encrypt_dj_u64(&mut self, m: u64) -> Result<LayeredCiphertext> {
        self.encrypt_dj(&BigUint::from(m))
    }

    /// Encrypt an inner Paillier ciphertext under the outer DJ layer.
    pub fn encrypt_dj_ciphertext(&mut self, inner: &Ciphertext) -> Result<LayeredCiphertext> {
        self.encrypt_dj(inner.as_biguint())
    }

    /// Re-randomize a layered ciphertext using a precomputed nonce.
    pub fn rerandomize_dj(&mut self, a: &LayeredCiphertext) -> LayeredCiphertext {
        let dj = self.dj.clone().expect("DJ re-randomization on a Paillier-only pool");
        let nonce = self.next_dj_nonce();
        dj.rerandomize_with_nonce(a, &nonce)
    }

    /// The Paillier public key this pool serves.
    pub fn public_key(&self) -> &PaillierPublicKey {
        &self.pk
    }

    /// The DJ public key this pool serves, if any.
    pub fn dj_public_key(&self) -> Option<&DjPublicKey> {
        self.dj.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MasterKeys;
    use crate::paillier::MIN_MODULUS_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Concurrency audit: the shared key material must be freely shareable across the
    /// S2 worker threads (`Send + Sync`; they are `Arc`-backed), while the stateful
    /// per-session values (pools own a deterministic RNG and nonce queues) only need to
    /// *move* into a session's engine (`Send`).  Compile-time assertions — a regression
    /// here breaks the multi-session server's thread model.
    #[test]
    fn shared_types_are_send_sync_and_pools_are_send() {
        fn send_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_sync::<crate::paillier::PaillierPublicKey>();
        send_sync::<crate::paillier::PaillierSecretKey>();
        send_sync::<crate::damgard_jurik::DjPublicKey>();
        send_sync::<crate::damgard_jurik::DjSecretKey>();
        send_sync::<crate::keys::S1Keys>();
        send_sync::<crate::keys::S2Keys>();
        send_sync::<crate::keys::MasterKeys>();
        send_sync::<num_bigint::MontgomeryContext>();
        send::<RandomnessPool>();
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        assert_eq!(shard_seed(42, 7), shard_seed(42, 7));
        // Distinct sessions (and distinct bases) get decorrelated streams.
        let shards: Vec<u64> = (0..64).map(|s| shard_seed(42, s)).collect();
        let mut dedup = shards.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), shards.len(), "shard seeds must not collide");
        assert_ne!(shard_seed(42, 1), shard_seed(43, 1));
        // Adjacent-session shards differ even when base seeds differ only in low bits.
        assert_ne!(shard_seed(42, 1), shard_seed(43, 0));
    }

    fn setup() -> (MasterKeys, RandomnessPool) {
        let mut rng = StdRng::seed_from_u64(1717);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let dj = crate::damgard_jurik::DjPublicKey::from_paillier(&master.paillier_public);
        let pool = RandomnessPool::with_dj(&master.paillier_public, &dj, 99);
        (master, pool)
    }

    #[test]
    fn pooled_encrypt_round_trips() {
        let (master, mut pool) = setup();
        for m in [0u64, 1, 424242, u32::MAX as u64] {
            let c = pool.encrypt_u64(m).unwrap();
            assert_eq!(master.paillier_secret.decrypt_u64(&c).unwrap(), m);
        }
    }

    #[test]
    fn pooled_rerandomize_preserves_plaintext() {
        let (master, mut pool) = setup();
        let c = pool.encrypt_u64(77).unwrap();
        let c2 = pool.rerandomize(&c);
        assert_ne!(c, c2);
        assert_eq!(master.paillier_secret.decrypt_u64(&c2).unwrap(), 77);
    }

    #[test]
    fn pooled_dj_round_trips() {
        let (master, mut pool) = setup();
        let dj_sk = crate::damgard_jurik::DjSecretKey::from_paillier(&master.paillier_secret);
        let inner = pool.encrypt_u64(5).unwrap();
        let layered = pool.encrypt_dj_ciphertext(&inner).unwrap();
        assert_eq!(dj_sk.decrypt_both_layers(&layered).unwrap(), BigUint::from(5u64));
        let re = pool.rerandomize_dj(&layered);
        assert_ne!(layered, re);
        assert_eq!(dj_sk.decrypt_both_layers(&re).unwrap(), BigUint::from(5u64));
    }

    #[test]
    fn explicit_refill_is_consumed_before_new_batches() {
        let (_master, mut pool) = setup();
        pool.set_batch(4);
        pool.refill(3, 2);
        assert_eq!(pool.ready(), (3, 2));
        let _ = pool.encrypt_u64(1).unwrap();
        assert_eq!(pool.ready(), (2, 2));
        let _ = pool.next_dj_nonce();
        let _ = pool.next_dj_nonce();
        assert_eq!(pool.ready().1, 0);
        // Next DJ draw triggers a batch refill.
        let _ = pool.next_dj_nonce();
        assert_eq!(pool.ready().1, pool.batch() - 1);
    }

    #[test]
    fn same_seed_same_nonce_stream() {
        let (master, _pool) = setup();
        let mut a = RandomnessPool::new(&master.paillier_public, 7);
        let mut b = RandomnessPool::new(&master.paillier_public, 7);
        for _ in 0..3 {
            assert_eq!(a.next_paillier_nonce(), b.next_paillier_nonce());
        }
        let mut c = RandomnessPool::new(&master.paillier_public, 8);
        assert_ne!(a.next_paillier_nonce(), c.next_paillier_nonce());
    }

    #[test]
    fn prefill_parallel_matches_serial_refill_byte_for_byte() {
        let (master, _pool) = setup();
        let dj = crate::damgard_jurik::DjPublicKey::from_paillier(&master.paillier_public);
        for workers in [1usize, 2, 4, 7] {
            let mut serial = RandomnessPool::with_dj(&master.paillier_public, &dj, 1234);
            let mut parallel = RandomnessPool::with_dj(&master.paillier_public, &dj, 1234);
            serial.refill(9, 5);
            parallel.prefill_parallel(9, 5, workers);
            assert_eq!(serial.ready(), parallel.ready());
            for _ in 0..9 {
                assert_eq!(
                    serial.next_paillier_nonce(),
                    parallel.next_paillier_nonce(),
                    "workers = {workers}"
                );
            }
            for _ in 0..5 {
                assert_eq!(serial.next_dj_nonce(), parallel.next_dj_nonce());
            }
        }
    }

    #[test]
    fn overfilling_never_changes_the_nonce_stream() {
        // The RNG is consumed only by exponent draws (one per nonce), so prefetching
        // any amount ahead of time must leave the stream position-deterministic.
        let (master, _pool) = setup();
        let mut lazy = RandomnessPool::new(&master.paillier_public, 5);
        let mut eager = RandomnessPool::new(&master.paillier_public, 5);
        eager.refill(40, 0);
        lazy.set_batch(3);
        for _ in 0..40 {
            assert_eq!(lazy.next_paillier_nonce(), eager.next_paillier_nonce());
        }
    }

    #[test]
    fn cross_kind_prefill_never_changes_either_stream() {
        // Regression: with one shared RNG, an upper-bound prefill (all Paillier draws,
        // then all DJ draws) assigned RNG outputs to nonce kinds differently than lazy
        // interleaved consumption, shifting both streams.  Per-kind RNG streams make
        // nonce k of each kind a function of (seed, kind, k) alone.
        let (master, _pool) = setup();
        let dj = crate::damgard_jurik::DjPublicKey::from_paillier(&master.paillier_public);
        let mut lazy = RandomnessPool::with_dj(&master.paillier_public, &dj, 21);
        lazy.set_batch(2);
        let mut eager = RandomnessPool::with_dj(&master.paillier_public, &dj, 21);
        eager.prefill_parallel(10, 10, 4);
        for _ in 0..10 {
            // Lazy draws interleave the kinds (refilling 2-at-a-time on dry queues);
            // eager precomputed everything up front.  Streams must still match.
            assert_eq!(lazy.next_paillier_nonce(), eager.next_paillier_nonce());
            assert_eq!(lazy.next_dj_nonce(), eager.next_dj_nonce());
        }
    }

    #[test]
    fn pooled_encrypt_rejects_out_of_range() {
        let (master, mut pool) = setup();
        let too_big = master.paillier_public.n().clone();
        assert!(pool.encrypt(&too_big).is_err());
    }
}
