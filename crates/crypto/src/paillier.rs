//! The Paillier cryptosystem (Paillier, EUROCRYPT'99) — the additively homomorphic
//! encryption scheme every SecTopK score is encrypted under (§3.3 of the paper).
//!
//! Properties used by the protocols:
//!
//! * **Addition**:              `Enc(x) · Enc(y) = Enc(x + y)`
//! * **Scalar multiplication**: `Enc(x)^a       = Enc(a · x)`
//! * Semantic security (ciphertexts are re-randomizable), which Lemma 5.1 relies on.
//!
//! The implementation uses the standard simplification `g = N + 1`, so encryption is
//! `Enc(m) = (1 + mN) · r^N mod N²` and decryption is `L(c^λ mod N²) · μ mod N` with
//! `λ = lcm(p−1, q−1)` and `μ = λ⁻¹ mod N`.

use num_bigint::BigUint;
use num_integer::Integer;
use num_traits::{One, Zero};
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::bigint::{l_function, mod_inverse, random_invertible, to_signed};
use crate::error::{CryptoError, Result};
use crate::prime::generate_safe_factor_pair;

/// Minimum supported modulus size.  Far below any secure size — it exists so that unit
/// tests and the worked Fig. 3 example can run instantly — but large enough that the
/// score arithmetic of the protocols never wraps.
pub const MIN_MODULUS_BITS: usize = 128;

/// Default modulus size used by the library constructors when the caller does not choose
/// one (matches the "256-bit N" configuration the paper quotes for the EHL+ false-positive
/// analysis; benches print the size they use).
pub const DEFAULT_MODULUS_BITS: usize = 256;

/// Public parameters of a Paillier key pair: the modulus `N`, `N²`, and `g = N + 1`.
///
/// Cheap to clone (the big integers live behind an [`Arc`]) because every ciphertext
/// operation needs access to `N²`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct PaillierPublicKey {
    inner: Arc<PublicInner>,
}

#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
struct PublicInner {
    n: BigUint,
    n_squared: BigUint,
    /// Bit length requested at key generation time.
    modulus_bits: usize,
}

/// The Paillier secret key: `λ = lcm(p−1, q−1)` and `μ = λ⁻¹ mod N`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PaillierSecretKey {
    lambda: BigUint,
    mu: BigUint,
    public: PaillierPublicKey,
}

/// A Paillier ciphertext, an element of `Z_{N²}^*`.
///
/// Ciphertexts deliberately do **not** implement `PartialEq` on the underlying plaintext
/// — two encryptions of the same message are different group elements; the paper's `∼`
/// relation (equal plaintexts) is only decidable with the secret key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ciphertext(pub(crate) BigUint);

impl Ciphertext {
    /// Raw group element backing this ciphertext.
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Construct a ciphertext from a raw group element (used by the serialization layer
    /// and the Damgård–Jurik layered encryption).
    pub fn from_biguint(raw: BigUint) -> Self {
        Ciphertext(raw)
    }

    /// Serialized length in bytes; used by the bandwidth accounting of the two-cloud
    /// channel (§11.2.5).
    pub fn byte_len(&self) -> usize {
        (self.0.bits() as usize).div_ceil(8)
    }

    /// The canonical wire form: the group element as a big-endian byte string.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Parse the canonical big-endian wire form produced by [`Self::to_bytes_be`].
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        Ciphertext(BigUint::from_bytes_be(bytes))
    }
}

// Ciphertexts cross the inter-cloud wire on every protocol round, so they serialize as
// raw big-endian byte strings (not decimal text): the measured message sizes then match
// the `byte_len` accounting the paper's Table 3 is computed from.
impl Serialize for Ciphertext {
    fn to_value(&self) -> serde::Value {
        serde::Value::Bytes(self.to_bytes_be())
    }
}

impl Deserialize for Ciphertext {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        crate::encoding::bytes_from_value(v, "Ciphertext").map(|b| Ciphertext::from_bytes_be(&b))
    }
}

impl PaillierPublicKey {
    /// The modulus `N`.
    pub fn n(&self) -> &BigUint {
        &self.inner.n
    }

    /// `N²`, the ciphertext-space modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.inner.n_squared
    }

    /// Bit length of `N` requested at key generation.
    pub fn modulus_bits(&self) -> usize {
        self.inner.modulus_bits
    }

    /// The sentinel value `Z = N − 1 ≡ −1 (mod N)` that SecDedup assigns to duplicated
    /// objects' worst scores (§8.2.3); in the signed interpretation it sorts below every
    /// genuine score.
    pub fn sentinel_z(&self) -> BigUint {
        self.n() - BigUint::one()
    }

    /// Encrypt `m ∈ Z_N` with fresh randomness.
    pub fn encrypt<R: RngCore + CryptoRng>(&self, m: &BigUint, rng: &mut R) -> Result<Ciphertext> {
        if m >= self.n() {
            return Err(CryptoError::PlaintextOutOfRange);
        }
        let r = random_invertible(rng, self.n());
        Ok(self.encrypt_with_randomness(m, &r))
    }

    /// Encrypt a small unsigned integer (convenience for scores).
    pub fn encrypt_u64<R: RngCore + CryptoRng>(&self, m: u64, rng: &mut R) -> Result<Ciphertext> {
        self.encrypt(&BigUint::from(m), rng)
    }

    /// Encrypt a signed integer using the symmetric representation.
    pub fn encrypt_i64<R: RngCore + CryptoRng>(&self, m: i64, rng: &mut R) -> Result<Ciphertext> {
        let unsigned = crate::bigint::from_signed(&num_bigint::BigInt::from(m), self.n());
        self.encrypt(&unsigned, rng)
    }

    /// Deterministic encryption with caller-provided randomness `r ∈ Z_N^*`
    /// (used by the tests that check the homomorphic identities exactly).
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        let n = self.n();
        let n2 = self.n_squared();
        // g^m = (1 + N)^m = 1 + mN (mod N^2)
        let g_m = (BigUint::one() + m * n) % n2;
        let r_n = r.modpow(n, n2);
        Ciphertext((g_m * r_n) % n2)
    }

    /// The "trivial" encryption of zero with randomness 1.  Useful as the identity for
    /// homomorphic accumulation (`Enc(Σ xᵢ) = Π Enc(xᵢ)`).
    pub fn one_ciphertext(&self) -> Ciphertext {
        Ciphertext(BigUint::one())
    }

    /// Homomorphic addition: `Enc(a) ⊞ Enc(b) = Enc(a + b)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext((&a.0 * &b.0) % self.n_squared())
    }

    /// Homomorphic addition of a plaintext constant: `Enc(a) ⊞ k = Enc(a + k)`.
    pub fn add_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        let g_k = (BigUint::one() + (k % self.n()) * self.n()) % self.n_squared();
        Ciphertext((&a.0 * g_k) % self.n_squared())
    }

    /// Homomorphic subtraction: `Enc(a) ⊟ Enc(b) = Enc(a − b)`.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let b_inv = self.negate(b);
        self.add(a, &b_inv)
    }

    /// Homomorphic negation: `Enc(a) ↦ Enc(−a)` (inverse in the ciphertext group).
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let inv = mod_inverse(&a.0, self.n_squared())
            .expect("ciphertext is invertible modulo N² for honestly generated keys");
        Ciphertext(inv)
    }

    /// Scalar multiplication: `Enc(a)^k = Enc(k · a)`.
    pub fn mul_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(a.0.modpow(k, self.n_squared()))
    }

    /// Re-randomize a ciphertext: multiply by a fresh encryption of zero.  The output
    /// decrypts to the same plaintext but is computationally unlinkable to the input,
    /// which is what the sub-protocols rely on when S2 returns items to S1.
    pub fn rerandomize<R: RngCore + CryptoRng>(&self, a: &Ciphertext, rng: &mut R) -> Ciphertext {
        let r = random_invertible(rng, self.n());
        let r_n = r.modpow(self.n(), self.n_squared());
        Ciphertext((&a.0 * r_n) % self.n_squared())
    }

    /// Check that a ciphertext is an element of `Z_{N²}` (cheap sanity check used when
    /// deserializing messages received from the other cloud).
    pub fn validate(&self, a: &Ciphertext) -> Result<()> {
        if a.0.is_zero() || a.0 >= *self.n_squared() {
            Err(CryptoError::CiphertextOutOfRange)
        } else {
            Ok(())
        }
    }
}

impl PaillierSecretKey {
    /// The matching public key.
    pub fn public_key(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypt a ciphertext to an element of `Z_N`.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint> {
        self.public.validate(c)?;
        let n = self.public.n();
        let n2 = self.public.n_squared();
        let u = c.0.modpow(&self.lambda, n2);
        let l = l_function(&u, n);
        Ok((l * &self.mu) % n)
    }

    /// Decrypt into the symmetric (signed) representation used for score comparisons.
    pub fn decrypt_signed(&self, c: &Ciphertext) -> Result<num_bigint::BigInt> {
        Ok(to_signed(&self.decrypt(c)?, self.public.n()))
    }

    /// Decrypt a ciphertext known to hold a small value, as a `u64`.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> Result<u64> {
        let m = self.decrypt(c)?;
        let digits = m.to_u64_digits();
        match digits.len() {
            0 => Ok(0),
            1 => Ok(digits[0]),
            _ => Err(CryptoError::DecryptionFailed),
        }
    }

    /// Returns `true` iff the ciphertext decrypts to zero — the primitive S2 applies to
    /// the blinded EHL differences it receives from S1 in SecWorst / SecBest / SecDedup.
    pub fn is_zero(&self, c: &Ciphertext) -> Result<bool> {
        Ok(self.decrypt(c)?.is_zero())
    }

    /// Crate-internal: expose λ so the Damgård–Jurik layer (same trust domain — both keys
    /// are held by the crypto cloud S2) can decrypt without regenerating key material.
    pub(crate) fn lambda_for_dj(&self) -> &BigUint {
        &self.lambda
    }
}

/// Generate a Paillier key pair with a modulus of (about) `modulus_bits` bits.
pub fn generate_keypair<R: RngCore + CryptoRng>(
    modulus_bits: usize,
    rng: &mut R,
) -> Result<(PaillierPublicKey, PaillierSecretKey)> {
    if modulus_bits < MIN_MODULUS_BITS {
        return Err(CryptoError::KeySizeTooSmall {
            requested: modulus_bits,
            minimum: MIN_MODULUS_BITS,
        });
    }
    let prime_bits = (modulus_bits / 2) as u64;
    let (p, q) = generate_safe_factor_pair(prime_bits, rng)?;
    let n = &p * &q;
    let n_squared = &n * &n;
    let p_minus = &p - BigUint::one();
    let q_minus = &q - BigUint::one();
    let lambda = p_minus.lcm(&q_minus);
    let mu = mod_inverse(&lambda, &n)?;

    let public = PaillierPublicKey { inner: Arc::new(PublicInner { n, n_squared, modulus_bits }) };
    let secret = PaillierSecretKey { lambda, mu, public: public.clone() };
    Ok((public, secret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_bigint::BigInt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PaillierPublicKey, PaillierSecretKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let (pk, sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        (pk, sk, rng)
    }

    #[test]
    fn round_trip_small_values() {
        let (pk, sk, mut rng) = setup();
        for m in [0u64, 1, 2, 17, 1000, u32::MAX as u64, u64::MAX] {
            let c = pk.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(sk.decrypt_u64(&c).unwrap(), m, "m = {m}");
        }
    }

    #[test]
    fn round_trip_random_group_elements() {
        let (pk, sk, mut rng) = setup();
        for _ in 0..20 {
            let m = crate::bigint::random_below(&mut rng, pk.n());
            let c = pk.encrypt(&m, &mut rng).unwrap();
            assert_eq!(sk.decrypt(&c).unwrap(), m);
        }
    }

    #[test]
    fn rejects_out_of_range_plaintext() {
        let (pk, _sk, mut rng) = setup();
        let too_big = pk.n().clone();
        assert_eq!(pk.encrypt(&too_big, &mut rng), Err(CryptoError::PlaintextOutOfRange));
    }

    #[test]
    fn rejects_too_small_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(generate_keypair(64, &mut rng), Err(CryptoError::KeySizeTooSmall { .. })));
    }

    #[test]
    fn homomorphic_addition() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(1234, &mut rng).unwrap();
        let b = pk.encrypt_u64(8766, &mut rng).unwrap();
        let sum = pk.add(&a, &b);
        assert_eq!(sk.decrypt_u64(&sum).unwrap(), 10_000);
    }

    #[test]
    fn homomorphic_addition_wraps_modulo_n() {
        let (pk, sk, mut rng) = setup();
        let almost_n = pk.n() - BigUint::from(3u32);
        let a = pk.encrypt(&almost_n, &mut rng).unwrap();
        let b = pk.encrypt_u64(5, &mut rng).unwrap();
        let sum = pk.add(&a, &b);
        assert_eq!(sk.decrypt_u64(&sum).unwrap(), 2);
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(111, &mut rng).unwrap();
        let scaled = pk.mul_plain(&a, &BigUint::from(9u32));
        assert_eq!(sk.decrypt_u64(&scaled).unwrap(), 999);
    }

    #[test]
    fn homomorphic_subtraction_and_negation() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(50, &mut rng).unwrap();
        let b = pk.encrypt_u64(80, &mut rng).unwrap();
        let diff = pk.sub(&a, &b);
        assert_eq!(sk.decrypt_signed(&diff).unwrap(), BigInt::from(-30));
        let neg = pk.negate(&a);
        assert_eq!(sk.decrypt_signed(&neg).unwrap(), BigInt::from(-50));
    }

    #[test]
    fn add_plain_matches_add() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(7, &mut rng).unwrap();
        let c = pk.add_plain(&a, &BigUint::from(35u32));
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 42);
    }

    #[test]
    fn rerandomization_preserves_plaintext_and_changes_ciphertext() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(99, &mut rng).unwrap();
        let b = pk.rerandomize(&a, &mut rng);
        assert_ne!(a, b, "re-randomized ciphertext must differ");
        assert_eq!(sk.decrypt_u64(&b).unwrap(), 99);
    }

    #[test]
    fn encryption_is_probabilistic() {
        let (pk, _sk, mut rng) = setup();
        let a = pk.encrypt_u64(5, &mut rng).unwrap();
        let b = pk.encrypt_u64(5, &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn signed_encryption_round_trip() {
        let (pk, sk, mut rng) = setup();
        for v in [-1_000_000i64, -1, 0, 1, 123_456_789] {
            let c = pk.encrypt_i64(v, &mut rng).unwrap();
            assert_eq!(sk.decrypt_signed(&c).unwrap(), BigInt::from(v));
        }
    }

    #[test]
    fn sentinel_z_is_minus_one() {
        let (pk, sk, mut rng) = setup();
        let z = pk.sentinel_z();
        let c = pk.encrypt(&z, &mut rng).unwrap();
        assert_eq!(sk.decrypt_signed(&c).unwrap(), BigInt::from(-1));
    }

    #[test]
    fn is_zero_detects_equality_of_plaintexts() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(77, &mut rng).unwrap();
        let b = pk.encrypt_u64(77, &mut rng).unwrap();
        let diff = pk.sub(&a, &b);
        assert!(sk.is_zero(&diff).unwrap());
        let c = pk.encrypt_u64(78, &mut rng).unwrap();
        assert!(!sk.is_zero(&pk.sub(&a, &c)).unwrap());
    }

    #[test]
    fn validate_rejects_garbage() {
        let (pk, _sk, _rng) = setup();
        assert!(pk.validate(&Ciphertext(BigUint::zero())).is_err());
        assert!(pk.validate(&Ciphertext(pk.n_squared().clone())).is_err());
        assert!(pk.validate(&Ciphertext(BigUint::one())).is_ok());
    }

    #[test]
    fn accumulating_with_one_ciphertext_identity() {
        let (pk, sk, mut rng) = setup();
        let mut acc = pk.one_ciphertext();
        let mut expected = 0u64;
        for v in [3u64, 5, 11, 20] {
            let c = pk.encrypt_u64(v, &mut rng).unwrap();
            acc = pk.add(&acc, &c);
            expected += v;
        }
        assert_eq!(sk.decrypt_u64(&acc).unwrap(), expected);
    }

    #[test]
    fn serde_round_trip() {
        let (pk, sk, mut rng) = setup();
        let c = pk.encrypt_u64(123, &mut rng).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let c2: Ciphertext = serde_json::from_str(&json).unwrap();
        assert_eq!(sk.decrypt_u64(&c2).unwrap(), 123);

        let pk_json = serde_json::to_string(&pk).unwrap();
        let pk2: PaillierPublicKey = serde_json::from_str(&pk_json).unwrap();
        assert_eq!(pk2.n(), pk.n());
    }
}
