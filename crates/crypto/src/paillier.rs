//! The Paillier cryptosystem (Paillier, EUROCRYPT'99) — the additively homomorphic
//! encryption scheme every SecTopK score is encrypted under (§3.3 of the paper).
//!
//! Properties used by the protocols:
//!
//! * **Addition**:              `Enc(x) · Enc(y) = Enc(x + y)`
//! * **Scalar multiplication**: `Enc(x)^a       = Enc(a · x)`
//! * Semantic security (ciphertexts are re-randomizable), which Lemma 5.1 relies on.
//!
//! The implementation uses the standard simplification `g = N + 1`, so encryption is
//! `Enc(m) = (1 + mN) · r^N mod N²` and decryption is `L(c^λ mod N²) · μ mod N` with
//! `λ = lcm(p−1, q−1)` and `μ = λ⁻¹ mod N`.

use num_bigint::{BigUint, FixedBaseTable, MontgomeryContext};
use num_integer::Integer;
use num_traits::{One, Zero};
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::bigint::{l_function, mod_inverse, random_invertible, to_signed};
use crate::error::{CryptoError, Result};
use crate::prime::generate_safe_factor_pair;

/// Minimum supported modulus size.  Far below any secure size — it exists so that unit
/// tests and the worked Fig. 3 example can run instantly — but large enough that the
/// score arithmetic of the protocols never wraps.
pub const MIN_MODULUS_BITS: usize = 128;

/// Default modulus size used by the library constructors when the caller does not choose
/// one (matches the "256-bit N" configuration the paper quotes for the EHL+ false-positive
/// analysis; benches print the size they use).
pub const DEFAULT_MODULUS_BITS: usize = 256;

/// Public parameters of a Paillier key pair: the modulus `N`, `N²`, and `g = N + 1`.
///
/// Cheap to clone (the big integers live behind an [`Arc`]) because every ciphertext
/// operation needs access to `N²`.  The shared [`Arc`] also owns the precomputed
/// [`MontgomeryContext`] for `N²`, so every `modpow`-shaped operation (encrypt,
/// re-randomize, scalar multiplication) reuses the same CIOS parameters instead of
/// re-deriving them per call; only serialization and equality look at the raw moduli.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierPublicKey {
    inner: Arc<PublicInner>,
}

/// The fixed generator `h` of the precomputed-nonce subgroup: nonces are sampled as
/// `H^a` for `H = h^N mod N²` and a random exponent `a < N` (the precomputation
/// variant of Damgård–Jurik '01 §4.2).  Any small constant coprime to `N` works — `N`
/// is a product of large odd primes, so 2 always qualifies — and a *fixed* `h` is the
/// whole point: it makes `H` a per-key constant whose power table can be built once.
pub const NONCE_BASE_H: u64 = 2;

#[derive(Debug)]
struct PublicInner {
    n: BigUint,
    n_squared: BigUint,
    /// Montgomery parameters for the ciphertext-space modulus `N²`.  `N` is a product
    /// of odd primes, so `N²` is always odd and the context always exists.
    ctx_n2: MontgomeryContext,
    /// `H = h^N mod N²`, the fixed base of the precomputed-nonce subgroup.
    nonce_base: BigUint,
    /// Fixed-base power table of `H` covering exponents up to `|N|` bits: evaluating
    /// `H^a` costs one Montgomery multiplication per nonzero 4-bit window of `a`, no
    /// squarings (~5× fewer operations than a fresh windowed `modpow`).
    nonce_table: FixedBaseTable,
    /// Bit length requested at key generation time.
    modulus_bits: usize,
}

impl PublicInner {
    /// Derive every cached quantity from the modulus.
    fn build(n: BigUint, modulus_bits: usize) -> Self {
        let n_squared = &n * &n;
        let ctx_n2 =
            MontgomeryContext::new(&n_squared).expect("N² is odd for any product of odd primes");
        let nonce_base = ctx_n2.modpow(&BigUint::from(NONCE_BASE_H), &n);
        let nonce_table = ctx_n2.precompute_fixed_base(&nonce_base, n.bits());
        PublicInner { n, n_squared, ctx_n2, nonce_base, nonce_table, modulus_bits }
    }
}

impl PartialEq for PublicInner {
    fn eq(&self, other: &Self) -> bool {
        // Everything else is derived from (n, modulus_bits).
        self.n == other.n && self.modulus_bits == other.modulus_bits
    }
}

impl Eq for PublicInner {}

// The Montgomery context is a pure function of `N`; only the modulus and the requested
// bit length go over the wire, and deserialization rebuilds the caches.
impl Serialize for PaillierPublicKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("n".to_string(), self.inner.n.to_value()),
            ("modulus_bits".to_string(), serde::Value::U64(self.inner.modulus_bits as u64)),
        ])
    }
}

impl Deserialize for PaillierPublicKey {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let n = BigUint::from_value(v.get("n").ok_or_else(|| serde::Error::missing_field("n"))?)?;
        let modulus_bits = usize::from_value(
            v.get("modulus_bits").ok_or_else(|| serde::Error::missing_field("modulus_bits"))?,
        )?;
        if n <= BigUint::one() || n.is_even() {
            return Err(serde::Error::custom("Paillier modulus must be odd and greater than 1"));
        }
        Ok(PaillierPublicKey { inner: Arc::new(PublicInner::build(n, modulus_bits)) })
    }
}

/// The Paillier secret key: `λ = lcm(p−1, q−1)`, `μ = λ⁻¹ mod N`, and the CRT
/// precomputation over the factors `p`, `q`.
///
/// Decryption runs in CRT form — two half-width exponentiations `c^{p−1} mod p²` and
/// `c^{q−1} mod q²` recombined with Garner's formula — which is ~4× less limb work
/// than the textbook `c^λ mod N²` path (half-size moduli *and* half-size exponents).
/// The textbook path survives as [`Self::decrypt_via_lambda`], the reference the CRT
/// path is differentially tested against.  The CRT parameters live behind their own
/// [`Arc`] so cloning the key (the S2 engine clones per request batch) stays cheap.
#[derive(Clone)]
pub struct PaillierSecretKey {
    lambda: BigUint,
    mu: BigUint,
    crt: Arc<PaillierCrt>,
    public: PaillierPublicKey,
}

impl std::fmt::Debug for PaillierSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; the public half identifies the key for debugging.
        f.debug_struct("PaillierSecretKey").field("public", &self.public).finish_non_exhaustive()
    }
}

/// CRT decryption parameters derived from the key's prime factorisation.  No `Debug`:
/// the fields are the factors themselves and must never be formatted.
struct PaillierCrt {
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    /// Montgomery parameters for the half-width ciphertext-space moduli.
    ctx_p2: MontgomeryContext,
    ctx_q2: MontgomeryContext,
    /// CRT exponents `p − 1` and `q − 1`.
    p_minus_1: BigUint,
    q_minus_1: BigUint,
    /// `hp = L_p((1+N)^{p−1} mod p²)⁻¹ mod p = ((p−1)·q)⁻¹ mod p`, and the `q` twin.
    hp: BigUint,
    hq: BigUint,
    /// Garner coefficient `p⁻¹ mod q`.
    p_inv_mod_q: BigUint,
}

impl PaillierCrt {
    fn build(p: BigUint, q: BigUint, n: &BigUint) -> Result<Self> {
        // A mismatched (p, q, N) triple — e.g. a corrupted serialized key — would make
        // every decryption silently wrong, and a degenerate factor would panic the
        // Montgomery setup below; reject both outright.
        if p <= BigUint::one() || q <= BigUint::one() || &(&p * &q) != n {
            return Err(CryptoError::DecryptionFailed);
        }
        let p_squared = &p * &p;
        let q_squared = &q * &q;
        let ctx_p2 = MontgomeryContext::new(&p_squared).expect("p² is odd for an odd prime p");
        let ctx_q2 = MontgomeryContext::new(&q_squared).expect("q² is odd for an odd prime q");
        let p_minus_1 = &p - BigUint::one();
        let q_minus_1 = &q - BigUint::one();
        // (1+N)^{p−1} mod p² = 1 + (p−1)·N mod p² (binomial; N² ≡ 0 mod p²), so
        // L_p of it is (p−1)·N/p = (p−1)·q mod p.
        let hp = mod_inverse(&((&p_minus_1 * &q) % &p), &p)?;
        let hq = mod_inverse(&((&q_minus_1 * &p) % &q), &q)?;
        let p_inv_mod_q = mod_inverse(&p, &q)?;
        Ok(PaillierCrt {
            p,
            q,
            p_squared,
            q_squared,
            ctx_p2,
            ctx_q2,
            p_minus_1,
            q_minus_1,
            hp,
            hq,
            p_inv_mod_q,
        })
    }
}

// The secret key serializes its defining quantities (λ, μ, p, q) plus the public key;
// the CRT caches are rebuilt on deserialization.
impl Serialize for PaillierSecretKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("lambda".to_string(), self.lambda.to_value()),
            ("mu".to_string(), self.mu.to_value()),
            ("p".to_string(), self.crt.p.to_value()),
            ("q".to_string(), self.crt.q.to_value()),
            ("public".to_string(), self.public.to_value()),
        ])
    }
}

impl Deserialize for PaillierSecretKey {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| v.get(name).ok_or_else(|| serde::Error::missing_field(name));
        let lambda = BigUint::from_value(field("lambda")?)?;
        let mu = BigUint::from_value(field("mu")?)?;
        let p = BigUint::from_value(field("p")?)?;
        let q = BigUint::from_value(field("q")?)?;
        let public = PaillierPublicKey::from_value(field("public")?)?;
        let crt = PaillierCrt::build(p, q, public.n())
            .map_err(|e| serde::Error::custom(format!("invalid Paillier factors: {e:?}")))?;
        Ok(PaillierSecretKey { lambda, mu, crt: Arc::new(crt), public })
    }
}

/// A Paillier ciphertext, an element of `Z_{N²}^*`.
///
/// Ciphertexts deliberately do **not** implement `PartialEq` on the underlying plaintext
/// — two encryptions of the same message are different group elements; the paper's `∼`
/// relation (equal plaintexts) is only decidable with the secret key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ciphertext(pub(crate) BigUint);

impl Ciphertext {
    /// Raw group element backing this ciphertext.
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Construct a ciphertext from a raw group element (used by the serialization layer
    /// and the Damgård–Jurik layered encryption).
    pub fn from_biguint(raw: BigUint) -> Self {
        Ciphertext(raw)
    }

    /// Serialized length in bytes; used by the bandwidth accounting of the two-cloud
    /// channel (§11.2.5).
    pub fn byte_len(&self) -> usize {
        (self.0.bits() as usize).div_ceil(8)
    }

    /// The canonical wire form: the group element as a big-endian byte string.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Parse the canonical big-endian wire form produced by [`Self::to_bytes_be`].
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        Ciphertext(BigUint::from_bytes_be(bytes))
    }
}

// Ciphertexts cross the inter-cloud wire on every protocol round, so they serialize as
// raw big-endian byte strings (not decimal text): the measured message sizes then match
// the `byte_len` accounting the paper's Table 3 is computed from.
impl Serialize for Ciphertext {
    fn to_value(&self) -> serde::Value {
        serde::Value::Bytes(self.to_bytes_be())
    }
}

impl Deserialize for Ciphertext {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        crate::encoding::bytes_from_value(v, "Ciphertext").map(|b| Ciphertext::from_bytes_be(&b))
    }
}

impl PaillierPublicKey {
    /// The modulus `N`.
    pub fn n(&self) -> &BigUint {
        &self.inner.n
    }

    /// `N²`, the ciphertext-space modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.inner.n_squared
    }

    /// Bit length of `N` requested at key generation.
    pub fn modulus_bits(&self) -> usize {
        self.inner.modulus_bits
    }

    /// The sentinel value `Z = N − 1 ≡ −1 (mod N)` that SecDedup assigns to duplicated
    /// objects' worst scores (§8.2.3); in the signed interpretation it sorts below every
    /// genuine score.
    pub fn sentinel_z(&self) -> BigUint {
        self.n() - BigUint::one()
    }

    /// Encrypt `m ∈ Z_N` with fresh randomness.
    pub fn encrypt<R: RngCore + CryptoRng>(&self, m: &BigUint, rng: &mut R) -> Result<Ciphertext> {
        if m >= self.n() {
            return Err(CryptoError::PlaintextOutOfRange);
        }
        let r = random_invertible(rng, self.n());
        Ok(self.encrypt_with_randomness(m, &r))
    }

    /// Encrypt a small unsigned integer (convenience for scores).
    pub fn encrypt_u64<R: RngCore + CryptoRng>(&self, m: u64, rng: &mut R) -> Result<Ciphertext> {
        self.encrypt(&BigUint::from(m), rng)
    }

    /// Encrypt a signed integer using the symmetric representation.
    pub fn encrypt_i64<R: RngCore + CryptoRng>(&self, m: i64, rng: &mut R) -> Result<Ciphertext> {
        let unsigned = crate::bigint::from_signed(&num_bigint::BigInt::from(m), self.n());
        self.encrypt(&unsigned, rng)
    }

    /// Deterministic encryption with caller-provided randomness `r ∈ Z_N^*`
    /// (used by the tests that check the homomorphic identities exactly).
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        self.encrypt_with_nonce(m, &self.nonce_from_r(r))
    }

    /// The encryption nonce `r^N mod N²` for a given `r ∈ Z_N^*` — the expensive half
    /// of an encryption, precomputable ahead of time (see
    /// [`crate::pool::RandomnessPool`]).
    pub fn nonce_from_r(&self, r: &BigUint) -> BigUint {
        self.inner.ctx_n2.modpow(r, self.n())
    }

    /// `H = h^N mod N²` for the fixed constant `h =` [`NONCE_BASE_H`] — the base of
    /// the amortized nonce subgroup, and the differential reference for
    /// [`Self::nonce_from_exponent`] (`nonce_from_exponent(a) == H.modpow(a, N²)`).
    pub fn nonce_base(&self) -> &BigUint {
        &self.inner.nonce_base
    }

    /// The encryption nonce `H^a mod N²` for a pool-drawn random exponent `a < N`,
    /// evaluated over the key's cached fixed-base table: one Montgomery multiplication
    /// per nonzero 4-bit window of `a`, no squarings.  This is the amortized
    /// Damgård–Jurik '01 §4.2 nonce path [`crate::pool::RandomnessPool`] draws from;
    /// [`Self::nonce_from_r`] remains the textbook `r^N` path.
    pub fn nonce_from_exponent(&self, a: &BigUint) -> BigUint {
        self.inner.ctx_n2.fixed_base_modpow(&self.inner.nonce_table, a)
    }

    /// Encryption given a precomputed nonce `r^N mod N²`: one multiplication, no
    /// exponentiation.
    pub fn encrypt_with_nonce(&self, m: &BigUint, r_n: &BigUint) -> Ciphertext {
        let n = self.n();
        let n2 = self.n_squared();
        // g^m = (1 + N)^m = 1 + mN (mod N^2)
        let g_m = (BigUint::one() + m * n) % n2;
        Ciphertext((g_m * r_n) % n2)
    }

    /// The "trivial" encryption of zero with randomness 1.  Useful as the identity for
    /// homomorphic accumulation (`Enc(Σ xᵢ) = Π Enc(xᵢ)`).
    pub fn one_ciphertext(&self) -> Ciphertext {
        Ciphertext(BigUint::one())
    }

    /// Homomorphic addition: `Enc(a) ⊞ Enc(b) = Enc(a + b)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext((&a.0 * &b.0) % self.n_squared())
    }

    /// Homomorphic addition of a plaintext constant: `Enc(a) ⊞ k = Enc(a + k)`.
    pub fn add_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        let g_k = (BigUint::one() + (k % self.n()) * self.n()) % self.n_squared();
        Ciphertext((&a.0 * g_k) % self.n_squared())
    }

    /// Homomorphic subtraction: `Enc(a) ⊟ Enc(b) = Enc(a − b)`.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let b_inv = self.negate(b);
        self.add(a, &b_inv)
    }

    /// Homomorphic negation: `Enc(a) ↦ Enc(−a)` (inverse in the ciphertext group).
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let inv = mod_inverse(&a.0, self.n_squared())
            .expect("ciphertext is invertible modulo N² for honestly generated keys");
        Ciphertext(inv)
    }

    /// Scalar multiplication: `Enc(a)^k = Enc(k · a)` (windowed Montgomery
    /// exponentiation under the cached `N²` context).
    pub fn mul_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(self.inner.ctx_n2.modpow(&a.0, k))
    }

    /// Re-randomize a ciphertext: multiply by a fresh encryption of zero.  The output
    /// decrypts to the same plaintext but is computationally unlinkable to the input,
    /// which is what the sub-protocols rely on when S2 returns items to S1.
    pub fn rerandomize<R: RngCore + CryptoRng>(&self, a: &Ciphertext, rng: &mut R) -> Ciphertext {
        let r = random_invertible(rng, self.n());
        self.rerandomize_with_nonce(a, &self.nonce_from_r(&r))
    }

    /// Re-randomization given a precomputed nonce `r^N mod N²`: one multiplication.
    pub fn rerandomize_with_nonce(&self, a: &Ciphertext, r_n: &BigUint) -> Ciphertext {
        Ciphertext((&a.0 * r_n) % self.n_squared())
    }

    /// Check that a ciphertext is an element of `Z_{N²}` (cheap sanity check used when
    /// deserializing messages received from the other cloud).
    pub fn validate(&self, a: &Ciphertext) -> Result<()> {
        if a.0.is_zero() || a.0 >= *self.n_squared() {
            Err(CryptoError::CiphertextOutOfRange)
        } else {
            Ok(())
        }
    }
}

impl PaillierSecretKey {
    /// The matching public key.
    pub fn public_key(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypt a ciphertext to an element of `Z_N`, in CRT form: half-width
    /// exponentiations modulo `p²` and `q²` with half-size exponents `p−1` / `q−1`,
    /// recombined with Garner's formula.  Bit-for-bit equal to
    /// [`Self::decrypt_via_lambda`].
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint> {
        self.public.validate(c)?;
        let crt = &*self.crt;
        // m mod p = L_p(c^{p−1} mod p²) · hp mod p.  A ciphertext sharing a factor
        // with N (never produced honestly) would make L_p's exact division invalid,
        // so reject anything whose Fermat residue isn't 1.
        let cp = crt.ctx_p2.modpow(&(&c.0 % &crt.p_squared), &crt.p_minus_1);
        if !(&cp % &crt.p).is_one() {
            return Err(CryptoError::DecryptionFailed);
        }
        let mp = (l_function(&cp, &crt.p) * &crt.hp) % &crt.p;
        // m mod q, likewise
        let cq = crt.ctx_q2.modpow(&(&c.0 % &crt.q_squared), &crt.q_minus_1);
        if !(&cq % &crt.q).is_one() {
            return Err(CryptoError::DecryptionFailed);
        }
        let mq = (l_function(&cq, &crt.q) * &crt.hq) % &crt.q;
        // Garner: m = mp + p · ((mq − mp) · p⁻¹ mod q)
        let diff = ((&crt.q + &mq) - (&mp % &crt.q)) % &crt.q;
        Ok(mp + &crt.p * ((diff * &crt.p_inv_mod_q) % &crt.q))
    }

    /// The textbook decryption `L(c^λ mod N²) · μ mod N` — kept as the reference
    /// implementation the CRT fast path is differentially tested against.
    pub fn decrypt_via_lambda(&self, c: &Ciphertext) -> Result<BigUint> {
        self.public.validate(c)?;
        let n = self.public.n();
        let u = self.public.inner.ctx_n2.modpow(&c.0, &self.lambda);
        let l = l_function(&u, n);
        Ok((l * &self.mu) % n)
    }

    /// Decrypt into the symmetric (signed) representation used for score comparisons.
    pub fn decrypt_signed(&self, c: &Ciphertext) -> Result<num_bigint::BigInt> {
        Ok(to_signed(&self.decrypt(c)?, self.public.n()))
    }

    /// Decrypt a ciphertext known to hold a small value, as a `u64`.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> Result<u64> {
        let m = self.decrypt(c)?;
        let digits = m.to_u64_digits();
        match digits.len() {
            0 => Ok(0),
            1 => Ok(digits[0]),
            _ => Err(CryptoError::DecryptionFailed),
        }
    }

    /// Returns `true` iff the ciphertext decrypts to zero — the primitive S2 applies to
    /// the blinded EHL differences it receives from S1 in SecWorst / SecBest / SecDedup.
    pub fn is_zero(&self, c: &Ciphertext) -> Result<bool> {
        Ok(self.decrypt(c)?.is_zero())
    }

    /// Crate-internal: expose λ so the Damgård–Jurik layer (same trust domain — both keys
    /// are held by the crypto cloud S2) can decrypt without regenerating key material.
    pub(crate) fn lambda_for_dj(&self) -> &BigUint {
        &self.lambda
    }

    /// Crate-internal: expose the prime factors so the Damgård–Jurik layer can build its
    /// own CRT parameters over `p³` / `q³`.
    pub(crate) fn factors(&self) -> (&BigUint, &BigUint) {
        (&self.crt.p, &self.crt.q)
    }
}

/// Generate a Paillier key pair with a modulus of (about) `modulus_bits` bits.
pub fn generate_keypair<R: RngCore + CryptoRng>(
    modulus_bits: usize,
    rng: &mut R,
) -> Result<(PaillierPublicKey, PaillierSecretKey)> {
    if modulus_bits < MIN_MODULUS_BITS {
        return Err(CryptoError::KeySizeTooSmall {
            requested: modulus_bits,
            minimum: MIN_MODULUS_BITS,
        });
    }
    let prime_bits = (modulus_bits / 2) as u64;
    let (p, q) = generate_safe_factor_pair(prime_bits, rng)?;
    let n = &p * &q;
    let p_minus = &p - BigUint::one();
    let q_minus = &q - BigUint::one();
    let lambda = p_minus.lcm(&q_minus);
    let mu = mod_inverse(&lambda, &n)?;
    let crt = PaillierCrt::build(p, q, &n)?;

    let public = PaillierPublicKey { inner: Arc::new(PublicInner::build(n, modulus_bits)) };
    let secret = PaillierSecretKey { lambda, mu, crt: Arc::new(crt), public: public.clone() };
    Ok((public, secret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_bigint::BigInt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PaillierPublicKey, PaillierSecretKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let (pk, sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        (pk, sk, rng)
    }

    #[test]
    fn round_trip_small_values() {
        let (pk, sk, mut rng) = setup();
        for m in [0u64, 1, 2, 17, 1000, u32::MAX as u64, u64::MAX] {
            let c = pk.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(sk.decrypt_u64(&c).unwrap(), m, "m = {m}");
        }
    }

    #[test]
    fn round_trip_random_group_elements() {
        let (pk, sk, mut rng) = setup();
        for _ in 0..20 {
            let m = crate::bigint::random_below(&mut rng, pk.n());
            let c = pk.encrypt(&m, &mut rng).unwrap();
            assert_eq!(sk.decrypt(&c).unwrap(), m);
        }
    }

    #[test]
    fn rejects_out_of_range_plaintext() {
        let (pk, _sk, mut rng) = setup();
        let too_big = pk.n().clone();
        assert_eq!(pk.encrypt(&too_big, &mut rng), Err(CryptoError::PlaintextOutOfRange));
    }

    #[test]
    fn rejects_too_small_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(generate_keypair(64, &mut rng), Err(CryptoError::KeySizeTooSmall { .. })));
    }

    #[test]
    fn homomorphic_addition() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(1234, &mut rng).unwrap();
        let b = pk.encrypt_u64(8766, &mut rng).unwrap();
        let sum = pk.add(&a, &b);
        assert_eq!(sk.decrypt_u64(&sum).unwrap(), 10_000);
    }

    #[test]
    fn homomorphic_addition_wraps_modulo_n() {
        let (pk, sk, mut rng) = setup();
        let almost_n = pk.n() - BigUint::from(3u32);
        let a = pk.encrypt(&almost_n, &mut rng).unwrap();
        let b = pk.encrypt_u64(5, &mut rng).unwrap();
        let sum = pk.add(&a, &b);
        assert_eq!(sk.decrypt_u64(&sum).unwrap(), 2);
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(111, &mut rng).unwrap();
        let scaled = pk.mul_plain(&a, &BigUint::from(9u32));
        assert_eq!(sk.decrypt_u64(&scaled).unwrap(), 999);
    }

    #[test]
    fn homomorphic_subtraction_and_negation() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(50, &mut rng).unwrap();
        let b = pk.encrypt_u64(80, &mut rng).unwrap();
        let diff = pk.sub(&a, &b);
        assert_eq!(sk.decrypt_signed(&diff).unwrap(), BigInt::from(-30));
        let neg = pk.negate(&a);
        assert_eq!(sk.decrypt_signed(&neg).unwrap(), BigInt::from(-50));
    }

    #[test]
    fn add_plain_matches_add() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(7, &mut rng).unwrap();
        let c = pk.add_plain(&a, &BigUint::from(35u32));
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 42);
    }

    #[test]
    fn rerandomization_preserves_plaintext_and_changes_ciphertext() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(99, &mut rng).unwrap();
        let b = pk.rerandomize(&a, &mut rng);
        assert_ne!(a, b, "re-randomized ciphertext must differ");
        assert_eq!(sk.decrypt_u64(&b).unwrap(), 99);
    }

    #[test]
    fn encryption_is_probabilistic() {
        let (pk, _sk, mut rng) = setup();
        let a = pk.encrypt_u64(5, &mut rng).unwrap();
        let b = pk.encrypt_u64(5, &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn signed_encryption_round_trip() {
        let (pk, sk, mut rng) = setup();
        for v in [-1_000_000i64, -1, 0, 1, 123_456_789] {
            let c = pk.encrypt_i64(v, &mut rng).unwrap();
            assert_eq!(sk.decrypt_signed(&c).unwrap(), BigInt::from(v));
        }
    }

    #[test]
    fn sentinel_z_is_minus_one() {
        let (pk, sk, mut rng) = setup();
        let z = pk.sentinel_z();
        let c = pk.encrypt(&z, &mut rng).unwrap();
        assert_eq!(sk.decrypt_signed(&c).unwrap(), BigInt::from(-1));
    }

    #[test]
    fn is_zero_detects_equality_of_plaintexts() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_u64(77, &mut rng).unwrap();
        let b = pk.encrypt_u64(77, &mut rng).unwrap();
        let diff = pk.sub(&a, &b);
        assert!(sk.is_zero(&diff).unwrap());
        let c = pk.encrypt_u64(78, &mut rng).unwrap();
        assert!(!sk.is_zero(&pk.sub(&a, &c)).unwrap());
    }

    #[test]
    fn fixed_base_nonce_matches_naive_exponentiation() {
        let (pk, sk, mut rng) = setup();
        assert_eq!(pk.nonce_base(), &BigUint::from(NONCE_BASE_H).modpow(pk.n(), pk.n_squared()));
        for _ in 0..8 {
            let a = crate::bigint::random_below(&mut rng, pk.n());
            assert_eq!(
                pk.nonce_from_exponent(&a),
                pk.nonce_base().modpow_naive(&a, pk.n_squared())
            );
        }
        // Edge exponents.
        for a in [BigUint::zero(), BigUint::one(), pk.n() - BigUint::one()] {
            assert_eq!(
                pk.nonce_from_exponent(&a),
                pk.nonce_base().modpow_naive(&a, pk.n_squared()),
            );
        }
        // A fixed-base nonce encrypts like any other nonce.
        let a = crate::bigint::random_below(&mut rng, pk.n());
        let c = pk.encrypt_with_nonce(&BigUint::from(4321u64), &pk.nonce_from_exponent(&a));
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 4321);
    }

    #[test]
    fn deserialize_rejects_degenerate_moduli() {
        // n = 1 (or 0, or even) must come back as a decode error, not a panic in the
        // Montgomery setup — these bytes can arrive over the inter-cloud wire.
        for bad in [0u64, 1, 4096] {
            let v = serde::Value::Map(vec![
                ("n".to_string(), serde::Value::U64(bad)),
                ("modulus_bits".to_string(), serde::Value::U64(8)),
            ]);
            assert!(PaillierPublicKey::from_value(&v).is_err(), "n = {bad}");
        }
        // Secret key with p = 1, q = N: passes p·q == N but must still be rejected.
        let (pk, sk, _rng) = setup();
        let mut sk_value = sk.to_value();
        if let serde::Value::Map(entries) = &mut sk_value {
            for (key, value) in entries.iter_mut() {
                match key.as_str() {
                    "p" => *value = serde::Value::Str("1".to_string()),
                    "q" => *value = serde::Value::Str(pk.n().to_string()),
                    _ => {}
                }
            }
        }
        assert!(PaillierSecretKey::from_value(&sk_value).is_err());
    }

    #[test]
    fn decrypt_rejects_ciphertext_sharing_a_factor_with_n() {
        // c = N passes the range check but is divisible by both primes; the CRT path
        // must return an error, not panic in the exact division.
        let (pk, sk, _rng) = setup();
        let c = Ciphertext(pk.n().clone());
        assert_eq!(sk.decrypt(&c), Err(CryptoError::DecryptionFailed));
    }

    #[test]
    fn validate_rejects_garbage() {
        let (pk, _sk, _rng) = setup();
        assert!(pk.validate(&Ciphertext(BigUint::zero())).is_err());
        assert!(pk.validate(&Ciphertext(pk.n_squared().clone())).is_err());
        assert!(pk.validate(&Ciphertext(BigUint::one())).is_ok());
    }

    #[test]
    fn accumulating_with_one_ciphertext_identity() {
        let (pk, sk, mut rng) = setup();
        let mut acc = pk.one_ciphertext();
        let mut expected = 0u64;
        for v in [3u64, 5, 11, 20] {
            let c = pk.encrypt_u64(v, &mut rng).unwrap();
            acc = pk.add(&acc, &c);
            expected += v;
        }
        assert_eq!(sk.decrypt_u64(&acc).unwrap(), expected);
    }

    #[test]
    fn serde_round_trip() {
        let (pk, sk, mut rng) = setup();
        let c = pk.encrypt_u64(123, &mut rng).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let c2: Ciphertext = serde_json::from_str(&json).unwrap();
        assert_eq!(sk.decrypt_u64(&c2).unwrap(), 123);

        let pk_json = serde_json::to_string(&pk).unwrap();
        let pk2: PaillierPublicKey = serde_json::from_str(&pk_json).unwrap();
        assert_eq!(pk2.n(), pk.n());
    }
}
