//! Differential property tests pinning every fast arithmetic path against its naive
//! reference implementation, bit for bit:
//!
//! * Montgomery fixed-window `modpow` (odd moduli) and the even-modulus fallback vs.
//!   the bit-at-a-time [`BigUint::modpow_naive`],
//! * Karatsuba multiplication (above the limb threshold) vs. [`BigUint::mul_schoolbook`],
//! * CRT Paillier / Damgård–Jurik decryption vs. the textbook `λ` paths,
//! * the limb-direct `from_bytes_be` vs. an explicit shift-and-add fold.
//!
//! Edge operands (0, 1, modulus−1, even moduli) are covered both by dedicated cases and
//! by pinning random draws to the range boundaries.

use num_bigint::{BigUint, MontgomeryContext, RandBigInt};
use num_traits::{One, Zero};
use proptest::proptest;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_crypto::damgard_jurik::{DjPublicKey, DjSecretKey};
use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};

/// Random value with roughly `bits` bits drawn from a seeded RNG.
fn random_biguint(rng: &mut StdRng, bits: u64) -> BigUint {
    rng.gen_biguint(bits)
}

proptest! {
    #[test]
    fn modpow_fast_matches_naive(seed in 0u64..500, base_bits in 1u64..320, exp_bits in 1u64..200, mod_bits in 2u64..320) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_biguint(&mut rng, base_bits);
        let exponent = random_biguint(&mut rng, exp_bits);
        let mut modulus = random_biguint(&mut rng, mod_bits);
        if modulus.is_zero() {
            modulus = BigUint::one() + BigUint::one();
        }
        // Covers both parities: odd moduli take the Montgomery path, even ones the
        // naive fallback — either way `modpow` must agree with `modpow_naive`.
        assert_eq!(
            base.modpow(&exponent, &modulus),
            base.modpow_naive(&exponent, &modulus),
            "base={base} exp={exponent} mod={modulus}"
        );
    }

    #[test]
    fn montgomery_context_matches_naive_on_edge_operands(seed in 0u64..300, mod_bits in 2u64..260) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let mut modulus = random_biguint(&mut rng, mod_bits);
        modulus.set_bit(0, true); // force odd so the context exists
        if modulus.is_one() {
            modulus = BigUint::from(3u32);
        }
        let ctx = MontgomeryContext::new(&modulus).expect("odd modulus > 1");
        let minus_one = &modulus - BigUint::one();
        let edge_values =
            [BigUint::zero(), BigUint::one(), minus_one.clone(), random_biguint(&mut rng, mod_bits)];
        let edge_exponents = [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(2u32),
            minus_one,
            random_biguint(&mut rng, 96),
        ];
        for base in &edge_values {
            for exponent in &edge_exponents {
                assert_eq!(
                    ctx.modpow(base, exponent),
                    base.modpow_naive(exponent, &modulus),
                    "base={base} exp={exponent} mod={modulus}"
                );
            }
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook(seed in 0u64..300, a_bits in 1u64..6000, b_bits in 1u64..6000) {
        // 6000 bits ≈ 94 limbs: far above the 32-limb Karatsuba threshold, with
        // unbalanced operand shapes included.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(13));
        let a = random_biguint(&mut rng, a_bits);
        let b = random_biguint(&mut rng, b_bits);
        assert_eq!(&a * &b, a.mul_schoolbook(&b));
        // Edge operands around the split positions.
        let shifted = BigUint::one() << a_bits;
        assert_eq!(&shifted * &b, shifted.mul_schoolbook(&b));
        assert_eq!(&a * BigUint::zero(), BigUint::zero());
        assert_eq!(&a * BigUint::one(), a);
    }

    #[test]
    fn from_bytes_be_matches_shift_and_add(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        let mut reference = BigUint::zero();
        for &b in &bytes {
            reference = (reference << 8u32) + BigUint::from(b);
        }
        assert_eq!(BigUint::from_bytes_be(&bytes), reference);
    }

    #[test]
    fn crt_decrypt_matches_lambda_decrypt(seed in 0u64..40, m in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        // Plain values, the sentinel −1, and random group elements.
        let mut plains = vec![
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(m),
            pk.sentinel_z(),
            pk.n() - BigUint::one(),
        ];
        plains.push(sectopk_crypto::bigint::random_below(&mut rng, pk.n()));
        for plain in &plains {
            let plain = plain % pk.n();
            let c = pk.encrypt(&plain, &mut rng).unwrap();
            assert_eq!(sk.decrypt(&c).unwrap(), plain);
            assert_eq!(sk.decrypt(&c).unwrap(), sk.decrypt_via_lambda(&c).unwrap());
        }
    }

    #[test]
    fn dj_crt_decrypt_matches_lambda_decrypt(seed in 0u64..25, m in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000));
        let (pk, sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let dj_pk = DjPublicKey::from_paillier(&pk);
        let dj_sk = DjSecretKey::from_paillier(&sk);
        // Messages below N, straddling N, and at the top of the space Z_{N²}.
        let messages = [
            BigUint::zero(),
            BigUint::from(m),
            pk.n() + BigUint::from(m),
            dj_pk.n_s() - BigUint::one(),
        ];
        for message in &messages {
            let c = dj_pk.encrypt(message, &mut rng).unwrap();
            assert_eq!(&dj_sk.decrypt(&c).unwrap(), message);
            assert_eq!(dj_sk.decrypt(&c).unwrap(), dj_sk.decrypt_via_lambda(&c).unwrap());
        }
    }

    #[test]
    fn dj_binomial_g_pow_matches_modpow(seed in 0u64..60) {
        // encrypt_with_randomness(m, 1) isolates (1+N)^m mod N³; compare the binomial
        // closed form against a genuine modular exponentiation.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2000));
        let (pk, _sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let dj = DjPublicKey::from_paillier(&pk);
        let g = pk.n() + BigUint::one();
        let messages = [
            BigUint::zero(),
            BigUint::one(),
            pk.n().clone(),
            pk.n() - BigUint::one(),
            dj.n_s() - BigUint::one(),
            sectopk_crypto::bigint::random_below(&mut rng, dj.n_s()),
        ];
        for m in &messages {
            let via_binomial = dj.encrypt_with_randomness(m, &BigUint::one());
            let via_modpow = g.modpow_naive(m, dj.n_s_plus_1());
            assert_eq!(via_binomial.as_biguint(), &via_modpow, "m = {m}");
        }
    }
}

proptest! {
    #[test]
    fn fixed_base_table_matches_naive_modpow(seed in 0u64..200, mod_bits in 2u64..260, cover_bits in 1u64..160) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(53).wrapping_add(11));
        let mut modulus = random_biguint(&mut rng, mod_bits);
        modulus.set_bit(0, true);
        if modulus.is_one() {
            modulus = BigUint::from(3u32);
        }
        let ctx = MontgomeryContext::new(&modulus).expect("odd modulus > 1");
        let base = random_biguint(&mut rng, mod_bits);
        let table = ctx.precompute_fixed_base(&base, cover_bits);
        // In-coverage exponents, including both range boundaries.
        let mut exponents = vec![
            BigUint::zero(),
            BigUint::one(),
            (BigUint::one() << cover_bits) - BigUint::one(),
            random_biguint(&mut rng, cover_bits),
        ];
        // Past-coverage exponent: the table must fall back to the generic path and
        // still agree (the nonce-pool contract when a caller overshoots its sizing).
        exponents.push((BigUint::one() << cover_bits) + random_biguint(&mut rng, 40));
        for exponent in &exponents {
            assert_eq!(
                ctx.fixed_base_modpow(&table, exponent),
                base.modpow_naive(exponent, &modulus),
                "base={base} exp={exponent} mod={modulus} coverage={cover_bits}"
            );
        }
    }

    #[test]
    fn multi_modpow_matches_two_naive_modpows(seed in 0u64..200, mod_bits in 2u64..260, e_bits in 1u64..160) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(71).wrapping_add(3));
        let mut modulus = random_biguint(&mut rng, mod_bits);
        modulus.set_bit(0, true);
        if modulus.is_one() {
            modulus = BigUint::from(3u32);
        }
        let ctx = MontgomeryContext::new(&modulus).expect("odd modulus > 1");
        let b1 = random_biguint(&mut rng, mod_bits);
        let b2 = random_biguint(&mut rng, mod_bits);
        let minus_one = &modulus - BigUint::one();
        // Asymmetric exponent shapes: zero on either side degenerates the joint
        // recoding to a single-base walk, modulus−1 maxes the shared squaring chain.
        let exponent_pairs = [
            (BigUint::zero(), BigUint::zero()),
            (BigUint::zero(), random_biguint(&mut rng, e_bits)),
            (random_biguint(&mut rng, e_bits), BigUint::zero()),
            (BigUint::one(), minus_one.clone()),
            (minus_one.clone(), BigUint::one()),
            (random_biguint(&mut rng, e_bits), random_biguint(&mut rng, e_bits)),
        ];
        for (e1, e2) in &exponent_pairs {
            let reference =
                (b1.modpow_naive(e1, &modulus) * b2.modpow_naive(e2, &modulus)) % &modulus;
            assert_eq!(
                ctx.multi_modpow(&b1, e1, &b2, e2),
                reference,
                "b1={b1} e1={e1} b2={b2} e2={e2} mod={modulus}"
            );
        }
    }

    #[test]
    fn multi_modpow_wrapper_matches_naive_any_parity(seed in 0u64..200, mod_bits in 2u64..200, force_even in 0u8..2) {
        let force_even = force_even == 1;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(13).wrapping_add(29));
        let mut modulus = random_biguint(&mut rng, mod_bits);
        modulus.set_bit(0, !force_even);
        if modulus.is_zero() || modulus.is_one() {
            modulus = if force_even { BigUint::from(2u32) } else { BigUint::from(3u32) };
        }
        let b1 = random_biguint(&mut rng, mod_bits);
        let b2 = random_biguint(&mut rng, mod_bits);
        let e1 = random_biguint(&mut rng, 96);
        let e2 = random_biguint(&mut rng, 96);
        assert_eq!(
            b1.multi_modpow(&e1, &b2, &e2, &modulus),
            b1.multi_modpow_naive(&e1, &b2, &e2, &modulus),
            "b1={b1} e1={e1} b2={b2} e2={e2} mod={modulus}"
        );
    }

    #[test]
    fn paillier_pooled_nonce_matches_naive_exponentiation(seed in 0u64..12) {
        // The amortized nonce H^a (fixed-base table over H = h^N mod N²) against the
        // from-scratch h^{N·a}, including the exponent edges 0, 1 and n−1.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7).wrapping_add(77));
        let (pk, _sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let h = BigUint::from(sectopk_crypto::paillier::NONCE_BASE_H);
        let n2 = pk.n() * pk.n();
        let exponents = [
            BigUint::zero(),
            BigUint::one(),
            pk.n() - BigUint::one(),
            sectopk_crypto::bigint::random_below(&mut rng, pk.n()),
        ];
        for a in &exponents {
            let naive = h.modpow_naive(&(pk.n() * a), &n2);
            assert_eq!(pk.nonce_from_exponent(a), naive, "a = {a}");
        }
    }
}

#[test]
fn modpow_even_modulus_edge_cases() {
    // The even-modulus fallback, exercised explicitly (Montgomery cannot serve these).
    let cases: [(u64, u64, u64); 6] =
        [(3, 5, 16), (2, 10, 4), (7, 0, 12), (0, 3, 8), (15, 3, 16), (123_456, 789, 1_000_000)];
    for (b, e, m) in cases {
        let base = BigUint::from(b);
        let exponent = BigUint::from(e);
        let modulus = BigUint::from(m);
        assert_eq!(
            base.modpow(&exponent, &modulus),
            base.modpow_naive(&exponent, &modulus),
            "{b}^{e} mod {m}"
        );
        assert_eq!(
            base.modpow(&exponent, &modulus),
            BigUint::from(mod_pow_u64(b, e, m)),
            "{b}^{e} mod {m} against u64 reference"
        );
    }
}

/// Plain u64 modular exponentiation reference.
fn mod_pow_u64(base: u64, mut exp: u64, modulus: u64) -> u64 {
    if modulus == 1 {
        return 0;
    }
    let mut acc: u128 = 1;
    let m = modulus as u128;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    acc as u64
}
