//! Fast standalone smoke test: `cargo test -q -p sectopk-crypto` must be meaningful in
//! isolation (CI runs each crate's suite separately on partial rebuilds).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_crypto::paillier::generate_keypair;

#[test]
fn paillier_128_bit_keygen_add_decrypt_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x51301);
    let (pk, sk) = generate_keypair(128, &mut rng).expect("keygen");
    let a = pk.encrypt_u64(20, &mut rng).expect("encrypt 20");
    let b = pk.encrypt_u64(22, &mut rng).expect("encrypt 22");
    let sum = pk.add(&a, &b);
    assert_eq!(sk.decrypt_u64(&sum).expect("decrypt"), 42);
}
