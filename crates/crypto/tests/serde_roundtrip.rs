//! Property tests for the ciphertext wire formats: `Ciphertext` and `LayeredCiphertext`
//! serialize as big-endian byte strings and must round-trip losslessly both through the
//! value tree (the transport layer's binary codec path) and through JSON (where bytes
//! render as hex strings).

use num_bigint::BigUint;
use proptest::proptest;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sectopk_crypto::damgard_jurik::{DjPublicKey, LayeredCiphertext};
use sectopk_crypto::paillier::{generate_keypair, Ciphertext, MIN_MODULUS_BITS};

proptest! {
    #[test]
    fn ciphertext_value_round_trip(seed in 0u64..1_000, m in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, _sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let c = pk.encrypt_u64(m % 1_000_000, &mut rng).unwrap();

        // Value-tree round trip (the binary wire codec path).
        let back = Ciphertext::from_value(&c.to_value()).unwrap();
        assert_eq!(back, c);

        // The wire form is the big-endian byte string, measured by `byte_len`.
        let bytes = c.to_bytes_be();
        assert_eq!(bytes.len(), c.byte_len());
        assert_eq!(Ciphertext::from_bytes_be(&bytes), c);

        // JSON round trip (bytes render as hex strings).
        let json = serde_json::to_string(&c).unwrap();
        let parsed: Ciphertext = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn layered_ciphertext_value_round_trip(seed in 0u64..1_000, m in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(77));
        let (pk, _sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let dj = DjPublicKey::from_paillier(&pk);
        let c = dj.encrypt_u64(m % 1_000_000, &mut rng).unwrap();

        let back = LayeredCiphertext::from_value(&c.to_value()).unwrap();
        assert_eq!(back, c);

        let bytes = c.to_bytes_be();
        assert_eq!(bytes.len(), c.byte_len());
        assert_eq!(LayeredCiphertext::from_bytes_be(&bytes), c);

        let json = serde_json::to_string(&c).unwrap();
        let parsed: LayeredCiphertext = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn arbitrary_group_elements_round_trip(limbs in proptest::collection::vec(0u64..u64::MAX, 1..8)) {
        // Exercise values of every byte length, not just well-formed encryptions.
        let mut raw = BigUint::from(0u64);
        for l in &limbs {
            raw = (raw << 64) + BigUint::from(*l);
        }
        let c = Ciphertext::from_biguint(raw.clone());
        assert_eq!(Ciphertext::from_bytes_be(&c.to_bytes_be()), c);
        assert_eq!(Ciphertext::from_value(&c.to_value()).unwrap(), c);

        let l = LayeredCiphertext::from_bytes_be(&raw.to_bytes_be());
        assert_eq!(l.as_biguint(), &raw);
        assert_eq!(LayeredCiphertext::from_value(&l.to_value()).unwrap(), l);
    }
}

#[test]
fn deserialize_rejects_wrong_value_kinds() {
    assert!(Ciphertext::from_value(&serde::Value::U64(5)).is_err());
    assert!(LayeredCiphertext::from_value(&serde::Value::Seq(Vec::new())).is_err());
    assert!(Ciphertext::from_value(&serde::Value::Str("not hex".into())).is_err());
}
