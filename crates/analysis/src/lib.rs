//! `sectopk-lint` — a workspace invariant analyzer for the SecTopK reproduction.
//!
//! The paper's security argument rests on structural invariants that the runtime
//! suites (golden leakage ledgers, byte-identity transport equivalence) only check
//! dynamically.  This crate makes them static: a self-contained source-level analyzer
//! (its own lightweight Rust lexer and rule engine — the workspace is offline, so no
//! `syn`/`dylint`) that walks every `crates/*/src` file and enforces five invariants:
//!
//! 1. **Decrypt confinement** — `decrypt*` calls only inside the audited modules (the
//!    S2 engine and the crypto crate), with every engine-side reveal paired with a
//!    `LeakageLedger` record in the same function.
//! 2. **Determinism discipline** — no `thread_rng`, OS entropy, or
//!    `Instant::now`/`SystemTime` reads in protocol/crypto compute paths; wall-clock
//!    only behind `sectopk-metrics` handles or allowlisted timeout machinery.
//! 3. **Serving-path panic-freedom** — no `unwrap`/`expect`/panicking macros/raw
//!    indexing in the request/reply path (`tcp.rs`, `multiplex.rs`, `engine.rs`,
//!    `wire.rs`, `transport.rs`, `crates/server`).
//! 4. **Secret hygiene** — no `Debug`/`Display` derives or format-string captures of
//!    secret-key types outside an audited allowlist.
//! 5. **Wire exhaustiveness** — every `S1Request` variant has a handler arm in the S2
//!    engine, and `WireError` codes are unique.
//!
//! Configuration and the per-site allowlist live in `lints.toml` at the workspace
//! root; every allowlist entry carries a mandatory justification, and entries that no
//! longer match anything fail the run.  `cargo run -p sectopk-lint --release` is the
//! CI gate.

#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::Path;

pub use config::Config;
pub use report::{Finding, Report};

use rules::SourceFile;

/// Analyze the workspace rooted at `root` under configuration `cfg`.
///
/// Walks every `.rs` file under `root/crates/*/src` (integration tests and benches
/// live outside `src` and are excluded by construction; `#[cfg(test)]` modules are
/// stripped lexically), runs the five rules, and applies the allowlist.
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(rel, &text));
    }

    let mut findings = Vec::new();
    for f in &files {
        rules::decrypt_confinement(f, cfg, &mut findings);
        rules::determinism(f, cfg, &mut findings);
        rules::panic_freedom(f, cfg, &mut findings);
        rules::secret_hygiene(f, cfg, &mut findings);
    }
    rules::wire_exhaustiveness(&files, cfg, &mut findings);

    Ok(Report::assemble(findings, &cfg.allow, files.len()))
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut children: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_rs(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "rs") {
            out.push(child);
        }
    }
    Ok(())
}
