//! The `sectopk-lint` CLI: run the workspace invariant analyzer and gate CI.
//!
//! Usage: `cargo run -p sectopk-lint --release [-- --json] [--root DIR] [--config FILE]`.
//! Exits 0 when the tree is clean (no non-allowlisted findings and no stale allowlist
//! entries), 1 on violations, 2 on configuration or I/O errors.

#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "sectopk-lint: workspace invariant analyzer\n\n\
                     Options:\n  --json           emit findings as JSON\n  \
                     --root DIR       workspace root (default: auto-detected)\n  \
                     --config FILE    config path (default: <root>/lints.toml)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sectopk-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(default_root);
    let config_path = config.unwrap_or_else(|| root.join("lints.toml"));
    let cfg = match sectopk_lint::Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("sectopk-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match sectopk_lint::run(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sectopk-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: the current directory if it holds `lints.toml`, else the
/// manifest's grandparent (`crates/analysis/../..`), else the current directory.
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("lints.toml").is_file() {
        return cwd;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(cwd)
}
