//! Findings, allowlist application, and the text / JSON renderers.

use serde::Serialize;

use crate::config::AllowEntry;

/// One rule violation at a specific source location.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Rule id (`decrypt-confinement`, `determinism`, `panic-freedom`,
    /// `secret-hygiene`, `wire-exhaustiveness`).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A finding suppressed by a justified allowlist entry.
#[derive(Clone, Debug, Serialize)]
pub struct AllowedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The allowlist entry's justification.
    pub justification: String,
}

/// The full result of an analyzer run.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Non-allowlisted violations — any entry here fails the run.
    pub findings: Vec<Finding>,
    /// Violations suppressed by a justified allowlist entry.
    pub allowed: Vec<AllowedFinding>,
    /// Allowlist entries that matched nothing — stale exemptions fail the run too.
    pub unused_allow_entries: Vec<AllowEntry>,
    /// Number of source files analyzed.
    pub files_analyzed: usize,
}

impl Report {
    /// Split raw findings into violations and allowlisted sites, and record any
    /// allowlist entry that matched nothing (a stale exemption is itself an error:
    /// it means the hazard it documented no longer exists, so the justification is
    /// dead weight — or worse, masking a typo that lets real findings through).
    pub fn assemble(mut raw: Vec<Finding>, allow: &[AllowEntry], files_analyzed: usize) -> Report {
        raw.sort_by(|a, b| {
            (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
        });
        let mut findings = Vec::new();
        let mut allowed = Vec::new();
        let mut used = vec![false; allow.len()];
        for finding in raw {
            let hit = allow.iter().position(|e| {
                e.rule == finding.rule
                    && e.file == finding.file
                    && finding.snippet.contains(&e.pattern)
            });
            match hit {
                Some(idx) => {
                    used[idx] = true;
                    allowed.push(AllowedFinding {
                        finding,
                        justification: allow[idx].justification.clone(),
                    });
                }
                None => findings.push(finding),
            }
        }
        let unused_allow_entries =
            allow.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();
        Report { findings, allowed, unused_allow_entries, files_analyzed }
    }

    /// True when the run passes: no violations and no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_allow_entries.is_empty()
    }

    /// Render the report as stable JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Render the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
            if !f.snippet.is_empty() {
                out.push_str(&format!("    {}\n", f.snippet));
            }
        }
        for e in &self.unused_allow_entries {
            out.push_str(&format!(
                "lints.toml: unused allowlist entry [{}] {} (pattern `{}`) — remove it or fix \
                 the pattern\n",
                e.rule, e.file, e.pattern
            ));
        }
        out.push_str(&format!(
            "sectopk-lint: {} file(s) analyzed, {} violation(s), {} allowlisted site(s), {} \
             unused allowlist entr{}\n",
            self.files_analyzed,
            self.findings.len(),
            self.allowed.len(),
            self.unused_allow_entries.len(),
            if self.unused_allow_entries.len() == 1 { "y" } else { "ies" },
        ));
        out
    }
}
