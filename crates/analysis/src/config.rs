//! `lints.toml` loading: a small TOML-subset parser (the workspace is offline, so no
//! `toml` crate) plus the typed [`Config`] the rules consume.
//!
//! The subset covers exactly what the config needs: `[table]` headers, `[[allow]]`
//! array-of-tables headers, and `key = value` pairs whose values are strings or
//! (possibly multi-line) arrays of strings.  Comments start with `#` outside strings.

use std::collections::BTreeMap;

/// A parsed value: a string or a list of strings.
#[derive(Clone, Debug)]
enum TomlVal {
    Str(String),
    List(Vec<String>),
}

type Table = BTreeMap<String, TomlVal>;

/// One `[[allow]]` entry: a justified exemption for findings of `rule` in `file` whose
/// source line contains `pattern`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct AllowEntry {
    /// Rule id the exemption applies to (e.g. `panic-freedom`).
    pub rule: String,
    /// Workspace-relative path (forward slashes) the exemption applies to.
    pub file: String,
    /// Substring of the source line(s) being exempted.
    pub pattern: String,
    /// Why this site is allowed to violate the rule.  Mandatory and non-empty.
    pub justification: String,
}

/// Configuration for the decrypt-confinement rule.
#[derive(Clone, Debug, Default)]
pub struct DecryptRule {
    /// Paths (files or directory prefixes) where decrypt calls are permitted.
    pub audited: Vec<String>,
    /// Call-name patterns counted as reveals; a trailing `*` matches a prefix.
    pub calls: Vec<String>,
    /// Files within the audited set whose decrypting functions must also record to the
    /// leakage ledger (the S2 engine).
    pub engine_files: Vec<String>,
    /// Call names that count as a ledger record (e.g. `record`, `record_eq_bit`).
    pub ledger_markers: Vec<String>,
}

/// Configuration for the determinism rule.
#[derive(Clone, Debug, Default)]
pub struct DeterminismRule {
    /// Crate/directory prefixes the rule applies to.
    pub scopes: Vec<String>,
    /// Banned identifiers (`thread_rng`) or paths (`Instant::now`).
    pub banned: Vec<String>,
}

/// Configuration for the serving-path panic-freedom rule.
#[derive(Clone, Debug, Default)]
pub struct PanicRule {
    /// Files or directory prefixes forming the serving path.
    pub paths: Vec<String>,
}

/// Configuration for the secret-hygiene rule.
#[derive(Clone, Debug, Default)]
pub struct SecretRule {
    /// Type names holding key material: no `Debug`/`Display` without an exemption.
    pub types: Vec<String>,
    /// Identifiers that must never appear inside formatting macros.
    pub idents: Vec<String>,
    /// Formatting macro names scanned for secret identifiers.
    pub fmt_macros: Vec<String>,
}

/// Configuration for the wire-exhaustiveness rule.
#[derive(Clone, Debug, Default)]
pub struct WireRule {
    /// File defining the request enum.
    pub request_enum_file: String,
    /// Name of the request enum (e.g. `S1Request`).
    pub request_enum: String,
    /// File containing the engine handler that must reference every variant.
    pub handler_file: String,
    /// File defining the wire error-code enum.
    pub error_enum_file: String,
    /// Name of the error-code enum (e.g. `WireErrorCode`).
    pub error_enum: String,
    /// Name of the all-codes const (e.g. `ALL`).
    pub all_const: String,
    /// Name of the code-to-name function (e.g. `name`).
    pub name_fn: String,
}

/// The full analyzer configuration, as loaded from `lints.toml`.  A missing section
/// disables its rule (used by the fixture corpora to exercise rules in isolation).
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Decrypt-confinement settings.
    pub decrypt: DecryptRule,
    /// Determinism settings.
    pub determinism: DeterminismRule,
    /// Panic-freedom settings.
    pub panic: PanicRule,
    /// Secret-hygiene settings.
    pub secret: SecretRule,
    /// Wire-exhaustiveness settings (`None` disables the rule).
    pub wire: Option<WireRule>,
    /// Justified per-site exemptions.
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Parse a `lints.toml` document.
    pub fn parse(text: &str) -> Result<Config, String> {
        let (tables, arrays) = parse_toml(text)?;
        let empty = Table::new();
        let get = |name: &str| tables.get(name).unwrap_or(&empty);

        let mut cfg = Config {
            decrypt: DecryptRule {
                audited: get_list(get("decrypt_confinement"), "audited"),
                calls: get_list(get("decrypt_confinement"), "calls"),
                engine_files: get_list(get("decrypt_confinement"), "engine_files"),
                ledger_markers: get_list(get("decrypt_confinement"), "ledger_markers"),
            },
            determinism: DeterminismRule {
                scopes: get_list(get("determinism"), "scopes"),
                banned: get_list(get("determinism"), "banned"),
            },
            panic: PanicRule { paths: get_list(get("panic_freedom"), "paths") },
            secret: SecretRule {
                types: get_list(get("secret_hygiene"), "types"),
                idents: get_list(get("secret_hygiene"), "idents"),
                fmt_macros: get_list(get("secret_hygiene"), "fmt_macros"),
            },
            wire: None,
            allow: Vec::new(),
        };
        if let Some(w) = tables.get("wire_exhaustiveness") {
            cfg.wire = Some(WireRule {
                request_enum_file: get_str(w, "request_enum_file")?,
                request_enum: get_str(w, "request_enum")?,
                handler_file: get_str(w, "handler_file")?,
                error_enum_file: get_str(w, "error_enum_file")?,
                error_enum: get_str(w, "error_enum")?,
                all_const: get_str(w, "all_const")?,
                name_fn: get_str(w, "name_fn")?,
            });
        }
        for (idx, t) in arrays.get("allow").map(Vec::as_slice).unwrap_or(&[]).iter().enumerate() {
            let entry = AllowEntry {
                rule: get_str(t, "rule").map_err(|e| format!("[[allow]] #{}: {e}", idx + 1))?,
                file: get_str(t, "file").map_err(|e| format!("[[allow]] #{}: {e}", idx + 1))?,
                pattern: get_str(t, "pattern")
                    .map_err(|e| format!("[[allow]] #{}: {e}", idx + 1))?,
                justification: get_str(t, "justification")
                    .map_err(|e| format!("[[allow]] #{}: {e}", idx + 1))?,
            };
            if entry.justification.trim().is_empty() {
                return Err(format!(
                    "[[allow]] #{} ({} in {}): empty justification — every exemption must say why",
                    idx + 1,
                    entry.rule,
                    entry.file
                ));
            }
            cfg.allow.push(entry);
        }
        Ok(cfg)
    }

    /// Load and parse the config file at `path`.
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn get_list(table: &Table, key: &str) -> Vec<String> {
    match table.get(key) {
        Some(TomlVal::List(v)) => v.clone(),
        Some(TomlVal::Str(s)) => vec![s.clone()],
        None => Vec::new(),
    }
}

fn get_str(table: &Table, key: &str) -> Result<String, String> {
    match table.get(key) {
        Some(TomlVal::Str(s)) => Ok(s.clone()),
        Some(TomlVal::List(_)) => Err(format!("key `{key}` must be a string, not an array")),
        None => Err(format!("missing key `{key}`")),
    }
}

/// Parse the TOML subset into plain tables and arrays-of-tables.
#[allow(clippy::type_complexity)]
fn parse_toml(
    text: &str,
) -> Result<(BTreeMap<String, Table>, BTreeMap<String, Vec<Table>>), String> {
    let mut tables: BTreeMap<String, Table> = BTreeMap::new();
    let mut arrays: BTreeMap<String, Vec<Table>> = BTreeMap::new();
    // (is_array, name) of the section currently being filled.
    let mut current: Option<(bool, String)> = None;

    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim().to_string();
            arrays.entry(name.clone()).or_default().push(Table::new());
            current = Some((true, name));
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim().to_string();
            tables.entry(name.clone()).or_default();
            current = Some((false, name));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        };
        let key = line[..eq].trim().to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Arrays may span lines: accumulate until brackets balance outside strings.
        while value.starts_with('[') && !brackets_balanced(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {}: unterminated array", lineno + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let parsed = parse_value(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let table = match &current {
            Some((true, name)) => arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .ok_or_else(|| format!("line {}: key outside any section", lineno + 1))?,
            Some((false, name)) => tables
                .get_mut(name)
                .ok_or_else(|| format!("line {}: key outside any section", lineno + 1))?,
            None => return Err(format!("line {}: key outside any section", lineno + 1)),
        };
        table.insert(key, parsed);
    }
    Ok((tables, arrays))
}

/// Remove a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// True when `[` and `]` balance outside strings.
fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parse a value: `"string"` or `[ "a", "b" ]`.
fn parse_value(v: &str) -> Result<TomlVal, String> {
    let v = v.trim();
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (s, after) = parse_string(rest)?;
            items.push(s);
            rest = after.trim();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim();
            } else if !rest.is_empty() {
                return Err(format!("expected `,` in array near `{rest}`"));
            }
        }
        return Ok(TomlVal::List(items));
    }
    if v.starts_with('"') {
        let (s, rest) = parse_string(v)?;
        if !rest.trim().is_empty() {
            return Err(format!("trailing content after string: `{rest}`"));
        }
        return Ok(TomlVal::Str(s));
    }
    Err(format!("unsupported value `{v}` (only strings and string arrays)"))
}

/// Parse one leading double-quoted string; returns (contents, remainder).
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let rest = s.strip_prefix('"').ok_or_else(|| format!("expected string near `{s}`"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((idx, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => out.push(other),
                None => return Err("dangling escape in string".into()),
            },
            '"' => return Ok((out, &rest[idx + c.len_utf8()..])),
            _ => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_allow_entries() {
        let cfg = Config::parse(
            r#"
# comment
[determinism]
scopes = ["crates/a", "crates/b"] # trailing comment
banned = [
    "thread_rng",
    "Instant::now",
]

[[allow]]
rule = "determinism"
file = "crates/a/src/x.rs"
pattern = "Instant::now"
justification = "timeout machinery"
"#,
        )
        .unwrap();
        assert_eq!(cfg.determinism.scopes, vec!["crates/a", "crates/b"]);
        assert_eq!(cfg.determinism.banned, vec!["thread_rng", "Instant::now"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].pattern, "Instant::now");
    }

    #[test]
    fn empty_justification_is_rejected() {
        let err = Config::parse(
            "[[allow]]\nrule = \"x\"\nfile = \"f\"\npattern = \"p\"\njustification = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }
}
