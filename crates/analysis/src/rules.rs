//! The five invariant rules.
//!
//! Each rule walks the test-stripped token stream of one (or, for wire
//! exhaustiveness, several) source files and emits [`Finding`]s.  Rules are purely
//! lexical — see the module docs on [`crate::lexer`] for why — and every finding
//! carries the rule id, file, line, source snippet and a human-readable message, so
//! the allowlist can pin exemptions to specific sites.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{fn_spans, innermost_fn, FnSpan, Tok, TokKind};
use crate::report::Finding;

/// A lexed source file, ready for the rules.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Test-stripped token stream.
    pub toks: Vec<Tok>,
    /// Raw source lines (1-based indexing via `line - 1`), for snippets.
    pub lines: Vec<String>,
    /// Function-body extents over `toks`.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Build a [`SourceFile`] from raw text.
    pub fn new(rel: String, text: &str) -> SourceFile {
        let toks = crate::lexer::strip_test_code(&crate::lexer::lex(text));
        let fns = fn_spans(&toks);
        SourceFile { rel, toks, lines: text.lines().map(str::to_string).collect(), fns }
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn finding(&self, rule: &str, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: self.rel.clone(),
            line,
            snippet: self.snippet(line),
            message,
        }
    }
}

/// True when `rel` matches one of the configured paths: exact match for `.rs` entries,
/// directory-prefix match otherwise.
fn path_matches(rel: &str, entries: &[String]) -> bool {
    entries.iter().any(|e| {
        if e.ends_with(".rs") {
            rel == e
        } else {
            rel.strip_prefix(e.as_str()).is_some_and(|r| r.starts_with('/')) || rel == *e
        }
    })
}

/// True when identifier `name` matches the call pattern (trailing `*` = prefix match).
fn call_matches(name: &str, pattern: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pattern,
    }
}

/// Rule 1 — decrypt confinement: `decrypt*` calls only inside the audited modules, and
/// every decrypting function in the S2 engine must record to the leakage ledger.
pub fn decrypt_confinement(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.decrypt.calls.is_empty() {
        return;
    }
    let audited = path_matches(&f.rel, &cfg.decrypt.audited);
    let is_engine = path_matches(&f.rel, &cfg.decrypt.engine_files);
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        if t.kind != TokKind::Ident || !cfg.decrypt.calls.iter().any(|p| call_matches(&t.text, p)) {
            continue;
        }
        if !f.toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue; // not a call
        }
        if i > 0 && f.toks[i - 1].is_ident("fn") {
            continue; // a definition, not a call
        }
        if !audited {
            out.push(f.finding(
                "decrypt-confinement",
                t.line,
                format!(
                    "`{}` call outside the audited decrypt modules — plaintext must only \
                     appear in the S2 engine or the crypto crate",
                    t.text
                ),
            ));
        } else if is_engine {
            let paired = innermost_fn(&f.fns, i).is_some_and(|span| {
                (span.start..=span.end).any(|k| {
                    f.toks[k].kind == TokKind::Ident
                        && cfg.decrypt.ledger_markers.contains(&f.toks[k].text)
                        && f.toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                })
            });
            if !paired {
                let fn_name = innermost_fn(&f.fns, i)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| "<top level>".into());
                out.push(f.finding(
                    "decrypt-confinement",
                    t.line,
                    format!(
                        "engine-side reveal `{}` in fn `{fn_name}` has no LeakageLedger \
                         record in the same function",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Rule 2 — determinism discipline: no ambient randomness or wall-clock reads in the
/// protocol/crypto compute paths.
pub fn determinism(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&f.rel, &cfg.determinism.scopes) {
        return;
    }
    for banned in &cfg.determinism.banned {
        let segs: Vec<&str> = banned.split("::").collect();
        for i in 0..f.toks.len() {
            if !f.toks[i].is_ident(segs[0]) {
                continue;
            }
            // Multi-segment paths must be followed by `::seg` for each further segment.
            let mut j = i;
            let mut matched = true;
            for seg in &segs[1..] {
                if f.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && f.toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    && f.toks.get(j + 3).is_some_and(|t| t.is_ident(seg))
                {
                    j += 3;
                } else {
                    matched = false;
                    break;
                }
            }
            if !matched || (i > 0 && f.toks[i - 1].is_ident("fn")) {
                continue;
            }
            out.push(f.finding(
                "determinism",
                f.toks[i].line,
                format!(
                    "`{banned}` in a deterministic compute path — randomness must come from \
                     seeded session RNGs and clock reads must stay behind sectopk-metrics \
                     handles"
                ),
            ));
        }
    }
}

/// Rule 3 — serving-path panic-freedom: no `unwrap`/`expect`/panicking macros/raw
/// indexing in the request/reply path.
pub fn panic_freedom(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&f.rel, &cfg.panic.paths) {
        return;
    }
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        // `.unwrap()` / `.expect(` method calls.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && f.toks[i - 1].is_punct('.')
            && f.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(f.finding(
                "panic-freedom",
                t.line,
                format!(
                    "`.{}()` on the serving path — return a typed ProtocolError/WireError \
                     instead; the session must survive",
                    t.text
                ),
            ));
            continue;
        }
        // panic!/unreachable!/todo!/unimplemented! macros.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && f.toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(f.finding(
                "panic-freedom",
                t.line,
                format!("`{}!` on the serving path — the session must survive", t.text),
            ));
            continue;
        }
        // Raw index expressions: `[` directly after an expression-ending token.
        if t.is_punct('[') && i > 0 {
            let prev = &f.toks[i - 1];
            let indexes_expr = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                || prev.kind == TokKind::Number
                || prev.is_punct(')')
                || prev.is_punct(']')
                || prev.is_punct('?');
            if indexes_expr {
                out.push(
                    f.finding(
                        "panic-freedom",
                        t.line,
                        "raw index expression on the serving path — use `.get(..)` and return \
                     a typed error on out-of-range"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Keywords that can directly precede `[` without forming an index expression
/// (e.g. `return [a, b]`, `in [1, 2]`).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "in"
            | "break"
            | "match"
            | "if"
            | "else"
            | "while"
            | "loop"
            | "move"
            | "mut"
            | "ref"
            | "box"
            | "as"
            | "const"
            | "static"
            | "use"
            | "crate"
    )
}

/// Rule 4 — secret hygiene: no `Debug`/`Display` derives or impls on key-material
/// types, and no secret identifiers inside formatting macros.
pub fn secret_hygiene(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.secret.types.is_empty() && cfg.secret.idents.is_empty() {
        return;
    }
    derive_on_secret_types(f, cfg, out);
    impl_on_secret_types(f, cfg, out);
    secret_in_format_macros(f, cfg, out);
}

fn derive_on_secret_types(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        if !(t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union")) {
            continue;
        }
        let Some(name) = f.toks.get(i + 1) else { continue };
        if name.kind != TokKind::Ident || !cfg.secret.types.contains(&name.text) {
            continue;
        }
        // Walk backward over visibility modifiers and attributes, inspecting each
        // `#[derive(..)]` for Debug/Display.
        let mut j = i as isize - 1;
        while j >= 0 {
            let tok = &f.toks[j as usize];
            if tok.is_punct(']') {
                // Find the opening `[` and the `#` before it.
                let close = j as usize;
                let mut depth = 0i32;
                let mut open = close;
                for k in (0..=close).rev() {
                    if f.toks[k].is_punct(']') {
                        depth += 1;
                    } else if f.toks[k].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            open = k;
                            break;
                        }
                    }
                }
                let attr = &f.toks[open + 1..close];
                if attr.first().is_some_and(|a| a.is_ident("derive")) {
                    for d in attr {
                        if d.is_ident("Debug") || d.is_ident("Display") {
                            out.push(f.finding(
                                "secret-hygiene",
                                f.toks[open].line,
                                format!(
                                    "secret-key type `{}` derives `{}` — key material \
                                     must never be formatted; implement a redacted \
                                     formatter instead",
                                    name.text, d.text
                                ),
                            ));
                        }
                    }
                }
                j = open as isize - 2; // past the `#`
            } else if tok.kind == TokKind::Ident
                && matches!(tok.text.as_str(), "pub" | "crate" | "super" | "in" | "self")
                || tok.is_punct('(')
                || tok.is_punct(')')
            {
                j -= 1;
            } else {
                break;
            }
        }
    }
}

fn impl_on_secret_types(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    for i in 0..f.toks.len() {
        if !f.toks[i].is_ident("impl") {
            continue;
        }
        // Scan the impl header: `impl<..> Trait for Type {`.
        let mut for_pos = None;
        let mut body = None;
        for (k, t) in f.toks.iter().enumerate().skip(i + 1).take(64) {
            if t.is_ident("for") && for_pos.is_none() {
                for_pos = Some(k);
            }
            if t.is_punct('{') || t.is_punct(';') {
                body = Some(k);
                break;
            }
        }
        let (Some(for_pos), Some(body)) = (for_pos, body) else { continue };
        let trait_part = &f.toks[i + 1..for_pos];
        let type_part = &f.toks[for_pos + 1..body];
        let fmt_trait = trait_part.iter().find(|t| t.is_ident("Debug") || t.is_ident("Display"));
        let secret = type_part
            .iter()
            .find(|t| t.kind == TokKind::Ident && cfg.secret.types.contains(&t.text));
        if let (Some(tr), Some(ty)) = (fmt_trait, secret) {
            out.push(f.finding(
                "secret-hygiene",
                f.toks[i].line,
                format!(
                    "manual `{}` impl for secret-key type `{}` — must be allowlisted as an \
                     audited redacted formatter",
                    tr.text, ty.text
                ),
            ));
        }
    }
}

fn secret_in_format_macros(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.secret.idents.is_empty() {
        return;
    }
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        if t.kind != TokKind::Ident
            || !cfg.secret.fmt_macros.contains(&t.text)
            || !f.toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            continue;
        }
        if !f.toks.get(i + 2).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Scan the macro's argument span.
        let mut depth = 0i32;
        for k in i + 2..f.toks.len() {
            let a = &f.toks[k];
            if a.is_punct('(') {
                depth += 1;
            } else if a.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if a.kind == TokKind::Ident && cfg.secret.idents.contains(&a.text) {
                out.push(f.finding(
                    "secret-hygiene",
                    a.line,
                    format!(
                        "secret `{}` passed to `{}!` — never format key material",
                        a.text, t.text
                    ),
                ));
            }
            if a.kind == TokKind::Str {
                for ident in &cfg.secret.idents {
                    if a.text.contains(&format!("{{{ident}}}"))
                        || a.text.contains(&format!("{{{ident}:"))
                    {
                        out.push(f.finding(
                            "secret-hygiene",
                            a.line,
                            format!(
                                "format-string capture of secret `{ident}` in `{}!` — never \
                                 format key material",
                                t.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Rule 5 — wire exhaustiveness: every request variant has a handler arm, the
/// error-code `ALL` const covers each code exactly once, and code names are unique.
pub fn wire_exhaustiveness(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    let Some(wire) = &cfg.wire else { return };
    let req_file = files.iter().find(|f| f.rel == wire.request_enum_file);
    let handler_file = files.iter().find(|f| f.rel == wire.handler_file);
    if let (Some(req), Some(handler)) = (req_file, handler_file) {
        let variants = enum_variants(req, &wire.request_enum);
        let refs: BTreeSet<String> = path_refs(handler, &wire.request_enum);
        for (variant, line) in &variants {
            if !refs.contains(variant) {
                out.push(req.finding(
                    "wire-exhaustiveness",
                    *line,
                    format!(
                        "`{}::{variant}` has no handler arm in {} — the engine must \
                         answer every request shape",
                        wire.request_enum, wire.handler_file
                    ),
                ));
            }
        }
    }
    let Some(err) = files.iter().find(|f| f.rel == wire.error_enum_file) else { return };
    let variants = enum_variants(err, &wire.error_enum);
    let all = const_array_refs(err, &wire.all_const, &wire.error_enum);
    if let Some((all_line, entries)) = all {
        let mut seen = BTreeSet::new();
        for (entry, line) in &entries {
            if !seen.insert(entry.clone()) {
                out.push(err.finding(
                    "wire-exhaustiveness",
                    *line,
                    format!(
                        "duplicate `{}::{entry}` in `{}` — wire error codes must be unique",
                        wire.error_enum, wire.all_const
                    ),
                ));
            }
        }
        for (variant, _) in &variants {
            if !entries.iter().any(|(e, _)| e == variant) {
                out.push(err.finding(
                    "wire-exhaustiveness",
                    all_line,
                    format!(
                        "`{}::{variant}` is missing from `{}` — exhaustive tests and log \
                         tooling iterate it",
                        wire.error_enum, wire.all_const
                    ),
                ));
            }
        }
    }
    // Stable names must be pairwise distinct.
    let mut seen = BTreeSet::new();
    for (name, line) in fn_string_literals(err, &wire.name_fn) {
        if !seen.insert(name.clone()) {
            out.push(err.finding(
                "wire-exhaustiveness",
                line,
                format!("duplicate wire error name `{name}` in `fn {}`", wire.name_fn),
            ));
        }
    }
}

/// Collect `(variant, line)` for each variant of `enum name { .. }` in `f`.
fn enum_variants(f: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let Some(pos) = (0..f.toks.len()).find(|&i| {
        f.toks[i].is_ident("enum") && f.toks.get(i + 1).is_some_and(|t| t.is_ident(name))
    }) else {
        return variants;
    };
    let Some(open) = (pos..f.toks.len()).find(|&i| f.toks[i].is_punct('{')) else {
        return variants;
    };
    let mut depth = 0i32;
    let mut expecting = true;
    let mut k = open;
    while k < f.toks.len() {
        let t = &f.toks[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 && t.is_punct('}') {
                break;
            }
        } else if depth == 1 {
            if t.is_punct('#') {
                // Skip the attribute span.
                let mut d = 0i32;
                k += 1;
                while k < f.toks.len() {
                    if f.toks[k].is_punct('[') {
                        d += 1;
                    } else if f.toks[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
            } else if expecting && t.kind == TokKind::Ident {
                variants.push((t.text.clone(), t.line));
                expecting = false;
            } else if t.is_punct(',') {
                expecting = true;
            }
        }
        k += 1;
    }
    variants
}

/// Collect the set of `X` in `prefix::X` path references in `f`.
fn path_refs(f: &SourceFile, prefix: &str) -> BTreeSet<String> {
    let mut refs = BTreeSet::new();
    for i in 0..f.toks.len() {
        if f.toks[i].is_ident(prefix)
            && f.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && f.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = f.toks.get(i + 3).filter(|t| t.kind == TokKind::Ident) {
                refs.insert(v.text.clone());
            }
        }
    }
    refs
}

/// Parse `const NAME: .. = [ Enum::A, Enum::B, .. ]`, returning the const's line and
/// each `(variant, line)` entry in order (duplicates preserved).
fn const_array_refs(
    f: &SourceFile,
    const_name: &str,
    enum_name: &str,
) -> Option<(u32, Vec<(String, u32)>)> {
    let pos = (0..f.toks.len()).find(|&i| f.toks[i].is_ident(const_name))?;
    let open = (pos..f.toks.len()).find(|&i| f.toks[i].is_punct('['))?;
    // The first `[` after the const name may be the type's `[T; N]` — find the `[`
    // that comes after the `=`.
    let eq = (pos..f.toks.len()).find(|&i| f.toks[i].is_punct('='))?;
    let open = (eq.max(open)..f.toks.len()).find(|&i| i > eq && f.toks[i].is_punct('['))?;
    let mut entries = Vec::new();
    let mut depth = 0i32;
    let mut k = open;
    while k < f.toks.len() {
        let t = &f.toks[k];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident(enum_name)
            && f.toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && f.toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
        {
            if let Some(v) = f.toks.get(k + 3).filter(|n| n.kind == TokKind::Ident) {
                entries.push((v.text.clone(), v.line));
                k += 3;
            }
        }
        k += 1;
    }
    Some((f.toks[pos].line, entries))
}

/// Collect `(string, line)` for every string literal inside `fn name`'s body.
fn fn_string_literals(f: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let Some(span) = f.fns.iter().find(|s| s.name == name) else { return Vec::new() };
    f.toks[span.start..=span.end]
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| (t.text.clone(), t.line))
        .collect()
}
