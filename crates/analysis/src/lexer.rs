//! A minimal Rust lexer — just enough fidelity for token-level invariant rules.
//!
//! The analyzer deliberately does not parse Rust (no `syn` in an offline workspace, and
//! the rules only need token shapes): this module turns source text into a stream of
//! identifier / number / string / punctuation tokens with line numbers, handling the
//! lexical constructs that would otherwise produce false matches — nested block
//! comments, cooked and raw (byte) strings, char literals vs. lifetimes.  Two
//! post-passes provide the structure the rules need: [`strip_test_code`] removes
//! `#[cfg(test)]` / `#[test]` items, and [`fn_spans`] recovers function-body extents so
//! rules can reason about "in the same function".

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (integer part only; `1.5` lexes as `1`, `.`, `5`).
    Number,
    /// A string literal; `text` holds the contents without quotes or prefix.
    Str,
    /// A single punctuation character.
    Punct,
}

/// One token with the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (contents only, for strings).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, p: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(p)
    }

    /// True when this token is an identifier with exactly the given text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Lex `src` into tokens, discarding comments and whitespace.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let len = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < len {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments (line, and nested block).
        if c == '/' && i + 1 < len {
            if chars[i + 1] == '/' {
                while i < len && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                let mut depth = 1;
                i += 2;
                while i < len && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < len && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < len && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br"", br#""# — and byte chars b''.
        if c == 'r' || c == 'b' {
            if let Some(next) = try_lex_prefixed_literal(&chars, i, &mut line, &mut toks) {
                i = next;
                continue;
            }
        }
        // Cooked strings.
        if c == '"' {
            i = lex_cooked_string(&chars, i, &mut line, &mut toks);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            i = lex_quote(&chars, i, &mut line);
            continue;
        }
        // Identifiers.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < len && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: chars[start..i].iter().collect(), line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < len && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Number, text: chars[start..i].iter().collect(), line });
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

/// Try to lex a literal starting with an `r` / `b` / `br` prefix at `i`; returns the
/// index just past the literal, or `None` when `i` starts a plain identifier.
fn try_lex_prefixed_literal(
    chars: &[char],
    i: usize,
    line: &mut u32,
    toks: &mut Vec<Tok>,
) -> Option<usize> {
    let len = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        // Byte char literal b'x'.
        if j < len && chars[j] == '\'' {
            return Some(lex_quote(chars, j, line));
        }
        if j < len && chars[j] == '"' {
            return Some(lex_cooked_string(chars, j, line, toks));
        }
    }
    if j < len && chars[j] == 'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < len && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < len && chars[j] == '"' {
            // Raw string: scan for `"` followed by `hashes` hash marks.
            let start_line = *line;
            j += 1;
            let content_start = j;
            while j < len {
                if chars[j] == '\n' {
                    *line += 1;
                    j += 1;
                    continue;
                }
                if chars[j] == '"'
                    && chars[j + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes
                {
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: chars[content_start..j].iter().collect(),
                        line: start_line,
                    });
                    return Some(j + 1 + hashes);
                }
                j += 1;
            }
            return Some(j);
        }
    }
    None
}

/// Lex a cooked (escaped) string literal whose opening quote is at `i`; returns the
/// index just past the closing quote.
fn lex_cooked_string(chars: &[char], i: usize, line: &mut u32, toks: &mut Vec<Tok>) -> usize {
    let len = chars.len();
    let start_line = *line;
    let mut j = i + 1;
    let content_start = j;
    while j < len {
        match chars[j] {
            '\\' => {
                // A string line-continuation escapes the newline itself; keep counting.
                if j + 1 < len && chars[j + 1] == '\n' {
                    *line += 1;
                }
                j += 2;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => {
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: chars[content_start..j].iter().collect(),
                    line: start_line,
                });
                return j + 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Lex a `'`-introduced construct (char literal or lifetime) starting at `i`; returns
/// the index just past it.  Lifetimes and char literals produce no token — no rule
/// needs them.
fn lex_quote(chars: &[char], i: usize, line: &mut u32) -> usize {
    let len = chars.len();
    // Escaped char literal: '\n', '\'', '\u{..}', '\x41'.  The char after the
    // backslash is always part of the escape — skip it before looking for the
    // closing quote (it may itself be a quote, as in '\'').
    if i + 1 < len && chars[i + 1] == '\\' {
        let mut j = i + 3;
        while j < len && chars[j] != '\'' {
            if chars[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
        return j + 1;
    }
    // Lifetime: 'a not followed by a closing quote.
    if i + 2 < len
        && (chars[i + 1].is_alphanumeric() || chars[i + 1] == '_')
        && chars[i + 2] != '\''
    {
        let mut j = i + 1;
        while j < len && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return j;
    }
    // Plain char literal 'x'.
    (i + 2).min(len) + 1
}

/// Remove `#[cfg(test)]` / `#[test]`-gated items from a token stream, so rules only see
/// code that ships in a release build.
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let end = match_bracket(toks, i + 1);
            if is_test_attr(&toks[i + 2..end]) {
                i = end + 1;
                // Skip any stacked attributes on the same item, then the item itself.
                while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
                    i = match_bracket(toks, i + 1) + 1;
                }
                i = skip_item(toks, i);
                continue;
            }
            out.extend(toks[i..=end.min(toks.len() - 1)].iter().cloned());
            i = end + 1;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// True when the attribute tokens (between `#[` and `]`) gate the item to test builds.
fn is_test_attr(inner: &[Tok]) -> bool {
    match inner.first() {
        Some(first) if first.is_ident("test") => true,
        Some(first) if first.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open` (or the last token when unbalanced).
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len() - 1
}

/// Skip one item starting at `i`: to the `;` ending a braceless item, or past the `}`
/// matching the item's first `{`.  Returns the index just past the item.
fn skip_item(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// A function body recovered from the token stream.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the body's opening `{`.
    pub start: usize,
    /// Token index of the body's closing `}`.
    pub end: usize,
}

/// Recover every function body extent in a (test-stripped) token stream.  Nested
/// functions produce nested spans; callers wanting "the enclosing function" should pick
/// the innermost span containing their token (see [`innermost_fn`]).
pub fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` pointer type, not a definition
        }
        // The next `{` before a `;` opens the body (trait signatures have none).
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                body = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(start) = body else { continue };
        let mut depth = 0i32;
        let mut end = start;
        for (k, t) in toks.iter().enumerate().skip(start) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        spans.push(FnSpan { name: name_tok.text.clone(), start, end });
    }
    spans
}

/// The innermost function span containing token index `i`, if any.
pub fn innermost_fn(spans: &[FnSpan], i: usize) -> Option<&FnSpan> {
    spans.iter().filter(|s| s.start <= i && i <= s.end).min_by_key(|s| s.end - s.start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_skipped() {
        let toks = lex("let x = 1; // unwrap()\n/* .expect( */ let s = \".unwrap()\";");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap") || t.is_ident("expect")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str && t.text == ".unwrap()"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let r = r#\"panic!()\"#; let c = 'x'; }");
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str && t.text == "panic!()"));
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("/* a\nb */\nlet y = \"s1\ns2\";\nlet z = 3;");
        let z = toks.iter().find(|t| t.is_ident("z")).unwrap();
        assert_eq!(z.line, 5);
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let toks =
            lex("fn keep() {}\n#[cfg(test)]\nmod tests { fn bad() { x.unwrap(); } }\nfn also() {}");
        let stripped = strip_test_code(&toks);
        assert!(stripped.iter().any(|t| t.is_ident("keep")));
        assert!(stripped.iter().any(|t| t.is_ident("also")));
        assert!(!stripped.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn fn_spans_find_innermost() {
        let toks = lex("fn outer() { fn inner() { mark(); } }");
        let spans = fn_spans(&toks);
        assert_eq!(spans.len(), 2);
        let mark = toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(innermost_fn(&spans, mark).unwrap().name, "inner");
    }
}
