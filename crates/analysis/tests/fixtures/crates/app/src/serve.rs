//! Fixture: a panic site on the serving path (rule 3 violation at line 5).

pub fn route(table: &Table, key: u64) -> Reply {
    // VIOLATION[panic-freedom]: `.unwrap()` on the serving path.
    table.lookup(key).unwrap()
}

pub fn safe(table: &Table, key: u64) -> Option<Reply> {
    table.lookup(key) // returning the Option is fine
}
