//! Fixture: a wall-clock read in a deterministic scope (rule 2 violation at line 5).

pub fn stamp() -> Instant {
    // VIOLATION[determinism]: ambient clock read in a compute path.
    Instant::now()
}

pub fn from_instant_now() {} // an ident mentioning the segments is not a path match
