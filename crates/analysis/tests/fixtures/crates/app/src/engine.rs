//! Fixture: the audited engine file.  `reveal_paired` records its reveal and is
//! clean; `reveal_unpaired` does not (rule 1 engine-pairing violation at line 12).

pub fn reveal_paired(&mut self, c: &Ciphertext) -> u64 {
    let v = self.keys.decrypt(c);
    self.ledger.record(Event::Reveal);
    v
}

pub fn reveal_unpaired(&mut self, c: &Ciphertext) -> u64 {
    // VIOLATION[decrypt-confinement]: engine-side reveal with no ledger record.
    self.keys.decrypt(c)
}
