//! Fixture: the handler that answers only `Req::Ping`.

pub fn handle(req: &Req) -> Reply {
    match req {
        Req::Ping => Reply::Pong,
    }
}
