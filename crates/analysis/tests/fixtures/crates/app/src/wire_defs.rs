//! Fixture: the request and error-code enums for the wire-exhaustiveness rule.
//! `Req::Pong` has no handler arm in handler.rs (rule 5 violation at line 7).

pub enum Req {
    Ping,
    // VIOLATION[wire-exhaustiveness]: no handler arm for this variant.
    Pong,
}

pub enum Code {
    Alpha,
    Beta,
}

impl Code {
    pub const ALL: [Code; 2] = [Code::Alpha, Code::Beta];

    pub fn name(self) -> &'static str {
        match self {
            Code::Alpha => "alpha",
            Code::Beta => "beta",
        }
    }
}
