//! Fixture: a secret-key type deriving Debug (rule 4 violation at line 4).

// VIOLATION[secret-hygiene]: key material must never be formatted.
#[derive(Clone, Debug)]
pub struct TestSecretKey {
    pub bytes: [u8; 32],
}

#[derive(Clone, Debug)]
pub struct PublicThing; // non-secret types may derive Debug freely
