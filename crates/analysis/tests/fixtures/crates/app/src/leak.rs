//! Fixture: a decrypt call outside the audited modules (rule 1 violation at line 5).

pub fn peek(sk: &SecretKey, c: &Ciphertext) -> u64 {
    // VIOLATION[decrypt-confinement]: plaintext revealed outside the audited modules.
    sk.decrypt(c)
}

#[cfg(test)]
mod tests {
    // Test code is stripped: this decrypt must NOT be reported.
    fn in_tests(sk: &super::SecretKey, c: &super::Ciphertext) -> u64 {
        sk.decrypt(c)
    }
}
