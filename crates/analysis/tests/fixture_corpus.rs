//! The analyzer against a seeded fixture corpus: every rule must fire exactly where
//! the fixture plants its violation (correct rule id, file and line), the allowlist
//! must both suppress matched sites and flag stale entries, and the JSON rendering
//! must stay byte-stable (`tests/fixtures/expected.json`; regenerate with
//! `SECTOPK_BLESS=1 cargo test -p sectopk-lint --test fixture_corpus`).

use std::path::{Path, PathBuf};

use sectopk_lint::report::Report;
use sectopk_lint::{Config, Finding};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

const FIXTURE_CONFIG: &str = r#"
[decrypt_confinement]
audited = ["crates/app/src/engine.rs"]
calls = ["decrypt"]
engine_files = ["crates/app/src/engine.rs"]
ledger_markers = ["record"]

[determinism]
scopes = ["crates/app"]
banned = ["Instant::now", "thread_rng"]

[panic_freedom]
paths = ["crates/app/src/serve.rs"]

[secret_hygiene]
types = ["TestSecretKey"]
idents = ["test_secret"]
fmt_macros = ["println"]

[wire_exhaustiveness]
request_enum_file = "crates/app/src/wire_defs.rs"
request_enum = "Req"
handler_file = "crates/app/src/handler.rs"
error_enum_file = "crates/app/src/wire_defs.rs"
error_enum = "Code"
all_const = "ALL"
name_fn = "name"
"#;

fn run_fixture() -> Report {
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    sectopk_lint::run(&fixture_root(), &cfg).expect("fixture tree analyzes")
}

fn has(findings: &[Finding], rule: &str, file: &str, line: u32) -> bool {
    findings.iter().any(|f| f.rule == rule && f.file == file && f.line == line)
}

/// Every seeded violation is detected at its exact rule id, file and line — and
/// nothing else is: the clean lines around each seed stay silent.
#[test]
fn every_seeded_violation_is_found() {
    let report = run_fixture();
    let f = &report.findings;
    assert!(has(f, "decrypt-confinement", "crates/app/src/leak.rs", 5), "{f:?}");
    assert!(has(f, "decrypt-confinement", "crates/app/src/engine.rs", 12), "{f:?}");
    assert!(has(f, "determinism", "crates/app/src/clock.rs", 5), "{f:?}");
    assert!(has(f, "panic-freedom", "crates/app/src/serve.rs", 5), "{f:?}");
    assert!(has(f, "secret-hygiene", "crates/app/src/secrets.rs", 4), "{f:?}");
    assert!(has(f, "wire-exhaustiveness", "crates/app/src/wire_defs.rs", 7), "{f:?}");
    assert_eq!(f.len(), 6, "exactly the seeded violations: {f:?}");
    // The paired engine reveal, the `#[cfg(test)]` decrypt, the non-secret Debug
    // derive and the handled `Req::Ping` variant are all clean by construction.
    assert!(report.allowed.is_empty());
    assert!(report.unused_allow_entries.is_empty());
}

/// A matching allowlist entry suppresses its finding; an entry that matches nothing
/// is reported as stale, and either way a non-clean condition remains non-clean.
#[test]
fn allowlist_suppresses_and_stale_entries_fail() {
    let allow = r#"
[[allow]]
rule = "panic-freedom"
file = "crates/app/src/serve.rs"
pattern = "table.lookup(key).unwrap()"
justification = "Fixture: demonstrates a justified exemption."
"#;
    let cfg = Config::parse(&format!("{FIXTURE_CONFIG}{allow}")).expect("config parses");
    let report = sectopk_lint::run(&fixture_root(), &cfg).expect("fixture tree analyzes");
    assert_eq!(report.findings.len(), 5, "one finding suppressed: {:?}", report.findings);
    assert!(!has(&report.findings, "panic-freedom", "crates/app/src/serve.rs", 5));
    assert_eq!(report.allowed.len(), 1);
    assert!(report.unused_allow_entries.is_empty());
    assert!(!report.is_clean(), "five violations remain");

    let stale = r#"
[[allow]]
rule = "panic-freedom"
file = "crates/app/src/serve.rs"
pattern = "no such snippet anywhere"
justification = "Fixture: a stale exemption that must be flagged."
"#;
    let cfg = Config::parse(&format!("{FIXTURE_CONFIG}{stale}")).expect("config parses");
    let report = sectopk_lint::run(&fixture_root(), &cfg).expect("fixture tree analyzes");
    assert_eq!(report.findings.len(), 6, "nothing suppressed");
    assert_eq!(report.unused_allow_entries.len(), 1);
    assert!(!report.is_clean());
}

/// An allowlist entry must carry a non-empty justification — the config rejects it.
#[test]
fn allow_entry_requires_justification() {
    let missing = r#"
[[allow]]
rule = "panic-freedom"
file = "crates/app/src/serve.rs"
pattern = "unwrap"
justification = ""
"#;
    let err = Config::parse(&format!("{FIXTURE_CONFIG}{missing}")).unwrap_err();
    assert!(err.contains("justification"), "{err}");
}

/// The JSON rendering is byte-stable: findings are sorted, keys are ordered, and the
/// snapshot only changes when the fixtures or the rules deliberately change.
#[test]
fn json_snapshot_is_stable() {
    let report = run_fixture();
    let json = report.to_json();
    let path = fixture_root().join("expected.json");
    if std::env::var_os("SECTOPK_BLESS").is_some() {
        std::fs::write(&path, &json).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).expect(
        "tests/fixtures/expected.json missing — bless with SECTOPK_BLESS=1 cargo test \
         -p sectopk-lint --test fixture_corpus",
    );
    assert_eq!(json, expected, "JSON report drifted; re-bless if intentional");
}

/// Determinism of the analyzer itself: two runs over the same tree produce identical
/// reports (file walk order is sorted, not directory-order dependent).
#[test]
fn repeated_runs_are_identical() {
    assert_eq!(run_fixture().to_json(), run_fixture().to_json());
}
