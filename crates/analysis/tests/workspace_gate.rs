//! The analyzer against the real workspace: the tree must be clean under the
//! checked-in `lints.toml`, every allowlist entry must still be load-bearing
//! (removing any single one fails the run), and the audited rule sections must
//! stay wired to the real protocol surface.

use std::path::{Path, PathBuf};

use sectopk_lint::report::Report;
use sectopk_lint::Config;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn real_config() -> Config {
    Config::load(&workspace_root().join("lints.toml")).expect("lints.toml loads")
}

/// The CI gate in test form: zero non-allowlisted findings and zero stale allowlist
/// entries on the committed tree.
#[test]
fn workspace_is_clean() {
    let cfg = real_config();
    let report = sectopk_lint::run(&workspace_root(), &cfg).expect("workspace analyzes");
    assert!(report.is_clean(), "workspace lint is not clean:\n{}", report.render_text());
    assert!(report.files_analyzed > 50, "walked the whole workspace");
    assert!(!report.allowed.is_empty(), "the audited exemptions are exercised");
}

/// Every allowlist entry is load-bearing: removing any single one surfaces the
/// violation(s) it justified, so stale-looking entries cannot accumulate silently.
#[test]
fn removing_any_allow_entry_fails_the_run() {
    let cfg = real_config();
    // One analysis pass with an empty allowlist yields the raw findings; each
    // subset allowlist is then applied without re-lexing the tree.
    let mut bare = cfg.clone();
    bare.allow.clear();
    let raw = sectopk_lint::run(&workspace_root(), &bare).expect("workspace analyzes");
    assert!(!raw.findings.is_empty(), "the allowlist exists for a reason");
    for removed in 0..cfg.allow.len() {
        let subset: Vec<_> = cfg
            .allow
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, e)| e.clone())
            .collect();
        let report = Report::assemble(raw.findings.clone(), &subset, raw.files_analyzed);
        assert!(
            !report.findings.is_empty(),
            "allowlist entry #{removed} ({} in {}) no longer matters — remove it",
            cfg.allow[removed].rule,
            cfg.allow[removed].file,
        );
    }
}

/// The wire section of `lints.toml` points at the real protocol surface: the request
/// enum, handler and error enum named there must exist, or the exhaustiveness rule
/// would silently check nothing.
#[test]
fn wire_rule_is_wired_to_real_files() {
    let cfg = real_config();
    let wire = cfg.wire.as_ref().expect("wire rule configured");
    let root = workspace_root();
    for file in [&wire.request_enum_file, &wire.handler_file, &wire.error_enum_file] {
        assert!(root.join(file).is_file(), "lints.toml names a missing file: {file}");
    }
}
