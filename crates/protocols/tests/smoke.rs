//! Fast standalone smoke test: stand up the two-cloud context and run the encrypted
//! comparison + selection primitives at tiny parameters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::MIN_MODULUS_BITS;
use sectopk_protocols::TwoClouds;

#[test]
fn two_clouds_compare_and_sum() {
    let mut rng = StdRng::seed_from_u64(0x2C);
    let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let mut clouds = TwoClouds::new(&master, 7).expect("cloud setup");

    let pk = clouds.pk().clone();
    let five = pk.encrypt_u64(5, &mut rng).expect("encrypt 5");
    let nine = pk.encrypt_u64(9, &mut rng).expect("encrypt 9");

    // Secure comparison of encrypted values.
    assert!(clouds.enc_compare(&five, &nine, "smoke").expect("compare"));
    assert!(!clouds.enc_compare(&nine, &five, "smoke").expect("compare"));

    // Homomorphic sum stays local to S1 (no decryption involved).
    let sum = clouds.sum_ciphertexts(&[five, nine]);
    assert_eq!(master.paillier_secret.decrypt_u64(&sum).expect("decrypt"), 14);

    // The comparisons above must have crossed the channel at least once.
    assert!(clouds.channel().total_messages() > 0);
}
