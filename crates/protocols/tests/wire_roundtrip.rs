//! Wire-codec conformance fuzzing: `decode(encode(m)) == m` for *every*
//! [`S1Request`] / [`S2Response`] variant, including `Batch` nesting and empty-payload
//! edge cases, with `encoded_len` always agreeing with the actual encoding.
//!
//! The protocol messages are the entire S1 ↔ S2 attack/fault surface: a lossy or
//! ambiguous codec would silently desynchronize the clouds (or leak through framing
//! differences between transports, which meter these exact bytes).  The generators
//! below build structurally random messages around random group elements — not just
//! well-formed encryptions — so the codec is exercised on every byte length and shape.

use proptest::proptest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use num_bigint::BigUint;
use sectopk_crypto::damgard_jurik::LayeredCiphertext;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_ehl::EhlPlus;
use sectopk_protocols::transport::{DedupRequest, EqAggregates, EqWants, FilterTuple};
use sectopk_protocols::wire::{encoded_len, from_bytes, to_bytes};
use sectopk_protocols::{
    EncryptedBlinding, S1Request, S2Response, ScoredItem, WireError, WireErrorCode,
};

fn rand_biguint(rng: &mut StdRng) -> BigUint {
    // 0 to ~33 bytes: covers the empty encoding, single limbs, and multi-limb values.
    let len = rng.gen_range(0usize..34);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    BigUint::from_bytes_be(&bytes)
}

fn rand_ciphertext(rng: &mut StdRng) -> Ciphertext {
    Ciphertext::from_bytes_be(&rand_biguint(rng).to_bytes_be())
}

fn rand_layered(rng: &mut StdRng) -> LayeredCiphertext {
    LayeredCiphertext::from_bytes_be(&rand_biguint(rng).to_bytes_be())
}

fn rand_ciphertexts(rng: &mut StdRng, max: usize) -> Vec<Ciphertext> {
    let n = rng.gen_range(0..=max);
    (0..n).map(|_| rand_ciphertext(rng)).collect()
}

fn rand_layereds(rng: &mut StdRng, max: usize) -> Vec<LayeredCiphertext> {
    let n = rng.gen_range(0..=max);
    (0..n).map(|_| rand_layered(rng)).collect()
}

fn rand_context(rng: &mut StdRng) -> String {
    // Includes the empty string and non-ASCII payloads.
    let choices = ["", "sec_worst", "sec_dedup", "enc_sort", "⊖-équalité"];
    choices[rng.gen_range(0..choices.len())].to_string()
}

fn rand_wants(rng: &mut StdRng) -> EqWants {
    EqWants {
        row_matched: rng.gen(),
        row_unmatched: rng.gen(),
        col_unmatched: rng.gen(),
        row_matched_plain: rng.gen(),
    }
}

fn rand_item(rng: &mut StdRng) -> ScoredItem {
    // EHL+ requires at least one block.
    let blocks = (0..rng.gen_range(1usize..4)).map(|_| rand_ciphertext(rng)).collect();
    ScoredItem {
        ehl: EhlPlus::from_blocks(blocks),
        worst: rand_ciphertext(rng),
        best: rand_ciphertext(rng),
    }
}

fn rand_blinding(rng: &mut StdRng) -> EncryptedBlinding {
    EncryptedBlinding {
        alphas: rand_ciphertexts(rng, 3),
        beta: rand_ciphertext(rng),
        gamma: rand_ciphertext(rng),
    }
}

fn rand_filter_tuple(rng: &mut StdRng) -> FilterTuple {
    let n = rng.gen_range(0usize..3);
    FilterTuple {
        score: rand_ciphertext(rng),
        attributes: (0..n).map(|_| rand_ciphertext(rng)).collect(),
        score_unblinder: rand_ciphertext(rng),
        attribute_masks: (0..n).map(|_| rand_ciphertext(rng)).collect(),
    }
}

/// One random non-`Batch` request per variant index (8 leaf variants).
fn rand_leaf_request(variant: usize, rng: &mut StdRng) -> S1Request {
    match variant {
        0 => S1Request::EqTest {
            diff: rand_ciphertext(rng),
            context: rand_context(rng),
            depth: if rng.gen() { Some(rng.gen_range(0..1000)) } else { None },
            accumulate: rng.gen(),
            reply_bit: rng.gen(),
        },
        1 => {
            let cols = rng.gen_range(1usize..4);
            let rows = rng.gen_range(0usize..4);
            S1Request::EqMatrix {
                diffs: (0..rows * cols).map(|_| rand_ciphertext(rng)).collect(),
                cols,
                context: rand_context(rng),
                depth: if rng.gen() { Some(rng.gen_range(0..1000)) } else { None },
                want: rand_wants(rng),
            }
        }
        2 => S1Request::EqAggregate {
            rows: rng.gen_range(0..100),
            cols: rng.gen_range(0..100),
            want: rand_wants(rng),
        },
        3 => S1Request::Compare { blinded: rand_ciphertexts(rng, 4), context: rand_context(rng) },
        4 => S1Request::Recover { blinded: rand_layereds(rng, 4) },
        5 => {
            let l = rng.gen_range(0usize..3);
            let pairs: Vec<(usize, usize)> =
                (0..l).flat_map(|a| ((a + 1)..l).map(move |b| (a, b))).collect();
            S1Request::Dedup(DedupRequest {
                items: (0..l).map(|_| rand_item(rng)).collect(),
                blindings: (0..l).map(|_| rand_blinding(rng)).collect(),
                matrix: if rng.gen() {
                    Some((0..pairs.len()).map(|_| rand_ciphertext(rng)).collect())
                } else {
                    None
                },
                pair_indices: pairs,
                eliminate: rng.gen(),
                depth: rng.gen_range(0..100),
            })
        }
        6 => S1Request::Filter {
            tuples: (0..rng.gen_range(0usize..3)).map(|_| rand_filter_tuple(rng)).collect(),
        },
        _ => S1Request::MulBlinded {
            pairs: (0..rng.gen_range(0usize..4))
                .map(|_| (rand_ciphertext(rng), rand_ciphertext(rng)))
                .collect(),
        },
    }
}

fn rand_wire_error(rng: &mut StdRng) -> WireError {
    let codes = [
        WireErrorCode::MalformedRequest,
        WireErrorCode::BadSequence,
        WireErrorCode::Codec,
        WireErrorCode::UnknownFrame,
        WireErrorCode::Crypto,
        WireErrorCode::Overloaded,
        WireErrorCode::Internal,
    ];
    WireError::new(codes[rng.gen_range(0..codes.len())], rand_context(rng))
}

/// One random non-`Batch` response per variant index (10 leaf variants).
fn rand_leaf_response(variant: usize, rng: &mut StdRng) -> S2Response {
    match variant {
        0 => S2Response::EqBit(rand_layered(rng)),
        1 => S2Response::Ack,
        2 => S2Response::EqBits { bits: rand_layereds(rng, 4), aggregates: rand_aggregates(rng) },
        3 => S2Response::EqAggregates(rand_aggregates(rng)),
        4 => S2Response::Signs(
            (0..rng.gen_range(0usize..6)).map(|_| rng.gen_range(-1i8..=1)).collect(),
        ),
        5 => S2Response::Recovered(rand_ciphertexts(rng, 4)),
        6 => {
            let l = rng.gen_range(0usize..3);
            S2Response::Dedup {
                items: (0..l).map(|_| rand_item(rng)).collect(),
                blindings: (0..l).map(|_| rand_blinding(rng)).collect(),
            }
        }
        7 => S2Response::Filter {
            survivors: (0..rng.gen_range(0usize..3)).map(|_| rand_filter_tuple(rng)).collect(),
        },
        8 => S2Response::Error(rand_wire_error(rng)),
        _ => S2Response::Products(rand_ciphertexts(rng, 4)),
    }
}

fn rand_aggregates(rng: &mut StdRng) -> EqAggregates {
    EqAggregates {
        row_matched: rand_layereds(rng, 3),
        row_unmatched: rand_layereds(rng, 3),
        col_unmatched: rand_layereds(rng, 3),
        row_matched_plain: (0..rng.gen_range(0usize..4)).map(|_| rng.gen()).collect(),
    }
}

/// Encode, check the length oracle, decode, compare, re-encode, compare bytes.
fn assert_request_round_trips(request: &S1Request) {
    let bytes = to_bytes(request);
    assert_eq!(bytes.len(), encoded_len(request), "encoded_len must match: {request:?}");
    let back: S1Request = from_bytes(&bytes).expect("decode S1Request");
    assert_eq!(&back, request, "request round trip must be lossless");
    assert_eq!(to_bytes(&back), bytes, "re-encoding must be canonical");
}

fn assert_response_round_trips(response: &S2Response) {
    let bytes = to_bytes(response);
    assert_eq!(bytes.len(), encoded_len(response), "encoded_len must match: {response:?}");
    let back: S2Response = from_bytes(&bytes).expect("decode S2Response");
    assert_eq!(&back, response, "response round trip must be lossless");
    assert_eq!(to_bytes(&back), bytes, "re-encoding must be canonical");
}

proptest! {
    #[test]
    fn every_request_variant_round_trips(seed in 0u64..500, variant in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(8).wrapping_add(variant as u64));
        let request = rand_leaf_request(variant, &mut rng);
        assert_request_round_trips(&request);
    }

    #[test]
    fn every_response_variant_round_trips(seed in 0u64..500, variant in 0usize..10) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(10).wrapping_add(variant as u64));
        let response = rand_leaf_response(variant, &mut rng);
        assert_response_round_trips(&response);
    }

    #[test]
    fn batches_of_random_requests_round_trip(seed in 0u64..200, len in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xBA7C4));
        let batch = S1Request::Batch(
            (0..len).map(|_| rand_leaf_request(rng.gen_range(0..8), &mut rng)).collect(),
        );
        assert_request_round_trips(&batch);
        let reply = S2Response::Batch(
            (0..len).map(|_| rand_leaf_response(rng.gen_range(0..10), &mut rng)).collect(),
        );
        assert_response_round_trips(&reply);
    }
}

#[test]
fn empty_payload_edge_cases_round_trip() {
    // The degenerate shapes protocol code can legitimately produce at boundary depths.
    assert_request_round_trips(&S1Request::Batch(Vec::new()));
    assert_request_round_trips(&S1Request::Compare { blinded: Vec::new(), context: String::new() });
    assert_request_round_trips(&S1Request::Recover { blinded: Vec::new() });
    assert_request_round_trips(&S1Request::Filter { tuples: Vec::new() });
    assert_request_round_trips(&S1Request::MulBlinded { pairs: Vec::new() });
    assert_request_round_trips(&S1Request::Dedup(DedupRequest {
        items: Vec::new(),
        blindings: Vec::new(),
        pair_indices: Vec::new(),
        matrix: Some(Vec::new()),
        eliminate: false,
        depth: 0,
    }));
    assert_response_round_trips(&S2Response::Batch(Vec::new()));
    assert_response_round_trips(&S2Response::Ack);
    assert_response_round_trips(&S2Response::Signs(Vec::new()));
    assert_response_round_trips(&S2Response::Error(WireError::malformed(String::new())));
    assert_response_round_trips(&S2Response::EqBits {
        bits: Vec::new(),
        aggregates: EqAggregates::default(),
    });
    // A zero-byte group element (BigUint zero) must survive the byte-string encoding.
    let zero = Ciphertext::from_bytes_be(&[]);
    assert_request_round_trips(&S1Request::Recover { blinded: Vec::new() });
    assert_request_round_trips(&S1Request::Compare { blinded: vec![zero], context: "zero".into() });
}

#[test]
fn error_responses_round_trip_with_arbitrary_text() {
    for text in ["", "plain", "multi\nline", "非 ASCII ✓"] {
        for code in [WireErrorCode::MalformedRequest, WireErrorCode::Crypto] {
            assert_response_round_trips(&S2Response::Error(WireError::new(code, text)));
        }
    }
}
