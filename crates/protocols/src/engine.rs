//! The crypto cloud S2 as a request-processing engine.
//!
//! All S2-side protocol logic lives here: the engine owns the decryption keys, S2's
//! randomness, its [`LeakageLedger`] and the per-session protocol state (the equality
//! bits accumulated by unbatched [`S1Request::EqTest`] rounds).  Sub-protocol code on
//! the S1 side can only reach it through a [`crate::transport::Transport`], so
//! everything S2 observes is an explicit message — the executable counterpart of the
//! paper's non-collusion assumption (§3.2).
//!
//! # Parallel compute, serial commit
//!
//! Every request is processed in three phases so a single (possibly batched) request
//! can use multiple cores without changing a single observable byte:
//!
//! 1. **Validate** — structural checks for *every* item of the request (batches
//!    included, simulating the pending-equality-bit bookkeeping) run before anything
//!    executes, so a malformed item mid-batch can no longer leave earlier items'
//!    ledger entries committed: batches are all-or-nothing.
//! 2. **Compute** — the expensive, *pure* work (every decryption the request needs) is
//!    collected into an ordered op list and executed data-parallel over the shared
//!    `Arc`-backed keys ([`sectopk_crypto::par::par_map`]); results come back in op
//!    order, and the first failed op in that order wins, exactly as in a serial sweep.
//! 3. **Commit** — all effects (leakage-ledger records, pending-eq state, RNG draws,
//!    nonce-pool consumption, response assembly) run serially in original item order.
//!
//! Because phase 2 is pure and phase 3 is byte-identical to the old serial handler,
//! ledgers, metrics and ciphertext streams do not depend on the worker count — the
//! `SECTOPK_INTRA_PARALLEL` suite run asserts exactly that.  The worker count comes
//! from [`S2Engine::set_intra_workers`] (default: the `SECTOPK_INTRA_PARALLEL`
//! environment variable, else 1).

use num_bigint::BigUint;

use sectopk_crypto::bigint::{mod_inverse, random_below, random_invertible};
use sectopk_crypto::damgard_jurik::LayeredCiphertext;
use sectopk_crypto::keys::S2Keys;
use sectopk_crypto::paillier::{Ciphertext, PaillierPublicKey};
use sectopk_crypto::par::par_map;
use sectopk_crypto::pool::RandomnessPool;
use sectopk_crypto::prp::RandomPermutation;
use sectopk_crypto::Result;
use sectopk_ehl::EhlPlus;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_metrics::{Counter, Histogram, Registry};
use serde::{Deserialize, Serialize};

use crate::dedup::EncryptedBlinding;
use crate::items::{rand_blind, rerandomize_item_pooled, ItemBlinding, ScoredItem};
use crate::ledger::{LeakageEvent, LeakageLedger};
use crate::transport::{DedupRequest, EqAggregates, EqWants, FilterTuple, S1Request, S2Response};
use crate::wire::WireError;

/// Result alias for the request handler: engine failures are [`WireError`] frames,
/// shipped back to S1 as typed `S2Response::Error` messages instead of panicking the
/// serving thread.
pub type EngineResult<T> = std::result::Result<T, WireError>;

/// Everything needed to stand up an [`S2Engine`]: the owner's S2 key view, S1's
/// published own public key, and the seed of S2's deterministic randomness.
///
/// This is the *provisioning payload* of the crypto cloud.  In-process transports build
/// the engine directly from it; the TCP transport ships it to the remote `sectopk-s2d`
/// listener during the connection handshake (Figure 1 of the paper: the data owner
/// uploads `(pk_p, sk_p)` to S2 — in a hardened deployment this handshake would run
/// over an authenticated, encrypted channel such as TLS; the reproduction ships it in
/// the clear).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineProvision {
    /// The owner's S2 key view (decryption keys; S2 stores no data).
    pub keys: S2Keys,
    /// S1's own public key `pk'` (the encrypted-blinding channel of SecDedup/SecFilter).
    pub s1_own_public: PaillierPublicKey,
    /// Seed of S2's local randomness and nonce-pool streams.
    pub seed: u64,
}

impl EngineProvision {
    /// Bundle the engine's constituents.
    pub fn new(keys: S2Keys, s1_own_public: PaillierPublicKey, seed: u64) -> Self {
        EngineProvision { keys, s1_own_public, seed }
    }

    /// Build the engine.  Two engines built from equal provisions answer identically —
    /// the transport-equivalence suite depends on that.
    pub fn build(&self) -> S2Engine {
        S2Engine::new(self.keys.clone(), self.s1_own_public.clone(), self.seed)
    }
}

/// Read the default intra-query worker count from `SECTOPK_INTRA_PARALLEL` (≥ 1).
pub fn intra_workers_from_env() -> usize {
    std::env::var("SECTOPK_INTRA_PARALLEL")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// One pure decryption the compute phase must perform, in request order.
enum DecOp<'a> {
    /// Paillier `is_zero` (equality bits of EqTest / EqMatrix / Dedup / Filter).
    IsZero(&'a Ciphertext),
    /// Paillier signed decryption (Compare).
    Signed(&'a Ciphertext),
    /// Paillier plain decryption (MulBlinded operands).
    Plain(&'a Ciphertext),
    /// Damgård–Jurik outer-layer decryption back to an inner ciphertext (Recover).
    DjInner(&'a LayeredCiphertext),
}

/// The result of one [`DecOp`], same order as the op list.
enum DecOut {
    Bit(bool),
    Sign(i8),
    Plain(BigUint),
    Inner(Ciphertext),
}

/// Precomputable nonce consumption of one request: (shared Paillier, shared DJ,
/// S1-own-key Paillier) counts.  Dedup/Filter are upper bounds (every item kept /
/// every tuple surviving); overfilling is harmless because the pool's nonce stream is
/// position-deterministic — nonce *k* never depends on when it was precomputed.
#[derive(Default)]
struct NonceDemand {
    paillier: usize,
    dj: usize,
    own: usize,
}

/// Cached metric handles of one engine — resolved once in
/// [`S2Engine::set_metrics_registry`], recorded lock-free in the handler.  All
/// defaults are no-ops, so an un-instrumented engine records nothing and never reads
/// the clock (see the `sectopk-metrics` crate docs for the determinism contract).
///
/// What lands where:
/// * `engine.requests.<kind>` counters — one per [`S1Request`] variant, deterministic
///   (a batch counts its wrapper *and* each inner request).
/// * `engine.batch_size` — histogram of inner-request counts per [`S1Request::Batch`].
/// * `engine.compute_ops` — histogram of decryption ops per request: the occupancy
///   the parallel compute phase fans out over the intra-query workers.
/// * `engine.handle_nanos` — wall-clock of [`S2Engine::handle`] (timing: asserted
///   structurally only, never on values).
#[derive(Clone, Debug, Default)]
struct EngineMetrics {
    eq_test: Counter,
    eq_matrix: Counter,
    eq_aggregate: Counter,
    compare: Counter,
    recover: Counter,
    dedup: Counter,
    filter: Counter,
    mul_blinded: Counter,
    batch: Counter,
    batch_size: Histogram,
    compute_ops: Histogram,
    handle_nanos: Histogram,
}

impl EngineMetrics {
    fn from_registry(registry: &Registry) -> Self {
        EngineMetrics {
            eq_test: registry.counter("engine.requests.eq_test"),
            eq_matrix: registry.counter("engine.requests.eq_matrix"),
            eq_aggregate: registry.counter("engine.requests.eq_aggregate"),
            compare: registry.counter("engine.requests.compare"),
            recover: registry.counter("engine.requests.recover"),
            dedup: registry.counter("engine.requests.dedup"),
            filter: registry.counter("engine.requests.filter"),
            mul_blinded: registry.counter("engine.requests.mul_blinded"),
            batch: registry.counter("engine.requests.batch"),
            batch_size: registry.histogram("engine.batch_size"),
            compute_ops: registry.histogram("engine.compute_ops"),
            handle_nanos: registry.histogram("engine.handle_nanos"),
        }
    }

    fn count_request(&self, request: &S1Request) {
        match request {
            S1Request::EqTest { .. } => self.eq_test.incr(),
            S1Request::EqMatrix { .. } => self.eq_matrix.incr(),
            S1Request::EqAggregate { .. } => self.eq_aggregate.incr(),
            S1Request::Compare { .. } => self.compare.incr(),
            S1Request::Recover { .. } => self.recover.incr(),
            S1Request::Dedup(_) => self.dedup.incr(),
            S1Request::Filter { .. } => self.filter.incr(),
            S1Request::MulBlinded { .. } => self.mul_blinded.incr(),
            S1Request::Batch(requests) => {
                self.batch.incr();
                self.batch_size.observe(requests.len() as u64);
                for req in requests {
                    self.count_request(req);
                }
            }
        }
    }
}

/// The crypto cloud S2: keys, randomness, nonce pools, ledger, and the request handler.
#[derive(Debug)]
pub struct S2Engine {
    keys: S2Keys,
    /// S1's *own* public key `pk'`, published at setup time; S2 uses it to transport
    /// blinding randomness back to S1 in SecDedup / SecFilter (Algorithms 7 and 12).
    s1_own_public: PaillierPublicKey,
    rng: StdRng,
    /// Precomputed nonces for the *shared* Paillier / DJ keys — every `E2(t)` bit,
    /// re-encryption and item re-randomization the engine returns draws from here.
    pool: RandomnessPool,
    /// Precomputed nonces for S1's own key `pk'` (the encrypted-blinding channel).
    own_pool: RandomnessPool,
    ledger: LeakageLedger,
    /// Equality bits accumulated from unbatched [`S1Request::EqTest`] rounds, consumed
    /// by the next [`S1Request::EqAggregate`] or matrix-less [`S1Request::Dedup`].
    pending_eq: Vec<bool>,
    /// Worker threads the compute phase may use (1 = serial).
    intra_workers: usize,
    /// Cached metric handles (all no-ops until [`S2Engine::set_metrics_registry`]).
    metrics: EngineMetrics,
}

impl S2Engine {
    /// Build the engine from the owner's S2 key view, S1's published own public key, and
    /// a seed for S2's local randomness (the nonce pools derive their streams from the
    /// same seed, so two engines built alike answer identically — the
    /// transport-equivalence tests depend on that).
    pub fn new(keys: S2Keys, s1_own_public: PaillierPublicKey, rng_seed: u64) -> Self {
        let pool = RandomnessPool::with_dj(
            &keys.paillier_public,
            &keys.dj_public,
            rng_seed ^ 0x2002_2002_2002_2002,
        );
        let own_pool = RandomnessPool::new(&s1_own_public, rng_seed ^ 0x3003_3003_3003_3003);
        S2Engine {
            keys,
            s1_own_public,
            rng: StdRng::seed_from_u64(rng_seed),
            pool,
            own_pool,
            ledger: LeakageLedger::new(),
            pending_eq: Vec::new(),
            intra_workers: intra_workers_from_env(),
            metrics: EngineMetrics::default(),
        }
    }

    /// Install metric handles from `registry` (per-request-kind counters, batch-size
    /// and compute-occupancy histograms, handler timing).  Metrics are observe-only:
    /// responses, ledgers and nonce streams are byte-identical with or without them
    /// (pinned by `tests/metrics_invariance.rs`).
    pub fn set_metrics_registry(&mut self, registry: &Registry) {
        self.metrics = EngineMetrics::from_registry(registry);
    }

    /// Number of worker threads the compute phase may use for one request.
    pub fn intra_workers(&self) -> usize {
        self.intra_workers
    }

    /// Set the intra-query worker count (minimum 1; 1 = fully serial).  Results,
    /// ledgers and metrics are byte-identical for every value — only wall-clock
    /// changes.
    pub fn set_intra_workers(&mut self, workers: usize) {
        self.intra_workers = workers.max(1);
    }

    /// Everything S2 has observed beyond its inputs.
    pub fn ledger(&self) -> &LeakageLedger {
        &self.ledger
    }

    /// Clear the ledger and the per-session protocol state (e.g. between queries).
    pub fn reset(&mut self) {
        self.ledger.clear();
        self.pending_eq.clear();
    }

    /// Process one request and produce the response that travels back to S1.
    ///
    /// Failures are typed [`WireError`]s: the transport encodes them as
    /// `S2Response::Error` frames, so a malformed or mis-sequenced request is answered,
    /// not panicked on, and the engine keeps serving subsequent requests.
    ///
    /// Runs the three-phase pipeline of the module doc: validate everything first
    /// (batches are all-or-nothing — no item executes, and no ledger entry commits,
    /// unless the whole request is well-formed), compute all decryptions data-parallel
    /// over [`Self::intra_workers`] threads, then commit every effect serially in
    /// original item order.  Byte-identical to serial execution for any worker count.
    pub fn handle(&mut self, request: &S1Request) -> EngineResult<S2Response> {
        // Observability wrapper: count the request (deterministic) and time the
        // handler (only when a registry is installed — `start` returns `None`, and
        // reads no clock, otherwise).  Nothing below reads a metric back, so the
        // instrumented handler is byte-identical to the bare one.
        let timer = self.metrics.handle_nanos.start();
        self.metrics.count_request(request);
        let result = self.handle_inner(request);
        self.metrics.handle_nanos.stop(timer);
        result
    }

    fn handle_inner(&mut self, request: &S1Request) -> EngineResult<S2Response> {
        self.validate(request)?;
        let mut ops = Vec::new();
        Self::collect_ops(request, &mut ops);
        self.metrics.compute_ops.observe(ops.len() as u64);
        let outs = self.run_ops(&ops)?;
        self.prefill_pools(request);
        let mut outs = outs.into_iter();
        match request {
            S1Request::Batch(requests) => {
                let mut responses = Vec::with_capacity(requests.len());
                for req in requests {
                    responses.push(self.commit(req, &mut outs)?);
                }
                Ok(S2Response::Batch(responses))
            }
            single => self.commit(single, &mut outs),
        }
    }

    /// Phase 1: structural validation of the whole request before anything executes.
    /// `pending` simulates the pending-equality-bit count across batch items so a
    /// mis-sequenced aggregate anywhere in a batch is caught up front.
    fn validate(&self, request: &S1Request) -> EngineResult<()> {
        let mut pending = self.pending_eq.len();
        match request {
            S1Request::Batch(requests) => {
                for req in requests {
                    if matches!(req, S1Request::Batch(_)) {
                        // One level of batching is all the protocols need; rejecting
                        // nesting keeps the handler's recursion bounded.
                        return Err(WireError::malformed("nested Batch requests"));
                    }
                    Self::validate_one(req, &mut pending)?;
                }
                Ok(())
            }
            single => Self::validate_one(single, &mut pending),
        }
    }

    /// Validate one non-batch request, updating the simulated pending-eq count.
    fn validate_one(request: &S1Request, pending: &mut usize) -> EngineResult<()> {
        match request {
            S1Request::EqTest { accumulate, .. } => {
                if *accumulate {
                    *pending += 1;
                }
                Ok(())
            }
            S1Request::EqMatrix { diffs, cols, .. } => {
                if *cols == 0 || diffs.len() % cols != 0 {
                    return Err(WireError::malformed(format!(
                        "equality matrix of {} entries is not a multiple of {cols} columns",
                        diffs.len()
                    )));
                }
                Ok(())
            }
            S1Request::EqAggregate { rows, cols, .. } => {
                if *cols == 0 {
                    return Err(WireError::malformed("EqAggregate over a zero-column matrix"));
                }
                let count = rows * cols;
                if *pending != count {
                    return Err(WireError::bad_sequence(format!(
                        "EqAggregate over {count} bits but {pending} were streamed"
                    )));
                }
                *pending = 0;
                Ok(())
            }
            S1Request::Compare { .. }
            | S1Request::Recover { .. }
            | S1Request::MulBlinded { .. } => Ok(()),
            S1Request::Dedup(dedup) => {
                let l = dedup.items.len();
                if dedup.blindings.len() != l {
                    return Err(WireError::malformed("one blinding per dedup item required"));
                }
                match &dedup.matrix {
                    Some(matrix) => {
                        if matrix.len() != dedup.pair_indices.len() {
                            return Err(WireError::malformed("dedup matrix arity mismatch"));
                        }
                    }
                    None => {
                        if *pending != dedup.pair_indices.len() {
                            return Err(WireError::bad_sequence(format!(
                                "dedup expects {} streamed equality bits, found {pending}",
                                dedup.pair_indices.len()
                            )));
                        }
                        *pending = 0;
                    }
                }
                if dedup.pair_indices.iter().any(|&(a, b)| a >= l || b >= l) {
                    return Err(WireError::malformed("dedup pair index out of range"));
                }
                Ok(())
            }
            S1Request::Filter { .. } => Ok(()),
            S1Request::Batch(_) => Err(WireError::malformed("nested Batch requests")),
        }
    }

    /// Collect the ordered decryption op list of a (validated) request.
    fn collect_ops<'a>(request: &'a S1Request, ops: &mut Vec<DecOp<'a>>) {
        match request {
            S1Request::EqTest { diff, .. } => ops.push(DecOp::IsZero(diff)),
            S1Request::EqMatrix { diffs, .. } => {
                ops.extend(diffs.iter().map(DecOp::IsZero));
            }
            S1Request::EqAggregate { .. } => {}
            S1Request::Compare { blinded, .. } => {
                ops.extend(blinded.iter().map(DecOp::Signed));
            }
            S1Request::Recover { blinded } => {
                ops.extend(blinded.iter().map(DecOp::DjInner));
            }
            S1Request::Dedup(dedup) => {
                if let Some(matrix) = &dedup.matrix {
                    ops.extend(matrix.iter().map(DecOp::IsZero));
                }
            }
            S1Request::Filter { tuples } => {
                ops.extend(tuples.iter().map(|t| DecOp::IsZero(&t.score)));
            }
            S1Request::MulBlinded { pairs } => {
                for (a, b) in pairs {
                    ops.push(DecOp::Plain(a));
                    ops.push(DecOp::Plain(b));
                }
            }
            S1Request::Batch(requests) => {
                for req in requests {
                    Self::collect_ops(req, ops);
                }
            }
        }
    }

    /// Phase 2: run every decryption op, data-parallel when [`Self::intra_workers`]
    /// allows.  Ops are pure (shared `Arc`-backed keys, no mutable engine state), so
    /// results are independent of scheduling; the first failed op *in op order* wins,
    /// matching what a serial sweep would have returned.
    fn run_ops(&self, ops: &[DecOp<'_>]) -> EngineResult<Vec<DecOut>> {
        let keys = &self.keys;
        let results: Vec<Result<DecOut>> = par_map(self.intra_workers, ops, |op| match op {
            DecOp::IsZero(c) => keys.paillier_secret.is_zero(c).map(DecOut::Bit),
            DecOp::Signed(c) => keys.paillier_secret.decrypt_signed(c).map(|v| {
                DecOut::Sign(match v.sign() {
                    num_bigint::Sign::Minus => -1i8,
                    num_bigint::Sign::NoSign => 0,
                    num_bigint::Sign::Plus => 1,
                })
            }),
            DecOp::Plain(c) => keys.paillier_secret.decrypt(c).map(DecOut::Plain),
            DecOp::DjInner(b) => keys.dj_secret.decrypt_to_ciphertext(b).map(DecOut::Inner),
        });
        results.into_iter().collect::<Result<Vec<_>>>().map_err(WireError::from)
    }

    /// Top the nonce pools up to the request's precomputable demand, generating the
    /// missing nonces data-parallel.  Only runs with more than one worker: the serial
    /// path keeps the classic lazy batch refills.  Either way the consumed nonce
    /// stream is identical (see [`RandomnessPool::prefill_parallel`]).
    fn prefill_pools(&mut self, request: &S1Request) {
        if self.intra_workers <= 1 {
            return;
        }
        let mut demand = NonceDemand::default();
        Self::nonce_demand(request, &mut demand);
        let (ready_p, ready_dj) = self.pool.ready();
        let (ready_own, _) = self.own_pool.ready();
        let need_p = demand.paillier.saturating_sub(ready_p);
        let need_dj = demand.dj.saturating_sub(ready_dj);
        let need_own = demand.own.saturating_sub(ready_own);
        if need_p + need_dj > 0 {
            self.pool.prefill_parallel(need_p, need_dj, self.intra_workers);
        }
        if need_own > 0 {
            self.own_pool.prefill_parallel(need_own, 0, self.intra_workers);
        }
    }

    /// Accumulate the nonce demand of a request (exact for the encrypt-reply shapes,
    /// an upper bound for Dedup/Filter whose consumption depends on decrypted bits).
    fn nonce_demand(request: &S1Request, demand: &mut NonceDemand) {
        let wants_dj = |want: &EqWants, rows: usize, cols: usize| {
            let mut dj = 0;
            if want.row_matched {
                dj += rows;
            }
            if want.row_unmatched {
                dj += rows;
            }
            if want.col_unmatched {
                dj += cols;
            }
            dj
        };
        match request {
            S1Request::EqTest { reply_bit, .. } => {
                if *reply_bit {
                    demand.dj += 1;
                }
            }
            S1Request::EqMatrix { diffs, cols, want, .. } => {
                demand.dj += diffs.len() + wants_dj(want, diffs.len() / cols, *cols);
            }
            S1Request::EqAggregate { rows, cols, want } => {
                demand.dj += wants_dj(want, *rows, *cols);
            }
            S1Request::Compare { .. } | S1Request::Recover { .. } => {}
            S1Request::Dedup(dedup) => {
                for (item, blinding) in dedup.items.iter().zip(dedup.blindings.iter()) {
                    demand.paillier += item.ehl.len() + 2;
                    demand.own += item.ehl.len().max(blinding.alphas.len()) + 2;
                }
            }
            S1Request::Filter { tuples } => {
                for t in tuples {
                    demand.paillier += t.attributes.len();
                    demand.own += t.attributes.len() + 1;
                }
            }
            S1Request::MulBlinded { pairs } => demand.paillier += pairs.len(),
            S1Request::Batch(requests) => {
                for req in requests {
                    Self::nonce_demand(req, demand);
                }
            }
        }
    }

    /// Phase 3: commit one (validated) non-batch request serially, consuming its
    /// decryption results from `outs` in op order.  This is where every observable
    /// effect happens — ledger records, pending-eq pushes/takes, RNG draws, pool
    /// consumption — in exactly the order the serial handler produced them.
    fn commit(
        &mut self,
        request: &S1Request,
        outs: &mut std::vec::IntoIter<DecOut>,
    ) -> EngineResult<S2Response> {
        match request {
            S1Request::EqTest { context, depth, accumulate, reply_bit, .. } => {
                let bit = self.record_eq_bit(next_bit(outs)?, context, *depth);
                if *accumulate {
                    self.pending_eq.push(bit);
                }
                if *reply_bit {
                    let e2 = self.pool.encrypt_dj_u64(u64::from(bit))?;
                    Ok(S2Response::EqBit(e2))
                } else {
                    Ok(S2Response::Ack)
                }
            }
            S1Request::EqMatrix { diffs, cols, context, depth, want } => {
                let mut bits = Vec::with_capacity(diffs.len());
                for _ in 0..diffs.len() {
                    bits.push(self.record_eq_bit(next_bit(outs)?, context, *depth));
                }
                let mut e2_bits = Vec::with_capacity(bits.len());
                for &bit in &bits {
                    e2_bits.push(self.pool.encrypt_dj_u64(u64::from(bit))?);
                }
                let aggregates = self.derive_aggregates(&bits, *cols, *want)?;
                Ok(S2Response::EqBits { bits: e2_bits, aggregates })
            }
            S1Request::EqAggregate { cols, want, .. } => {
                let bits = std::mem::take(&mut self.pending_eq);
                let aggregates = self.derive_aggregates(&bits, *cols, *want)?;
                Ok(S2Response::EqAggregates(aggregates))
            }
            S1Request::Compare { blinded, context } => {
                let mut signs = Vec::with_capacity(blinded.len());
                for _ in 0..blinded.len() {
                    let sign = next_sign(outs)?;
                    self.ledger.record(LeakageEvent::BlindedSign { context: context.clone() });
                    signs.push(sign);
                }
                Ok(S2Response::Signs(signs))
            }
            S1Request::Recover { blinded } => {
                let inner =
                    (0..blinded.len()).map(|_| next_inner(outs)).collect::<EngineResult<_>>()?;
                Ok(S2Response::Recovered(inner))
            }
            S1Request::Dedup(dedup) => self.commit_dedup(dedup, outs),
            S1Request::Filter { tuples } => self.commit_filter(tuples, outs),
            S1Request::MulBlinded { pairs } => {
                let pk = self.keys.paillier_public.clone();
                let mut products = Vec::with_capacity(pairs.len());
                for _ in 0..pairs.len() {
                    let x = next_plain(outs)?;
                    let y = next_plain(outs)?;
                    products.push(self.pool.encrypt(&((x * y) % pk.n()))?);
                }
                Ok(S2Response::Products(products))
            }
            S1Request::Batch(_) => Err(WireError::malformed("nested Batch requests")),
        }
    }

    /// Record one already-decrypted `⊖` equality bit (the equality pattern `EP^d` is
    /// S2's designed leakage) and hand it back.
    fn record_eq_bit(&mut self, equal: bool, context: &str, depth: Option<usize>) -> bool {
        self.ledger.record(LeakageEvent::EqualityBit {
            context: context.to_string(),
            depth,
            equal,
        });
        equal
    }

    /// Derive the requested row/column aggregates of a row-major bit matrix.
    fn derive_aggregates(
        &mut self,
        bits: &[bool],
        cols: usize,
        want: EqWants,
    ) -> Result<EqAggregates> {
        let mut aggregates = EqAggregates::default();
        if want.is_empty() {
            return Ok(aggregates);
        }
        let rows = bits.len() / cols;
        let row_any: Vec<bool> =
            (0..rows).map(|i| bits[i * cols..(i + 1) * cols].iter().any(|&b| b)).collect();
        if want.row_matched {
            for &m in &row_any {
                aggregates.row_matched.push(self.pool.encrypt_dj_u64(u64::from(m))?);
            }
        }
        if want.row_unmatched {
            for &m in &row_any {
                aggregates.row_unmatched.push(self.pool.encrypt_dj_u64(u64::from(!m))?);
            }
        }
        if want.col_unmatched {
            for j in 0..cols {
                let any = (0..rows).any(|i| bits[i * cols + j]);
                aggregates.col_unmatched.push(self.pool.encrypt_dj_u64(u64::from(!any))?);
            }
        }
        if want.row_matched_plain {
            aggregates.row_matched_plain = row_any;
        }
        Ok(aggregates)
    }

    /// The S2 phase of `SecDedup` / `SecDupElim` (Algorithm 7 / §10.1): observe the
    /// (pre-decrypted) permuted equality matrix, neutralise (or drop) duplicates, layer
    /// fresh blinding and a second permutation on the survivors.
    fn commit_dedup(
        &mut self,
        request: &DedupRequest,
        outs: &mut std::vec::IntoIter<DecOut>,
    ) -> EngineResult<S2Response> {
        let l = request.items.len();

        // Obtain the equality bits: inline matrix (batched, decrypted in the compute
        // phase) or the bits streamed ahead through per-pair EqTest rounds (unbatched).
        let bits: Vec<bool> = match &request.matrix {
            Some(matrix) => (0..matrix.len())
                .map(|_| Ok(self.record_eq_bit(next_bit(outs)?, "sec_dedup", Some(request.depth))))
                .collect::<EngineResult<_>>()?,
            None => std::mem::take(&mut self.pending_eq),
        };

        let mut equal = vec![vec![false; l]; l];
        for (&(a, b), &is_eq) in request.pair_indices.iter().zip(bits.iter()) {
            equal[a][b] = is_eq;
            equal[b][a] = is_eq;
        }

        // The first (lowest permuted index) member of every duplicate group survives.
        let mut is_duplicate = vec![false; l];
        for a in 0..l {
            if is_duplicate[a] {
                continue;
            }
            for b in (a + 1)..l {
                if equal[a][b] {
                    is_duplicate[b] = true;
                }
            }
        }

        let pk = self.keys.paillier_public.clone();
        let own_pk = self.s1_own_public.clone();
        let z = pk.sentinel_z();
        let mut processed: Vec<(ScoredItem, EncryptedBlinding)> = Vec::with_capacity(l);
        for ((received_item, received_blinding), &duplicate) in
            request.items.iter().zip(request.blindings.iter()).zip(is_duplicate.iter())
        {
            if duplicate {
                if request.eliminate {
                    continue;
                }
                // Replace: fresh garbage id, scores that will unblind to Z = −1.
                let beta2 = random_below(&mut self.rng, pk.n());
                let gamma2 = random_below(&mut self.rng, pk.n());
                let garbage_blocks: Vec<Ciphertext> = (0..received_item.ehl.len())
                    .map(|_| {
                        let garbage = random_below(&mut self.rng, pk.n());
                        self.pool.encrypt(&garbage)
                    })
                    .collect::<Result<Vec<_>>>()?;
                let replaced = ScoredItem {
                    ehl: EhlPlus::from_blocks(garbage_blocks),
                    worst: self.pool.encrypt(&((&z + &beta2) % pk.n()))?,
                    best: self.pool.encrypt(&((&z + &gamma2) % pk.n()))?,
                };
                let new_blinding = EncryptedBlinding {
                    alphas: (0..received_item.ehl.len())
                        .map(|_| self.own_pool.encrypt(&BigUint::from(0u32)))
                        .collect::<Result<Vec<_>>>()?,
                    beta: self.own_pool.encrypt(&beta2)?,
                    gamma: self.own_pool.encrypt(&gamma2)?,
                };
                processed.push((replaced, new_blinding));
            } else {
                // Keep: layer fresh blinding on top (so S1 cannot tell kept from replaced)
                // and update the encrypted randomness accordingly.
                let extra = ItemBlinding::sample(received_item.ehl.len(), &pk, &mut self.rng);
                let mut reblinded = rand_blind(received_item, &extra, &pk);
                // Fresh ciphertexts so S1 cannot correlate with what it sent.
                reblinded = rerandomize_item_pooled(&reblinded, &mut self.pool);

                let updated_blinding = EncryptedBlinding {
                    alphas: received_blinding
                        .alphas
                        .iter()
                        .zip(extra.alphas.iter())
                        .map(|(c, a)| self.own_pool.rerandomize(&own_pk.add_plain(c, a)))
                        .collect(),
                    beta: self
                        .own_pool
                        .rerandomize(&own_pk.add_plain(&received_blinding.beta, &extra.beta)),
                    gamma: self
                        .own_pool
                        .rerandomize(&own_pk.add_plain(&received_blinding.gamma, &extra.gamma)),
                };
                processed.push((reblinded, updated_blinding));
            }
        }

        // Second permutation π' before returning.
        let pi_prime = RandomPermutation::sample(processed.len(), &mut self.rng);
        let returned = pi_prime.permute(&processed);
        let (items, blindings) = returned.into_iter().unzip();
        Ok(S2Response::Dedup { items, blindings })
    }

    /// The S2 phase of `SecFilter` (Algorithm 12): drop blinded all-zero tuples (their
    /// scores were decrypted in the compute phase), re-blind and re-permute the
    /// survivors, updating S1's encrypted unblinders.
    fn commit_filter(
        &mut self,
        tuples: &[FilterTuple],
        outs: &mut std::vec::IntoIter<DecOut>,
    ) -> EngineResult<S2Response> {
        let pk = self.keys.paillier_public.clone();
        let own_pk = self.s1_own_public.clone();

        let mut survivors: Vec<FilterTuple> = Vec::new();
        for t in tuples {
            if next_bit(outs)? {
                continue; // blinded score was zero: did not satisfy the join condition
            }
            // Multiplicative re-blinding of the score with γ; additive re-blinding of the
            // attributes with Γ; the unblinders under pk' are updated homomorphically.
            let gamma = random_invertible(&mut self.rng, pk.n());
            let gamma_inv = mod_inverse(&gamma, pk.n())?;
            let score = pk.mul_plain(&t.score, &gamma);
            let score_unblinder =
                self.own_pool.rerandomize(&own_pk.mul_plain(&t.score_unblinder, &gamma_inv));

            let mut attributes = Vec::with_capacity(t.attributes.len());
            let mut attribute_masks = Vec::with_capacity(t.attributes.len());
            for (a, mask_cipher) in t.attributes.iter().zip(t.attribute_masks.iter()) {
                let extra = random_below(&mut self.rng, pk.n());
                attributes.push(self.pool.rerandomize(&pk.add_plain(a, &extra)));
                attribute_masks
                    .push(self.own_pool.rerandomize(&own_pk.add_plain(mask_cipher, &extra)));
            }
            survivors.push(FilterTuple { score, attributes, score_unblinder, attribute_masks });
        }
        self.ledger.record(LeakageEvent::JoinMatchCount(survivors.len()));
        if !survivors.is_empty() {
            let pi_prime = RandomPermutation::sample(survivors.len(), &mut self.rng);
            survivors = pi_prime.permute(&survivors);
        }
        Ok(S2Response::Filter { survivors })
    }
}

// Commit-phase extractors: `collect_ops` and `commit` walk the same request in the same
// order, so the next result always has the expected variant — a mismatch is an engine
// bug, not a wire condition.  It still must not kill the session: the serving path is
// panic-free, so the mismatch becomes a typed `Internal` error frame for this request.

fn next_bit(outs: &mut std::vec::IntoIter<DecOut>) -> EngineResult<bool> {
    match outs.next() {
        Some(DecOut::Bit(b)) => Ok(b),
        _ => Err(WireError::internal("compute/commit op order mismatch: expected equality bit")),
    }
}

fn next_sign(outs: &mut std::vec::IntoIter<DecOut>) -> EngineResult<i8> {
    match outs.next() {
        Some(DecOut::Sign(s)) => Ok(s),
        _ => Err(WireError::internal("compute/commit op order mismatch: expected sign")),
    }
}

fn next_plain(outs: &mut std::vec::IntoIter<DecOut>) -> EngineResult<BigUint> {
    match outs.next() {
        Some(DecOut::Plain(v)) => Ok(v),
        _ => Err(WireError::internal("compute/commit op order mismatch: expected plaintext")),
    }
}

fn next_inner(outs: &mut std::vec::IntoIter<DecOut>) -> EngineResult<Ciphertext> {
    match outs.next() {
        Some(DecOut::Inner(c)) => Ok(c),
        _ => {
            Err(WireError::internal("compute/commit op order mismatch: expected inner ciphertext"))
        }
    }
}
