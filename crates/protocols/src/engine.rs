//! The crypto cloud S2 as a request-processing engine.
//!
//! All S2-side protocol logic lives here: the engine owns the decryption keys, S2's
//! randomness, its [`LeakageLedger`] and the per-session protocol state (the equality
//! bits accumulated by unbatched [`S1Request::EqTest`] rounds).  Sub-protocol code on
//! the S1 side can only reach it through a [`crate::transport::Transport`], so
//! everything S2 observes is an explicit message — the executable counterpart of the
//! paper's non-collusion assumption (§3.2).

use num_bigint::BigUint;

use sectopk_crypto::bigint::{mod_inverse, random_below, random_invertible};
use sectopk_crypto::keys::S2Keys;
use sectopk_crypto::paillier::{Ciphertext, PaillierPublicKey};
use sectopk_crypto::pool::RandomnessPool;
use sectopk_crypto::prp::RandomPermutation;
use sectopk_crypto::Result;
use sectopk_ehl::EhlPlus;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dedup::EncryptedBlinding;
use crate::items::{rand_blind, rerandomize_item_pooled, ItemBlinding, ScoredItem};
use crate::ledger::{LeakageEvent, LeakageLedger};
use crate::transport::{DedupRequest, EqAggregates, EqWants, FilterTuple, S1Request, S2Response};
use crate::wire::WireError;

/// Result alias for the request handler: engine failures are [`WireError`] frames,
/// shipped back to S1 as typed `S2Response::Error` messages instead of panicking the
/// serving thread.
pub type EngineResult<T> = std::result::Result<T, WireError>;

/// Everything needed to stand up an [`S2Engine`]: the owner's S2 key view, S1's
/// published own public key, and the seed of S2's deterministic randomness.
///
/// This is the *provisioning payload* of the crypto cloud.  In-process transports build
/// the engine directly from it; the TCP transport ships it to the remote `sectopk-s2d`
/// listener during the connection handshake (Figure 1 of the paper: the data owner
/// uploads `(pk_p, sk_p)` to S2 — in a hardened deployment this handshake would run
/// over an authenticated, encrypted channel such as TLS; the reproduction ships it in
/// the clear).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineProvision {
    /// The owner's S2 key view (decryption keys; S2 stores no data).
    pub keys: S2Keys,
    /// S1's own public key `pk'` (the encrypted-blinding channel of SecDedup/SecFilter).
    pub s1_own_public: PaillierPublicKey,
    /// Seed of S2's local randomness and nonce-pool streams.
    pub seed: u64,
}

impl EngineProvision {
    /// Bundle the engine's constituents.
    pub fn new(keys: S2Keys, s1_own_public: PaillierPublicKey, seed: u64) -> Self {
        EngineProvision { keys, s1_own_public, seed }
    }

    /// Build the engine.  Two engines built from equal provisions answer identically —
    /// the transport-equivalence suite depends on that.
    pub fn build(&self) -> S2Engine {
        S2Engine::new(self.keys.clone(), self.s1_own_public.clone(), self.seed)
    }
}

/// The crypto cloud S2: keys, randomness, nonce pools, ledger, and the request handler.
#[derive(Debug)]
pub struct S2Engine {
    keys: S2Keys,
    /// S1's *own* public key `pk'`, published at setup time; S2 uses it to transport
    /// blinding randomness back to S1 in SecDedup / SecFilter (Algorithms 7 and 12).
    s1_own_public: PaillierPublicKey,
    rng: StdRng,
    /// Precomputed nonces for the *shared* Paillier / DJ keys — every `E2(t)` bit,
    /// re-encryption and item re-randomization the engine returns draws from here.
    pool: RandomnessPool,
    /// Precomputed nonces for S1's own key `pk'` (the encrypted-blinding channel).
    own_pool: RandomnessPool,
    ledger: LeakageLedger,
    /// Equality bits accumulated from unbatched [`S1Request::EqTest`] rounds, consumed
    /// by the next [`S1Request::EqAggregate`] or matrix-less [`S1Request::Dedup`].
    pending_eq: Vec<bool>,
}

impl S2Engine {
    /// Build the engine from the owner's S2 key view, S1's published own public key, and
    /// a seed for S2's local randomness (the nonce pools derive their streams from the
    /// same seed, so two engines built alike answer identically — the
    /// transport-equivalence tests depend on that).
    pub fn new(keys: S2Keys, s1_own_public: PaillierPublicKey, rng_seed: u64) -> Self {
        let pool = RandomnessPool::with_dj(
            &keys.paillier_public,
            &keys.dj_public,
            rng_seed ^ 0x2002_2002_2002_2002,
        );
        let own_pool = RandomnessPool::new(&s1_own_public, rng_seed ^ 0x3003_3003_3003_3003);
        S2Engine {
            keys,
            s1_own_public,
            rng: StdRng::seed_from_u64(rng_seed),
            pool,
            own_pool,
            ledger: LeakageLedger::new(),
            pending_eq: Vec::new(),
        }
    }

    /// Everything S2 has observed beyond its inputs.
    pub fn ledger(&self) -> &LeakageLedger {
        &self.ledger
    }

    /// Clear the ledger and the per-session protocol state (e.g. between queries).
    pub fn reset(&mut self) {
        self.ledger.clear();
        self.pending_eq.clear();
    }

    /// Process one request and produce the response that travels back to S1.
    ///
    /// Failures are typed [`WireError`]s: the transport encodes them as
    /// `S2Response::Error` frames, so a malformed or mis-sequenced request is answered,
    /// not panicked on, and the engine keeps serving subsequent requests.
    pub fn handle(&mut self, request: &S1Request) -> EngineResult<S2Response> {
        match request {
            S1Request::EqTest { diff, context, depth, accumulate, reply_bit } => {
                let bit = self.observe_eq_bit(diff, context, *depth)?;
                if *accumulate {
                    self.pending_eq.push(bit);
                }
                if *reply_bit {
                    let e2 = self.pool.encrypt_dj_u64(u64::from(bit))?;
                    Ok(S2Response::EqBit(e2))
                } else {
                    Ok(S2Response::Ack)
                }
            }
            S1Request::EqMatrix { diffs, cols, context, depth, want } => {
                if *cols == 0 || diffs.len() % cols != 0 {
                    return Err(WireError::malformed(format!(
                        "equality matrix of {} entries is not a multiple of {cols} columns",
                        diffs.len()
                    )));
                }
                let mut bits = Vec::with_capacity(diffs.len());
                for diff in diffs {
                    bits.push(self.observe_eq_bit(diff, context, *depth)?);
                }
                let mut e2_bits = Vec::with_capacity(bits.len());
                for &bit in &bits {
                    e2_bits.push(self.pool.encrypt_dj_u64(u64::from(bit))?);
                }
                let aggregates = self.derive_aggregates(&bits, *cols, *want)?;
                Ok(S2Response::EqBits { bits: e2_bits, aggregates })
            }
            S1Request::EqAggregate { rows, cols, want } => {
                if *cols == 0 {
                    return Err(WireError::malformed("EqAggregate over a zero-column matrix"));
                }
                let count = rows * cols;
                if self.pending_eq.len() != count {
                    return Err(WireError::bad_sequence(format!(
                        "EqAggregate over {count} bits but {} were streamed",
                        self.pending_eq.len()
                    )));
                }
                let bits = std::mem::take(&mut self.pending_eq);
                let aggregates = self.derive_aggregates(&bits, *cols, *want)?;
                Ok(S2Response::EqAggregates(aggregates))
            }
            S1Request::Compare { blinded, context } => {
                let sk = self.keys.paillier_secret.clone();
                let mut signs = Vec::with_capacity(blinded.len());
                for c in blinded {
                    let v = sk.decrypt_signed(c)?;
                    self.ledger.record(LeakageEvent::BlindedSign { context: context.clone() });
                    signs.push(match v.sign() {
                        num_bigint::Sign::Minus => -1i8,
                        num_bigint::Sign::NoSign => 0,
                        num_bigint::Sign::Plus => 1,
                    });
                }
                Ok(S2Response::Signs(signs))
            }
            S1Request::Recover { blinded } => {
                let dj_sk = self.keys.dj_secret.clone();
                let mut inner = Vec::with_capacity(blinded.len());
                for b in blinded {
                    inner.push(dj_sk.decrypt_to_ciphertext(b)?);
                }
                Ok(S2Response::Recovered(inner))
            }
            S1Request::Dedup(dedup) => self.handle_dedup(dedup),
            S1Request::Filter { tuples } => self.handle_filter(tuples),
            S1Request::MulBlinded { pairs } => {
                let pk = self.keys.paillier_public.clone();
                let sk = self.keys.paillier_secret.clone();
                let mut products = Vec::with_capacity(pairs.len());
                for (a, b) in pairs {
                    let x = sk.decrypt(a)?;
                    let y = sk.decrypt(b)?;
                    products.push(self.pool.encrypt(&((x * y) % pk.n()))?);
                }
                Ok(S2Response::Products(products))
            }
            S1Request::Batch(requests) => {
                let mut responses = Vec::with_capacity(requests.len());
                for req in requests {
                    if matches!(req, S1Request::Batch(_)) {
                        // One level of batching is all the protocols need; rejecting
                        // nesting keeps the handler's recursion bounded.
                        return Err(WireError::malformed("nested Batch requests"));
                    }
                    responses.push(self.handle(req)?);
                }
                Ok(S2Response::Batch(responses))
            }
        }
    }

    /// Decrypt one `⊖` equality ciphertext and record the observation (the equality
    /// pattern `EP^d` is S2's designed leakage).
    fn observe_eq_bit(
        &mut self,
        diff: &Ciphertext,
        context: &str,
        depth: Option<usize>,
    ) -> Result<bool> {
        let equal = self.keys.paillier_secret.is_zero(diff)?;
        self.ledger.record(LeakageEvent::EqualityBit {
            context: context.to_string(),
            depth,
            equal,
        });
        Ok(equal)
    }

    /// Derive the requested row/column aggregates of a row-major bit matrix.
    fn derive_aggregates(
        &mut self,
        bits: &[bool],
        cols: usize,
        want: EqWants,
    ) -> Result<EqAggregates> {
        let mut aggregates = EqAggregates::default();
        if want.is_empty() {
            return Ok(aggregates);
        }
        let rows = bits.len() / cols;
        let row_any: Vec<bool> =
            (0..rows).map(|i| bits[i * cols..(i + 1) * cols].iter().any(|&b| b)).collect();
        if want.row_matched {
            for &m in &row_any {
                aggregates.row_matched.push(self.pool.encrypt_dj_u64(u64::from(m))?);
            }
        }
        if want.row_unmatched {
            for &m in &row_any {
                aggregates.row_unmatched.push(self.pool.encrypt_dj_u64(u64::from(!m))?);
            }
        }
        if want.col_unmatched {
            for j in 0..cols {
                let any = (0..rows).any(|i| bits[i * cols + j]);
                aggregates.col_unmatched.push(self.pool.encrypt_dj_u64(u64::from(!any))?);
            }
        }
        if want.row_matched_plain {
            aggregates.row_matched_plain = row_any;
        }
        Ok(aggregates)
    }

    /// The S2 phase of `SecDedup` / `SecDupElim` (Algorithm 7 / §10.1): decrypt the
    /// permuted equality matrix, neutralise (or drop) duplicates, layer fresh blinding
    /// and a second permutation on the survivors.
    fn handle_dedup(&mut self, request: &DedupRequest) -> EngineResult<S2Response> {
        let l = request.items.len();
        if request.blindings.len() != l {
            return Err(WireError::malformed("one blinding per dedup item required"));
        }

        // Obtain the equality bits: inline matrix (batched) or the bits streamed ahead
        // through per-pair EqTest rounds (unbatched).
        let bits: Vec<bool> = match &request.matrix {
            Some(matrix) => {
                if matrix.len() != request.pair_indices.len() {
                    return Err(WireError::malformed("dedup matrix arity mismatch"));
                }
                let mut bits = Vec::with_capacity(matrix.len());
                for diff in matrix {
                    bits.push(self.observe_eq_bit(diff, "sec_dedup", Some(request.depth))?);
                }
                bits
            }
            None => {
                if self.pending_eq.len() != request.pair_indices.len() {
                    return Err(WireError::bad_sequence(format!(
                        "dedup expects {} streamed equality bits, found {}",
                        request.pair_indices.len(),
                        self.pending_eq.len()
                    )));
                }
                std::mem::take(&mut self.pending_eq)
            }
        };

        let mut equal = vec![vec![false; l]; l];
        for (&(a, b), &is_eq) in request.pair_indices.iter().zip(bits.iter()) {
            if a >= l || b >= l {
                return Err(WireError::malformed("dedup pair index out of range"));
            }
            equal[a][b] = is_eq;
            equal[b][a] = is_eq;
        }

        // The first (lowest permuted index) member of every duplicate group survives.
        let mut is_duplicate = vec![false; l];
        for a in 0..l {
            if is_duplicate[a] {
                continue;
            }
            for b in (a + 1)..l {
                if equal[a][b] {
                    is_duplicate[b] = true;
                }
            }
        }

        let pk = self.keys.paillier_public.clone();
        let own_pk = self.s1_own_public.clone();
        let z = pk.sentinel_z();
        let mut processed: Vec<(ScoredItem, EncryptedBlinding)> = Vec::with_capacity(l);
        for ((received_item, received_blinding), &duplicate) in
            request.items.iter().zip(request.blindings.iter()).zip(is_duplicate.iter())
        {
            if duplicate {
                if request.eliminate {
                    continue;
                }
                // Replace: fresh garbage id, scores that will unblind to Z = −1.
                let beta2 = random_below(&mut self.rng, pk.n());
                let gamma2 = random_below(&mut self.rng, pk.n());
                let garbage_blocks: Vec<Ciphertext> = (0..received_item.ehl.len())
                    .map(|_| {
                        let garbage = random_below(&mut self.rng, pk.n());
                        self.pool.encrypt(&garbage)
                    })
                    .collect::<Result<Vec<_>>>()?;
                let replaced = ScoredItem {
                    ehl: EhlPlus::from_blocks(garbage_blocks),
                    worst: self.pool.encrypt(&((&z + &beta2) % pk.n()))?,
                    best: self.pool.encrypt(&((&z + &gamma2) % pk.n()))?,
                };
                let new_blinding = EncryptedBlinding {
                    alphas: (0..received_item.ehl.len())
                        .map(|_| self.own_pool.encrypt(&BigUint::from(0u32)))
                        .collect::<Result<Vec<_>>>()?,
                    beta: self.own_pool.encrypt(&beta2)?,
                    gamma: self.own_pool.encrypt(&gamma2)?,
                };
                processed.push((replaced, new_blinding));
            } else {
                // Keep: layer fresh blinding on top (so S1 cannot tell kept from replaced)
                // and update the encrypted randomness accordingly.
                let extra = ItemBlinding::sample(received_item.ehl.len(), &pk, &mut self.rng);
                let mut reblinded = rand_blind(received_item, &extra, &pk);
                // Fresh ciphertexts so S1 cannot correlate with what it sent.
                reblinded = rerandomize_item_pooled(&reblinded, &mut self.pool);

                let updated_blinding = EncryptedBlinding {
                    alphas: received_blinding
                        .alphas
                        .iter()
                        .zip(extra.alphas.iter())
                        .map(|(c, a)| self.own_pool.rerandomize(&own_pk.add_plain(c, a)))
                        .collect(),
                    beta: self
                        .own_pool
                        .rerandomize(&own_pk.add_plain(&received_blinding.beta, &extra.beta)),
                    gamma: self
                        .own_pool
                        .rerandomize(&own_pk.add_plain(&received_blinding.gamma, &extra.gamma)),
                };
                processed.push((reblinded, updated_blinding));
            }
        }

        // Second permutation π' before returning.
        let pi_prime = RandomPermutation::sample(processed.len(), &mut self.rng);
        let returned = pi_prime.permute(&processed);
        let (items, blindings) = returned.into_iter().unzip();
        Ok(S2Response::Dedup { items, blindings })
    }

    /// The S2 phase of `SecFilter` (Algorithm 12): drop blinded all-zero tuples,
    /// re-blind and re-permute the survivors, updating S1's encrypted unblinders.
    fn handle_filter(&mut self, tuples: &[FilterTuple]) -> EngineResult<S2Response> {
        let pk = self.keys.paillier_public.clone();
        let own_pk = self.s1_own_public.clone();
        let sk = self.keys.paillier_secret.clone();

        let mut survivors: Vec<FilterTuple> = Vec::new();
        for t in tuples {
            if sk.is_zero(&t.score)? {
                continue; // did not satisfy the join condition
            }
            // Multiplicative re-blinding of the score with γ; additive re-blinding of the
            // attributes with Γ; the unblinders under pk' are updated homomorphically.
            let gamma = random_invertible(&mut self.rng, pk.n());
            let gamma_inv = mod_inverse(&gamma, pk.n())?;
            let score = pk.mul_plain(&t.score, &gamma);
            let score_unblinder =
                self.own_pool.rerandomize(&own_pk.mul_plain(&t.score_unblinder, &gamma_inv));

            let mut attributes = Vec::with_capacity(t.attributes.len());
            let mut attribute_masks = Vec::with_capacity(t.attributes.len());
            for (a, mask_cipher) in t.attributes.iter().zip(t.attribute_masks.iter()) {
                let extra = random_below(&mut self.rng, pk.n());
                attributes.push(self.pool.rerandomize(&pk.add_plain(a, &extra)));
                attribute_masks
                    .push(self.own_pool.rerandomize(&own_pk.add_plain(mask_cipher, &extra)));
            }
            survivors.push(FilterTuple { score, attributes, score_unblinder, attribute_masks });
        }
        self.ledger.record(LeakageEvent::JoinMatchCount(survivors.len()));
        if !survivors.is_empty() {
            let pi_prime = RandomPermutation::sample(survivors.len(), &mut self.rng);
            survivors = pi_prime.permute(&survivors);
        }
        Ok(S2Response::Filter { survivors })
    }
}
