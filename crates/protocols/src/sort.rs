//! `EncSort` — sorting a list of encrypted scored items by their (encrypted) worst score.
//!
//! The paper uses the sorting protocol of Baldimtsi–Ohrimenko \[7\] as a black box.  This
//! reproduction realises the same functionality with a **Batcher odd–even merge sorting
//! network** whose compare-exchange gates call the [`TwoClouds::compare_many`] primitive:
//! all gates of one network stage are independent, so with round-trip batching each
//! stage ships as a single [`crate::transport::S1Request::Compare`] message — one round
//! trip per stage, giving `O(log² n)` rounds and `O(n log² n)` comparisons, the
//! complexity the paper quotes for EncSort (§10.3).  With batching disabled every gate
//! becomes its own round trip (the pattern the bandwidth bench compares against).
//!
//! Leakage: S1 learns the outcome of every comparator, i.e. the rank order of the
//! (anonymous, freshly re-randomized) items — which is exactly the output the
//! functionality hands to S1 anyway.  S2 sees only uniformly flipped, scaled signs.  See
//! DESIGN.md for the discussion of this substitution.

use crate::error::Result;
use sectopk_crypto::paillier::Ciphertext;

use crate::context::TwoClouds;
use crate::items::{rerandomize_item_pooled, ScoredItem};

/// Generate the compare-exchange gates of a Batcher odd–even merge sorting network for
/// `n = 2^x` wires, grouped into stages of mutually independent gates.
fn batcher_stages(n: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(n.is_power_of_two(), "network is generated for power-of-two sizes");
    let mut stages = Vec::new();
    let mut p = 1usize;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut stage = Vec::new();
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let lo = i + j;
                    let hi = i + j + k;
                    if hi < n && (lo / (p * 2)) == (hi / (p * 2)) {
                        stage.push((lo, hi));
                    }
                }
                j += 2 * k;
            }
            if !stage.is_empty() {
                stages.push(stage);
            }
            k /= 2;
        }
        p *= 2;
    }
    stages
}

impl TwoClouds {
    /// Sort `items` in **descending** order of their worst score (the order SecQuery
    /// needs to pick the current top-k, Algorithm 3 line 9).  Returns the sorted list;
    /// every returned ciphertext is freshly re-randomized.
    pub fn enc_sort_by_worst_desc(&mut self, items: Vec<ScoredItem>) -> Result<Vec<ScoredItem>> {
        let n = items.len();
        if n <= 1 {
            return Ok(items);
        }

        // Pad to a power of two with sentinel items carrying the minimal score Z = −1, so
        // that the padding sinks to the end of the descending order.  S1 tracks the
        // original index of every slot locally, so padding is dropped afterwards without
        // any extra interaction.
        let padded_n = n.next_power_of_two();
        let pk = self.s1.keys.paillier_public.clone();
        let mut slots: Vec<(Option<usize>, ScoredItem)> = Vec::with_capacity(padded_n);
        for (i, item) in items.into_iter().enumerate() {
            slots.push((Some(i), item));
        }
        for _ in n..padded_n {
            let z = pk.sentinel_z();
            let sentinel = ScoredItem {
                ehl: slots[0].1.ehl.rerandomize_pooled(&mut self.s1.pool),
                worst: self.s1.pool.encrypt(&z)?,
                best: self.s1.pool.encrypt(&z)?,
            };
            slots.push((None, sentinel));
        }

        for stage in batcher_stages(padded_n) {
            // One batched comparison per stage: is worst[hi] ≤ worst[lo]?  If not, the
            // pair is out of (descending) order and must be swapped.
            let pairs: Vec<(Ciphertext, Ciphertext)> = stage
                .iter()
                .map(|&(lo, hi)| (slots[hi].1.worst.clone(), slots[lo].1.worst.clone()))
                .collect();
            let in_order = self.compare_many(&pairs, "enc_sort")?;
            for (&(lo, hi), ok) in stage.iter().zip(in_order) {
                if !ok {
                    slots.swap(lo, hi);
                }
            }
        }

        // Drop padding and re-randomize the survivors so the output ciphertexts are
        // unlinkable to the inputs.
        let mut sorted = Vec::with_capacity(n);
        for (tag, item) in slots {
            if tag.is_some() {
                sorted.push(rerandomize_item_pooled(&item, &mut self.s1.pool));
            }
        }
        Ok(sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;

    fn plain_sort_check(network: &[Vec<(usize, usize)>], n: usize, input: &[i64]) -> Vec<i64> {
        let mut v = input.to_vec();
        assert_eq!(v.len(), n);
        for stage in network {
            for &(lo, hi) in stage {
                if v[lo] < v[hi] {
                    v.swap(lo, hi);
                }
            }
        }
        v
    }

    #[test]
    fn batcher_network_sorts_all_small_permutations() {
        // Zero-one principle stand-in: exhaustively check all permutations for n = 8.
        let n = 8usize;
        let stages = batcher_stages(n);
        let mut values: Vec<i64> = (0..n as i64).collect();
        // Heap's algorithm over the 8! permutations is overkill; sample rotations and a
        // set of adversarial patterns instead plus all permutations of size 4 embedded.
        let patterns: Vec<Vec<i64>> = vec![
            (0..8).collect(),
            (0..8).rev().collect(),
            vec![5, 5, 5, 5, 0, 0, 0, 0],
            vec![1, 0, 1, 0, 1, 0, 1, 0],
            vec![7, 0, 6, 1, 5, 2, 4, 3],
            vec![-1, 3, -1, 2, 9, 9, 0, 1],
        ];
        for p in patterns {
            let sorted = plain_sort_check(&stages, n, &p);
            let mut expected = p.clone();
            expected.sort_by(|a, b| b.cmp(a));
            assert_eq!(sorted, expected, "input {p:?}");
        }
        // All 24 permutations of 4 values in the low half, high half fixed.
        values.truncate(4);
        permute(&mut values.clone(), 0, &mut |perm| {
            let mut input: Vec<i64> = perm.to_vec();
            input.extend_from_slice(&[10, 11, 12, 13]);
            let sorted = plain_sort_check(&stages, n, &input);
            let mut expected = input.clone();
            expected.sort_by(|a, b| b.cmp(a));
            assert_eq!(sorted, expected);
        });
    }

    fn permute(v: &mut Vec<i64>, k: usize, f: &mut impl FnMut(&[i64])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn enc_sort_orders_descending_and_preserves_items() {
        let mut rng = StdRng::seed_from_u64(123);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let mut clouds = TwoClouds::new(&master, 5).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        let pk = &master.paillier_public;
        let sk = &master.paillier_secret;

        let worsts: Vec<i64> = vec![5, -1, 42, 17, 17, 3, 0];
        let items: Vec<ScoredItem> = worsts
            .iter()
            .enumerate()
            .map(|(i, &w)| ScoredItem {
                ehl: encoder.encode(format!("obj{i}").as_bytes(), pk, &mut rng).unwrap(),
                worst: pk.encrypt_i64(w, &mut rng).unwrap(),
                best: pk.encrypt_i64(w + 10, &mut rng).unwrap(),
            })
            .collect();

        let sorted = clouds.enc_sort_by_worst_desc(items).unwrap();
        assert_eq!(sorted.len(), worsts.len());
        let decrypted: Vec<i64> = sorted
            .iter()
            .map(|it| {
                let v = sk.decrypt_signed(&it.worst).unwrap();
                i64::try_from(v).unwrap()
            })
            .collect();
        let mut expected = worsts.clone();
        expected.sort_by(|a, b| b.cmp(a));
        assert_eq!(decrypted, expected);

        // The (worst, best) pairing must be preserved: best = worst + 10 for every item.
        for it in &sorted {
            let w = i64::try_from(sk.decrypt_signed(&it.worst).unwrap()).unwrap();
            let b = i64::try_from(sk.decrypt_signed(&it.best).unwrap()).unwrap();
            assert_eq!(b, w + 10);
        }
    }

    #[test]
    fn sorting_zero_or_one_items_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(9);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut clouds = TwoClouds::new(&master, 1).unwrap();
        assert!(clouds.enc_sort_by_worst_desc(Vec::new()).unwrap().is_empty());

        let encoder = EhlEncoder::new(&master.ehl_keys);
        let pk = &master.paillier_public;
        let single = vec![ScoredItem {
            ehl: encoder.encode(b"x", pk, &mut rng).unwrap(),
            worst: pk.encrypt_u64(3, &mut rng).unwrap(),
            best: pk.encrypt_u64(4, &mut rng).unwrap(),
        }];
        assert_eq!(clouds.enc_sort_by_worst_desc(single.clone()).unwrap(), single);
        assert_eq!(clouds.channel().total_messages(), 0);
    }

    #[test]
    fn rounds_grow_polylogarithmically() {
        let mut rng = StdRng::seed_from_u64(77);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut clouds = TwoClouds::new(&master, 2).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        let pk = &master.paillier_public;
        let items: Vec<ScoredItem> = (0..8u64)
            .map(|i| ScoredItem {
                ehl: encoder.encode(&i.to_be_bytes(), pk, &mut rng).unwrap(),
                worst: pk.encrypt_u64(i * 7 % 5, &mut rng).unwrap(),
                best: pk.encrypt_u64(100, &mut rng).unwrap(),
            })
            .collect();
        let _ = clouds.enc_sort_by_worst_desc(items).unwrap();
        // Batcher on 8 wires has 6 stages → 6 round trips.
        assert_eq!(clouds.channel().rounds, 6);
    }

    #[test]
    fn unbatched_sort_pays_one_round_per_gate() {
        use crate::transport::TransportKind;
        let mut rng = StdRng::seed_from_u64(78);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut clouds =
            TwoClouds::with_transport(&master, 2, TransportKind::InProcess, false).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        let pk = &master.paillier_public;
        let items: Vec<ScoredItem> = (0..4u64)
            .map(|i| ScoredItem {
                ehl: encoder.encode(&i.to_be_bytes(), pk, &mut rng).unwrap(),
                worst: pk.encrypt_u64(7 - i, &mut rng).unwrap(),
                best: pk.encrypt_u64(100, &mut rng).unwrap(),
            })
            .collect();
        let sorted = clouds.enc_sort_by_worst_desc(items).unwrap();
        assert_eq!(sorted.len(), 4);
        // Batcher on 4 wires has 5 gates across 3 stages → 5 round trips unbatched.
        assert_eq!(clouds.channel().rounds, 5);
    }
}
