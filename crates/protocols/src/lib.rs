//! # sectopk-protocols
//!
//! The two-cloud secure sub-protocols of the SecTopK construction (§8 of *"Top-k Query
//! Processing on Encrypted Databases with Strong Security Guarantees"*): the primary
//! cloud S1 holds the encrypted relation and only public keys, the crypto cloud S2 holds
//! the decryption keys and no data, and every computation on plaintext-sensitive values
//! happens through the message exchanges implemented here.
//!
//! * [`context::TwoClouds`] — S1's state plus the metered [`transport::Transport`] to
//!   the S2 engine, with the [`channel::ChannelMetrics`] accounting and the per-party
//!   [`ledger::LeakageLedger`].
//! * [`transport`] — the typed [`transport::S1Request`] / [`transport::S2Response`]
//!   message layer, round-trip batching, and the in-process / threaded channel
//!   implementations.
//! * [`multiplex`] — session-multiplexed serving: one S2 worker pool answering many
//!   concurrent S1 sessions over session-tagged envelopes, with per-session ledgers,
//!   metrics and deterministic nonce-pool shards.
//! * [`tcp`] — the real-socket deployment: the same envelopes length-prefix-framed over
//!   TCP, with a connection handshake that provisions the session's engine, and the
//!   listener ([`tcp::TcpCloudServer`]) feeding connections into the multiplex pool.
//! * [`engine`] — the crypto cloud S2 as a request-processing engine (all S2-side
//!   protocol logic, keys and randomness).
//! * [`wire`] — the binary codec every message is measured (and, on the threaded
//!   transport, actually shipped) in.
//! * [`primitives`] — batched EHL equality tests, `RecoverEnc` (Algorithm 5), encrypted
//!   selection, and the `EncCompare` realisation.
//! * [`sort`] — `EncSort` as a Batcher network of encrypted compare-exchange gates.
//! * [`worst`] / [`best`] — `SecWorst` (Algorithm 4) and `SecBest` (Algorithm 6).
//! * [`dedup`] — `SecDedup` (Algorithm 7) and the optimized `SecDupElim` (§10.1).
//! * [`update`] — `SecUpdate` (Algorithm 9) in keep-length (`Qry_F`) and eliminate
//!   (`Qry_E`) variants.
//! * [`join`] — `SecJoin` and `SecFilter` (Algorithms 11 and 12) for top-k joins (§12).
//!
//! All of these are usable as stand-alone building blocks, as the paper points out.
//!
//! # Observability
//!
//! The serving path reports into a [`sectopk_metrics::Registry`] when one is
//! installed: the engine counts requests by kind and times its compute
//! (`engine.*`), the multiplex pool counts sheds/replays/attachments and samples
//! inbox depth and per-worker busy time (`pool.*`), the TCP client and listener
//! count reconnects, rejects, resumes, parks and sheds (`tcp.client.*` /
//! `tcp.server.*`), and [`context::TwoClouds::set_metrics`] adds per-session
//! round-latency histograms (`session.*`).  Instrumentation is strictly
//! observational: a disabled registry makes every handle a no-op, and enabled or
//! not, protocol bytes, [`ledger::LeakageLedger`]s and
//! [`channel::ChannelMetrics`] are byte-identical (asserted by
//! `tests/metrics_invariance.rs`).  [`sectopk_metrics::TraceHook`] offers span
//! enter/exit callbacks per protocol round via
//! [`context::TwoClouds::set_trace_hook`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod best;
pub mod channel;
pub mod context;
pub mod dedup;
pub mod engine;
pub mod error;
pub mod items;
pub mod join;
pub mod ledger;
pub mod multiplex;
mod plock;
pub mod primitives;
pub mod sort;
#[deny(missing_docs)]
pub mod tcp;
pub mod transport;
pub mod update;
pub mod wire;
pub mod worst;

pub use channel::{ChannelMetrics, Direction};
pub use context::{S1State, TwoClouds};
pub use dedup::EncryptedBlinding;
pub use engine::{intra_workers_from_env, EngineProvision, EngineResult, S2Engine};
pub use error::{ProtocolError, Result, TransportError, TransportErrorKind};
pub use items::{
    rand_blind, rand_unblind, rerandomize_item, rerandomize_item_pooled, ItemBlinding, ScoredItem,
};
pub use join::{EncryptedTuple, JoinSpec, JoinedTuple};
pub use ledger::{LeakageEvent, LeakageLedger};
pub use multiplex::{
    Envelope, LinkProfile, MultiplexServer, MultiplexTransport, PoolLimits, SessionId,
};
pub use primitives::EqBatch;
pub use tcp::{
    FaultPlan, RetryPolicy, TcpCloudServer, TcpOptions, TcpServerConfig, TcpTransport,
    MAX_FRAME_LEN, TCP_PROTOCOL_VERSION,
};
pub use transport::{
    ChannelTransport, InProcessTransport, S1Request, S2Response, Transport, TransportKind,
    TRANSPORT_ENV,
};
pub use update::UpdateMode;
pub use wire::{WireError, WireErrorCode};
