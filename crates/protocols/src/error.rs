//! The protocol layer's error model.
//!
//! Everything that can go wrong between the two clouds falls into one of three classes,
//! and [`ProtocolError`] keeps them apart so callers can react differently to each:
//!
//! * [`ProtocolError::Crypto`] — a *local* cryptographic operation failed on the S1 side
//!   (corrupted ciphertext, value out of range, …).
//! * [`ProtocolError::Remote`] — S2 answered with a typed
//!   [`WireError`] frame instead of a response.  The frame
//!   crosses the transport as a first-class message, so a malformed or mis-sequenced
//!   request never kills the S2 worker — the engine keeps serving and the caller gets a
//!   structured failure.
//! * [`ProtocolError::Transport`] — the channel itself broke down (thread gone, frame
//!   undecodable, envelope echo mismatch) or was misused (duplicate session id).  The
//!   payload is a structured [`TransportError`] whose [`TransportErrorKind`] separates
//!   *transient* breakdowns (a dead socket, a timeout, a shed request — retry) from
//!   *permanent* ones (a protocol violation, a handshake rejection — fix the caller),
//!   so retry policies never have to match on message strings.
//!
//! `From<CryptoError>` lets every sub-protocol keep using `?` on the crypto substrate,
//! and `sectopk-core` folds the whole enum into its `SecTopKError` the same way
//! (surfacing retryability as `SecTopKError::is_transient`).

use std::fmt;

use sectopk_crypto::CryptoError;

use crate::wire::WireError;

/// Failure class of a [`TransportError`]: *why* the channel broke, and in particular
/// whether a retry (reconnect + resend of the unacknowledged envelope) can succeed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// The connection died mid-exchange (socket reset, EOF, channel hung up).
    /// Transient: a reconnect-and-resume retry is worthwhile.
    Io,
    /// A read or write hit its configured timeout.  Transient.
    Timeout,
    /// The serving side shed the request or connection under load (session table
    /// full, inbox full, draining).  Transient: back off and retry.
    Overloaded,
    /// The peer rejected the session outright (handshake refused, duplicate session
    /// id, version mismatch, resume token denied).  Permanent: retrying the same
    /// request cannot succeed.
    Rejected,
    /// The channel misbehaved in a way that indicates a bug or corruption (envelope
    /// echo mismatch, undecodable frame, oversized frame).  Permanent.
    Fault,
    /// A retry policy gave up: every attempt failed and the budget (attempts or
    /// deadline) is exhausted.  Permanent — the last underlying failure is in the
    /// message.
    Exhausted,
}

impl TransportErrorKind {
    /// Stable lowercase name, used in `Display` and log output.
    pub fn name(self) -> &'static str {
        match self {
            TransportErrorKind::Io => "io",
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::Overloaded => "overloaded",
            TransportErrorKind::Rejected => "rejected",
            TransportErrorKind::Fault => "fault",
            TransportErrorKind::Exhausted => "exhausted",
        }
    }

    /// True when a failure of this kind is transient — reconnecting and resending
    /// the unacknowledged envelope can succeed.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            TransportErrorKind::Io | TransportErrorKind::Timeout | TransportErrorKind::Overloaded
        )
    }
}

/// A structured transport breakdown: a [`TransportErrorKind`] plus human-readable
/// context.  Retry policies branch on the kind; logs and test assertions read the
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportError {
    /// Machine-readable failure class (drives [`ProtocolError::is_retryable`]).
    pub kind: TransportErrorKind,
    /// Human-readable context for logs and test failure messages.
    pub message: String,
}

impl TransportError {
    /// Build a transport error from a kind and a message.
    pub fn new(kind: TransportErrorKind, message: impl Into<String>) -> Self {
        TransportError { kind, message: message.into() }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind.name(), self.message)
    }
}

impl std::error::Error for TransportError {}

/// An error raised by the two-cloud protocol layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A local cryptographic operation failed on the caller's (S1's) side.
    Crypto(CryptoError),
    /// The crypto cloud S2 reported a typed failure over the wire.
    Remote(WireError),
    /// The transport broke down or was misused (channel closed, undecodable frame,
    /// envelope mismatch, duplicate session id).
    Transport(TransportError),
}

impl ProtocolError {
    /// Build a permanent ([`TransportErrorKind::Fault`]) transport-layer error from
    /// anything displayable.  Misuse and corruption sites use this; transient
    /// breakdowns use the kind-specific constructors so retry policies can see them.
    pub fn transport(what: impl Into<String>) -> Self {
        ProtocolError::Transport(TransportError::new(TransportErrorKind::Fault, what))
    }

    /// A transient connection breakdown ([`TransportErrorKind::Io`]).
    pub fn transport_io(what: impl Into<String>) -> Self {
        ProtocolError::Transport(TransportError::new(TransportErrorKind::Io, what))
    }

    /// A read/write timeout ([`TransportErrorKind::Timeout`]).
    pub fn transport_timeout(what: impl Into<String>) -> Self {
        ProtocolError::Transport(TransportError::new(TransportErrorKind::Timeout, what))
    }

    /// The serving side shed the request or connection under load
    /// ([`TransportErrorKind::Overloaded`]).
    pub fn transport_overloaded(what: impl Into<String>) -> Self {
        ProtocolError::Transport(TransportError::new(TransportErrorKind::Overloaded, what))
    }

    /// The peer refused the session or resume attempt
    /// ([`TransportErrorKind::Rejected`]).
    pub fn transport_rejected(what: impl Into<String>) -> Self {
        ProtocolError::Transport(TransportError::new(TransportErrorKind::Rejected, what))
    }

    /// A retry policy ran out of budget ([`TransportErrorKind::Exhausted`]).
    pub fn transport_exhausted(what: impl Into<String>) -> Self {
        ProtocolError::Transport(TransportError::new(TransportErrorKind::Exhausted, what))
    }

    /// Classify a raw I/O failure: timeouts become [`TransportErrorKind::Timeout`],
    /// everything else (resets, EOF, refused connections) becomes
    /// [`TransportErrorKind::Io`] — both transient.
    pub fn from_io(context: &str, e: std::io::Error) -> Self {
        let kind = match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportErrorKind::Timeout
            }
            _ => TransportErrorKind::Io,
        };
        ProtocolError::Transport(TransportError::new(kind, format!("{context}: {e}")))
    }

    /// True when the failure was reported by the remote party (S2), i.e. the local
    /// session and transport are still healthy and can keep issuing requests.
    pub fn is_remote(&self) -> bool {
        matches!(self, ProtocolError::Remote(_))
    }

    /// True when the failure is transient: retrying the same request — after a
    /// reconnect-and-resume for transport breakdowns, or a backoff for shed
    /// requests — can succeed.  Crypto failures, protocol violations, handshake
    /// rejections and exhausted retry budgets are permanent.
    pub fn is_retryable(&self) -> bool {
        match self {
            ProtocolError::Crypto(_) => false,
            ProtocolError::Remote(e) => e.is_retryable(),
            ProtocolError::Transport(e) => e.kind.is_retryable(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Crypto(e) => write!(f, "crypto failure: {e}"),
            ProtocolError::Remote(e) => write!(f, "S2 reported: {e}"),
            ProtocolError::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Crypto(e) => Some(e),
            ProtocolError::Remote(e) => Some(e),
            ProtocolError::Transport(e) => Some(e),
        }
    }
}

impl From<CryptoError> for ProtocolError {
    fn from(e: CryptoError) -> Self {
        ProtocolError::Crypto(e)
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Remote(e)
    }
}

/// Result alias for the protocol layer.
pub type Result<T> = std::result::Result<T, ProtocolError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireError, WireErrorCode};

    #[test]
    fn display_distinguishes_the_classes() {
        let c = ProtocolError::from(CryptoError::NotInvertible);
        assert!(c.to_string().contains("crypto failure"));
        let r = ProtocolError::from(WireError::malformed("bad arity"));
        assert!(r.to_string().contains("S2 reported"));
        assert!(r.to_string().contains("bad arity"));
        assert!(r.is_remote());
        let t = ProtocolError::transport("channel closed");
        assert!(t.to_string().contains("transport failure"));
        assert!(t.to_string().contains("channel closed"));
        assert!(!t.is_remote());
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let r = ProtocolError::Remote(WireError::new(WireErrorCode::BadSequence, "x"));
        assert!(r.source().is_some());
        assert!(ProtocolError::transport("y").source().is_some());
    }

    #[test]
    fn retryability_follows_the_kind_not_the_message() {
        // Transient transport breakdowns.
        assert!(ProtocolError::transport_io("socket reset").is_retryable());
        assert!(ProtocolError::transport_timeout("read timed out").is_retryable());
        assert!(ProtocolError::transport_overloaded("server full").is_retryable());
        // Permanent transport failures.
        assert!(!ProtocolError::transport("echo mismatch").is_retryable());
        assert!(!ProtocolError::transport_rejected("bad resume token").is_retryable());
        assert!(!ProtocolError::transport_exhausted("gave up after 5").is_retryable());
        // Remote errors: only a shed request is retryable.
        assert!(ProtocolError::Remote(WireError::overloaded("inbox full")).is_retryable());
        assert!(!ProtocolError::Remote(WireError::malformed("bad arity")).is_retryable());
        // Local crypto failures never are.
        assert!(!ProtocolError::from(CryptoError::NotInvertible).is_retryable());
    }

    #[test]
    fn io_errors_classify_into_timeout_vs_io() {
        let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
        match ProtocolError::from_io("read", timeout) {
            ProtocolError::Transport(e) => assert_eq!(e.kind, TransportErrorKind::Timeout),
            other => panic!("expected transport error, got {other:?}"),
        }
        let reset = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "gone");
        match ProtocolError::from_io("write", reset) {
            ProtocolError::Transport(e) => {
                assert_eq!(e.kind, TransportErrorKind::Io);
                assert!(e.message.contains("write"));
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }
}
