//! The protocol layer's error model.
//!
//! Everything that can go wrong between the two clouds falls into one of three classes,
//! and [`ProtocolError`] keeps them apart so callers can react differently to each:
//!
//! * [`ProtocolError::Crypto`] — a *local* cryptographic operation failed on the S1 side
//!   (corrupted ciphertext, value out of range, …).
//! * [`ProtocolError::Remote`] — S2 answered with a typed
//!   [`WireError`] frame instead of a response.  The frame
//!   crosses the transport as a first-class message, so a malformed or mis-sequenced
//!   request never kills the S2 worker — the engine keeps serving and the caller gets a
//!   structured failure.
//! * [`ProtocolError::Transport`] — the channel itself broke down (thread gone, frame
//!   undecodable, envelope echo mismatch) or was misused (duplicate session id).
//!
//! `From<CryptoError>` lets every sub-protocol keep using `?` on the crypto substrate,
//! and `sectopk-core` folds the whole enum into its `SecTopKError` the same way.

use std::fmt;

use sectopk_crypto::CryptoError;

use crate::wire::WireError;

/// An error raised by the two-cloud protocol layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A local cryptographic operation failed on the caller's (S1's) side.
    Crypto(CryptoError),
    /// The crypto cloud S2 reported a typed failure over the wire.
    Remote(WireError),
    /// The transport broke down or was misused (channel closed, undecodable frame,
    /// envelope mismatch, duplicate session id).
    Transport(String),
}

impl ProtocolError {
    /// Build a transport-layer error from anything displayable.
    pub fn transport(what: impl Into<String>) -> Self {
        ProtocolError::Transport(what.into())
    }

    /// True when the failure was reported by the remote party (S2), i.e. the local
    /// session and transport are still healthy and can keep issuing requests.
    pub fn is_remote(&self) -> bool {
        matches!(self, ProtocolError::Remote(_))
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Crypto(e) => write!(f, "crypto failure: {e}"),
            ProtocolError::Remote(e) => write!(f, "S2 reported: {e}"),
            ProtocolError::Transport(what) => write!(f, "transport failure: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Crypto(e) => Some(e),
            ProtocolError::Remote(e) => Some(e),
            ProtocolError::Transport(_) => None,
        }
    }
}

impl From<CryptoError> for ProtocolError {
    fn from(e: CryptoError) -> Self {
        ProtocolError::Crypto(e)
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Remote(e)
    }
}

/// Result alias for the protocol layer.
pub type Result<T> = std::result::Result<T, ProtocolError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireError, WireErrorCode};

    #[test]
    fn display_distinguishes_the_classes() {
        let c = ProtocolError::from(CryptoError::NotInvertible);
        assert!(c.to_string().contains("crypto failure"));
        let r = ProtocolError::from(WireError::malformed("bad arity"));
        assert!(r.to_string().contains("S2 reported"));
        assert!(r.to_string().contains("bad arity"));
        assert!(r.is_remote());
        let t = ProtocolError::transport("channel closed");
        assert!(t.to_string().contains("transport failure"));
        assert!(!t.is_remote());
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let r = ProtocolError::Remote(WireError::new(WireErrorCode::BadSequence, "x"));
        assert!(r.source().is_some());
        assert!(ProtocolError::transport("y").source().is_none());
    }
}
