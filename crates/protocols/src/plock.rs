//! Poison-recovering mutex locking for the serving path.
//!
//! A poisoned mutex means some other thread panicked while holding the guard.  On
//! the serving path that must not cascade: every shared structure guarded here
//! (session registries, reply caches, connection tables) is kept consistent by
//! value-level invariants rather than by guard scope, so the recovered guard is
//! safe to use and the session layer can convert the *original* failure into a
//! typed error frame instead of tearing down the whole process.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Extension trait adding a poison-recovering [`Mutex::lock`].
pub(crate) trait PoisonFree<T> {
    /// Lock the mutex, recovering the guard if a previous holder panicked.
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> PoisonFree<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
