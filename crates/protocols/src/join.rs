//! `SecJoin` and `SecFilter` (Algorithms 11 and 12): the oblivious equi-join operator
//! `./sec` used for top-k join queries over multiple encrypted relations (§12).
//!
//! For the join the data owner encrypts every *attribute value* (not just the object id)
//! as a pair `⟨EHL(x), Enc(x)⟩`, so the clouds can homomorphically test the equi-join
//! condition `R1.t1 = R2.t2` the same way the top-k protocols test object equality.
//!
//! * `SecJoin` combines every pair of tuples (in random order), obtains the encrypted
//!   join indicator from S2 through one equality-matrix exchange, and homomorphically
//!   produces the joined tuple whose score and carried attributes are multiplied by that
//!   indicator — non-matching combinations become all-zero tuples.
//! * `SecFilter` removes those all-zero tuples without revealing to S1 which combinations
//!   matched: S1 blinds the tuples (multiplicatively for the score, additively for the
//!   attributes) and ships them as one [`crate::transport::S1Request::Filter`] message;
//!   S2 discards the zero scores, re-blinds, permutes and returns the rest; S1 finally
//!   removes the blinding.  Both parties learn only the number of surviving tuples (the
//!   `JoinMatchCount` leakage recorded in the ledgers).

use num_bigint::BigUint;
use serde::{Deserialize, Serialize};

use crate::error::Result;
use sectopk_crypto::bigint::{mod_inverse, random_below, random_invertible};
use sectopk_crypto::paillier::Ciphertext;
use sectopk_crypto::prp::RandomPermutation;
use sectopk_ehl::EhlPlus;
use sectopk_storage::EncryptedItem;

use crate::context::TwoClouds;
use crate::ledger::LeakageEvent;
use crate::primitives::EqPlan;
use crate::transport::{EqWants, FilterTuple, S1Request, S2Response};

/// One tuple of a relation encrypted for joining: every attribute is a
/// `⟨EHL(value), Enc(value)⟩` pair (Algorithm 10).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct EncryptedTuple {
    /// The encrypted attribute cells, in (permuted) attribute order.
    pub cells: Vec<EncryptedItem>,
}

impl EncryptedTuple {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.cells.iter().map(EncryptedItem::byte_len).sum()
    }
}

/// One combined output tuple of `SecJoin`: the encrypted ranking score plus the carried
/// (encrypted) attributes; all values are zero when the pair did not satisfy the join
/// condition.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct JoinedTuple {
    /// Encrypted ranking score `Enc(b · (x_{t3} + x_{t4}))`.
    pub score: Ciphertext,
    /// Encrypted carried attributes `Enc(b · x_l)`.
    pub attributes: Vec<Ciphertext>,
}

impl JoinedTuple {
    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.score.byte_len() + self.attributes.iter().map(Ciphertext::byte_len).sum::<usize>()
    }
}

/// Description of a binary top-k join: the equi-join condition and the two score
/// attributes (`ORDER BY R1.t3 + R2.t4`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// Attribute index of the join key in the first relation (`t1`).
    pub left_key: usize,
    /// Attribute index of the join key in the second relation (`t2`).
    pub right_key: usize,
    /// Attribute index of the first score term (`t3`, in the first relation).
    pub left_score: usize,
    /// Attribute index of the second score term (`t4`, in the second relation).
    pub right_score: usize,
}

impl TwoClouds {
    /// `SecJoin` (Algorithm 11): combine every pair of tuples from the two encrypted
    /// relations in random order, producing one [`JoinedTuple`] per pair whose score and
    /// carried attributes are non-zero only if the pair satisfies the join condition.
    ///
    /// `carry_left` / `carry_right` list the attribute indices whose encrypted values are
    /// carried into the output tuples.
    pub fn sec_join(
        &mut self,
        left: &[EncryptedTuple],
        right: &[EncryptedTuple],
        spec: &JoinSpec,
        carry_left: &[usize],
        carry_right: &[usize],
    ) -> Result<Vec<JoinedTuple>> {
        let pk = self.s1.keys.paillier_public.clone();
        if left.is_empty() || right.is_empty() {
            return Ok(Vec::new());
        }

        // Randomize the order in which pairs are processed (Algorithm 11 line 3).
        let mut pair_indices: Vec<(usize, usize)> = Vec::with_capacity(left.len() * right.len());
        for i in 0..left.len() {
            for j in 0..right.len() {
                pair_indices.push((i, j));
            }
        }
        let perm = RandomPermutation::sample(pair_indices.len(), &mut self.s1.rng);
        let pair_indices = perm.permute(&pair_indices);

        // ---- Equality of the join keys for every pair (one matrix exchange). ----------
        let pairs: Vec<(&EhlPlus, &EhlPlus)> = pair_indices
            .iter()
            .map(|&(i, j)| (&left[i].cells[spec.left_key].ehl, &right[j].cells[spec.right_key].ehl))
            .collect();
        let diffs = self.eq_diffs(&pairs);
        let outcome = self
            .run_eq_plans(vec![EqPlan {
                cols: diffs.len(),
                diffs,
                context: "sec_join",
                depth: None,
                want: EqWants::none(),
            }])?
            .pop()
            .expect("one plan in, one outcome out");

        // ---- Score and carried attributes, gated by the join indicator — one combined
        //      selection so the whole join costs a single RecoverEnc round. -------------
        // score_ij = b_ij · (x_{t3}(i) + x_{t4}(j))
        let carried_per_tuple = carry_left.len() + carry_right.len();
        let mut gate_bits = Vec::with_capacity(pair_indices.len() * (1 + carried_per_tuple));
        let mut gate_values = Vec::with_capacity(gate_bits.capacity());
        for (pair_pos, &(i, j)) in pair_indices.iter().enumerate() {
            gate_bits.push(outcome.bits[pair_pos].clone());
            gate_values.push(pk.add(
                &left[i].cells[spec.left_score].score,
                &right[j].cells[spec.right_score].score,
            ));
            for &a in carry_left {
                gate_bits.push(outcome.bits[pair_pos].clone());
                gate_values.push(left[i].cells[a].score.clone());
            }
            for &a in carry_right {
                gate_bits.push(outcome.bits[pair_pos].clone());
                gate_values.push(right[j].cells[a].score.clone());
            }
        }
        let gated = self.select_scores(&gate_bits, &gate_values)?;

        let stride = 1 + carried_per_tuple;
        let mut joined = Vec::with_capacity(pair_indices.len());
        for pair_pos in 0..pair_indices.len() {
            let base = pair_pos * stride;
            joined.push(JoinedTuple {
                score: gated[base].clone(),
                attributes: gated[base + 1..base + stride].to_vec(),
            });
        }
        Ok(joined)
    }

    /// `SecFilter` (Algorithm 12): discard the all-zero tuples produced by `SecJoin`
    /// without revealing to S1 which pairs matched.  Both parties learn only the number
    /// of surviving tuples.
    pub fn sec_filter(&mut self, tuples: Vec<JoinedTuple>) -> Result<Vec<JoinedTuple>> {
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        let pk = self.s1.keys.paillier_public.clone();
        let own_sk = self.s1.own_secret.clone();

        // ---- S1: blind (score multiplicatively, attributes additively) and permute. ----
        let mut blinded: Vec<FilterTuple> = Vec::with_capacity(tuples.len());
        for t in &tuples {
            let r = random_invertible(&mut self.s1.rng, pk.n());
            let r_inv_value = mod_inverse(&r, pk.n())?;
            let score = pk.mul_plain(&t.score, &r);
            let mut attribute_masks = Vec::with_capacity(t.attributes.len());
            let mut attributes = Vec::with_capacity(t.attributes.len());
            for a in &t.attributes {
                let mask = random_below(&mut self.s1.rng, pk.n());
                attributes.push(pk.add_plain(a, &mask));
                attribute_masks.push(self.s1.own_pool.encrypt(&mask)?);
            }
            blinded.push(FilterTuple {
                score,
                attributes,
                score_unblinder: self.s1.own_pool.encrypt(&r_inv_value)?,
                attribute_masks,
            });
        }
        let pi = RandomPermutation::sample(blinded.len(), &mut self.s1.rng);
        let shipped = pi.permute(&blinded);

        // ---- transport: S2 drops zero-score tuples, re-blinds and re-permutes. ---------
        let survivors = match self.round(S1Request::Filter { tuples: shipped })? {
            S2Response::Filter { survivors } => survivors,
            other => return Err(crate::primitives::unexpected(&other, "Filter")),
        };
        self.s1.ledger.record(LeakageEvent::JoinMatchCount(survivors.len()));

        // ---- S1: remove the blinding. ----------------------------------------------------
        let mut output = Vec::with_capacity(survivors.len());
        for s in &survivors {
            let r_tilde: BigUint = own_sk.decrypt(&s.score_unblinder)?;
            let score = pk.mul_plain(&s.score, &r_tilde);
            let mut attributes = Vec::with_capacity(s.attributes.len());
            for (a, mask_cipher) in s.attributes.iter().zip(s.attribute_masks.iter()) {
                let mask = own_sk.decrypt(mask_cipher)?;
                let neg = (pk.n() - (&mask % pk.n())) % pk.n();
                attributes.push(pk.add_plain(a, &neg));
            }
            output.push(JoinedTuple { score, attributes });
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;
    use std::collections::BTreeSet;

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(9001);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 90).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    /// Encrypt a plaintext tuple of attribute values for joining.
    fn tuple(
        values: &[u64],
        encoder: &EhlEncoder,
        pk: &sectopk_crypto::PaillierPublicKey,
        rng: &mut StdRng,
    ) -> EncryptedTuple {
        EncryptedTuple {
            cells: values
                .iter()
                .map(|&v| EncryptedItem {
                    ehl: encoder.encode(&v.to_be_bytes(), pk, rng).unwrap(),
                    score: pk.encrypt_u64(v, rng).unwrap(),
                })
                .collect(),
        }
    }

    #[test]
    fn join_then_filter_returns_exactly_the_matching_pairs() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let sk = &master.paillier_secret;

        // R1(A, C): join on A; score contribution C.
        let left = vec![
            tuple(&[1, 10], &encoder, pk, &mut rng),
            tuple(&[2, 20], &encoder, pk, &mut rng),
            tuple(&[3, 30], &encoder, pk, &mut rng),
        ];
        // R2(B, D): join on B; score contribution D.
        let right = vec![
            tuple(&[2, 5], &encoder, pk, &mut rng),
            tuple(&[3, 7], &encoder, pk, &mut rng),
            tuple(&[9, 1], &encoder, pk, &mut rng),
        ];
        let spec = JoinSpec { left_key: 0, right_key: 0, left_score: 1, right_score: 1 };

        let joined = clouds.sec_join(&left, &right, &spec, &[0, 1], &[1]).unwrap();
        assert_eq!(joined.len(), 9, "SecJoin outputs one tuple per pair");

        let filtered = clouds.sec_filter(joined).unwrap();
        assert_eq!(filtered.len(), 2, "only A=2 and A=3 match");

        // Scores: 20+5 = 25 for the A=2 pair, 30+7 = 37 for the A=3 pair.
        let scores: BTreeSet<u64> =
            filtered.iter().map(|t| sk.decrypt_u64(&t.score).unwrap()).collect();
        assert_eq!(scores, BTreeSet::from([25, 37]));

        // Carried attributes unblind to the original values (left key, left score, right score).
        for t in &filtered {
            let attrs: Vec<u64> = t.attributes.iter().map(|a| sk.decrypt_u64(a).unwrap()).collect();
            assert!(
                attrs == vec![2, 20, 5] || attrs == vec![3, 30, 7],
                "unexpected carried attributes {attrs:?}"
            );
        }
    }

    #[test]
    fn no_matches_yields_empty_result() {
        let (_master, mut clouds, encoder, mut rng) = setup();
        let pk = clouds.pk().clone();
        let left = vec![tuple(&[1, 10], &encoder, &pk, &mut rng)];
        let right = vec![tuple(&[2, 20], &encoder, &pk, &mut rng)];
        let spec = JoinSpec { left_key: 0, right_key: 0, left_score: 1, right_score: 1 };
        let joined = clouds.sec_join(&left, &right, &spec, &[], &[]).unwrap();
        let filtered = clouds.sec_filter(joined).unwrap();
        assert!(filtered.is_empty());
    }

    #[test]
    fn leakage_is_equality_bits_and_match_count_only() {
        let (_master, mut clouds, encoder, mut rng) = setup();
        let pk = clouds.pk().clone();
        let left =
            vec![tuple(&[4, 1], &encoder, &pk, &mut rng), tuple(&[5, 2], &encoder, &pk, &mut rng)];
        let right = vec![tuple(&[5, 3], &encoder, &pk, &mut rng)];
        let spec = JoinSpec { left_key: 0, right_key: 0, left_score: 1, right_score: 1 };
        let joined = clouds.sec_join(&left, &right, &spec, &[0], &[0]).unwrap();
        let _ = clouds.sec_filter(joined).unwrap();
        assert!(clouds.s2_ledger().only_contains(&["equality_bit", "join_match_count"]));
        assert!(clouds.s1_ledger().only_contains(&["join_match_count"]));
    }

    #[test]
    fn join_and_filter_cost_three_rounds_when_batched() {
        let (_master, mut clouds, encoder, mut rng) = setup();
        let pk = clouds.pk().clone();
        let left =
            vec![tuple(&[4, 1], &encoder, &pk, &mut rng), tuple(&[5, 2], &encoder, &pk, &mut rng)];
        let right = vec![tuple(&[5, 3], &encoder, &pk, &mut rng)];
        let spec = JoinSpec { left_key: 0, right_key: 0, left_score: 1, right_score: 1 };
        let joined = clouds.sec_join(&left, &right, &spec, &[0], &[0]).unwrap();
        let _ = clouds.sec_filter(joined).unwrap();
        // Equality matrix + combined RecoverEnc + the filter exchange.
        assert_eq!(clouds.channel().rounds, 3);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let (_master, mut clouds, _encoder, _rng) = setup();
        let spec = JoinSpec { left_key: 0, right_key: 0, left_score: 0, right_score: 0 };
        assert!(clouds.sec_join(&[], &[], &spec, &[], &[]).unwrap().is_empty());
        assert!(clouds.sec_filter(Vec::new()).unwrap().is_empty());
    }
}
