//! `SecBest` (Algorithm 6): the per-depth best-score (upper-bound) computation.
//!
//! At depth `d`, for the item `E(I_i) = ⟨EHL(o_i), Enc(x_i)⟩` appearing in list `i`, the
//! NRA upper bound is
//!
//! ```text
//! B(o_i) = x_i + Σ_{j ≠ i} ( x_j(o_i)   if o_i already appeared in list j at depth ≤ d
//!                            x_j^d      otherwise — the "bottom" score last seen in L_j )
//! ```
//!
//! S1 scans the prefix of every other list seen so far and asks S2 for the equality bits
//! (the designed equality-pattern leakage).  The "no depth matched" selector that gates
//! the bottom-score fallback (Algorithm 6 lines 8-12) is requested as the
//! `row_unmatched` aggregate of the same equality exchange: S2 derives `E2(¬∨_l t_l)`
//! from the bits it already decrypted, so the whole per-list decision costs no extra
//! round.  With batching, all lists and all items of one depth share one equality round
//! and one `RecoverEnc` round.

use crate::error::Result;
use sectopk_crypto::damgard_jurik::LayeredCiphertext;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_crypto::prp::RandomPermutation;
use sectopk_ehl::EhlPlus;
use sectopk_storage::EncryptedItem;

use crate::context::TwoClouds;
use crate::primitives::EqPlan;
use crate::transport::EqWants;

impl TwoClouds {
    /// Compute the encrypted best (upper-bound) score of `item`, which appears in the
    /// queried list `own_list` at depth `depth`, given the prefixes `seen[j]` (depths
    /// `0..=depth`) of every queried list — Protocol 8.2 / Algorithm 6.
    pub fn sec_best(
        &mut self,
        item: &EncryptedItem,
        own_list: usize,
        seen: &[Vec<EncryptedItem>],
        depth: usize,
    ) -> Result<Ciphertext> {
        let jobs = vec![(item, own_list)];
        Ok(self.best_many(&jobs, seen, depth)?.pop().expect("one job in, one score out"))
    }

    /// Compute the best scores of all `m` items at depth `d` (Algorithm 3 line 6).
    ///
    /// `seen[j]` must contain the items of queried list `j` at depths `0..=depth`.
    pub fn sec_best_depth(
        &mut self,
        depth_items: &[EncryptedItem],
        seen: &[Vec<EncryptedItem>],
        depth: usize,
    ) -> Result<Vec<Ciphertext>> {
        assert_eq!(depth_items.len(), seen.len(), "one seen-prefix per queried list");
        let jobs: Vec<(&EncryptedItem, usize)> =
            depth_items.iter().enumerate().map(|(i, item)| (item, i)).collect();
        self.best_many(&jobs, seen, depth)
    }

    /// Shared driver: one equality plan per (item, other-list) pair — all shipped in one
    /// batched round — then one combined selection/recovery round.
    fn best_many(
        &mut self,
        jobs: &[(&EncryptedItem, usize)],
        seen: &[Vec<EncryptedItem>],
        depth: usize,
    ) -> Result<Vec<Ciphertext>> {
        let pk = self.s1.keys.paillier_public.clone();

        // One entry per scanned (job, list): the permuted prefix scores and the bottom.
        struct Scan {
            job: usize,
            scores: Vec<Ciphertext>,
            bottom: Ciphertext,
        }

        let mut plans = Vec::new();
        let mut scans: Vec<Scan> = Vec::new();
        for (job_idx, (item, own_list)) in jobs.iter().enumerate() {
            for (j, list_prefix) in seen.iter().enumerate() {
                if j == *own_list || list_prefix.is_empty() {
                    continue;
                }
                // ---- S1: permute the scanned prefix and plan its equality row. --------
                let perm = RandomPermutation::sample(list_prefix.len(), &mut self.s1.rng);
                let refs: Vec<&EncryptedItem> = list_prefix.iter().collect();
                let permuted: Vec<&EncryptedItem> = perm.permute(&refs);
                let pairs: Vec<(&EhlPlus, &EhlPlus)> =
                    permuted.iter().map(|other| (&item.ehl, &other.ehl)).collect();
                let diffs = self.eq_diffs(&pairs);
                plans.push(EqPlan {
                    cols: diffs.len(),
                    diffs,
                    context: "sec_best",
                    depth: Some(depth),
                    want: EqWants { row_unmatched: true, ..EqWants::none() },
                });
                scans.push(Scan {
                    job: job_idx,
                    scores: permuted.iter().map(|o| o.score.clone()).collect(),
                    bottom: list_prefix.last().expect("non-empty prefix").score.clone(),
                });
            }
        }
        let outcomes = self.run_eq_plans(plans)?;

        // ---- S1: combined selection — per scan: the matching scores, gated by the
        //      equality bits, plus the bottom score gated by the "unseen" aggregate. ----
        let mut all_bits: Vec<LayeredCiphertext> = Vec::new();
        let mut all_values: Vec<Ciphertext> = Vec::new();
        for (scan, outcome) in scans.iter().zip(outcomes.iter()) {
            all_bits.extend(outcome.bits.iter().cloned());
            all_values.extend(scan.scores.iter().cloned());
            // The single matrix row yields one `E2(¬∨ t)` bit (Algorithm 6 line 10).
            let unseen =
                outcome.aggregates.row_unmatched.first().expect("row_unmatched was requested");
            all_bits.push(unseen.clone());
            all_values.push(scan.bottom.clone());
        }
        let selected = self.select_scores(&all_bits, &all_values)?;

        // ---- S1: sum the slices back into per-job best scores. -------------------------
        let mut bests: Vec<Ciphertext> = jobs.iter().map(|(item, _)| item.score.clone()).collect();
        let mut offset = 0usize;
        for scan in &scans {
            let span = scan.scores.len() + 1;
            for s in &selected[offset..offset + span] {
                bests[scan.job] = pk.add(&bests[scan.job], s);
            }
            offset += span;
        }
        Ok(bests.into_iter().map(|b| self.s1.pool.rerandomize(&b)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;
    use sectopk_storage::ObjectId;

    fn make_item(
        object: ObjectId,
        score: u64,
        encoder: &EhlEncoder,
        pk: &sectopk_crypto::PaillierPublicKey,
        rng: &mut StdRng,
    ) -> EncryptedItem {
        EncryptedItem {
            ehl: encoder.encode(&object.to_bytes(), pk, rng).unwrap(),
            score: pk.encrypt_u64(score, rng).unwrap(),
        }
    }

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(71);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 8).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    /// Build the Fig. 3 sorted lists (R1, R2, R3) down to `depth` (1-based).
    fn fig3_prefixes(
        depth: usize,
        encoder: &EhlEncoder,
        pk: &sectopk_crypto::PaillierPublicKey,
        rng: &mut StdRng,
    ) -> Vec<Vec<EncryptedItem>> {
        let r1 = [(1u64, 10u64), (2, 8), (3, 5), (4, 3), (5, 1)];
        let r2 = [(2u64, 8u64), (3, 7), (1, 3), (4, 2), (5, 1)];
        let r3 = [(4u64, 8u64), (3, 6), (1, 2), (5, 1), (2, 0)];
        [r1, r2, r3]
            .iter()
            .map(|list| {
                list[..depth]
                    .iter()
                    .map(|&(o, x)| make_item(ObjectId(o), x, encoder, pk, rng))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fig3_depth1_best_scores() {
        // Fig. 3a: upper bounds after depth 1 are 26 for X1, X2 and X4
        // (own score + the other two lists' bottoms).
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let seen = fig3_prefixes(1, &encoder, pk, &mut rng);
        let depth_items: Vec<EncryptedItem> = seen.iter().map(|l| l[0].clone()).collect();
        let bests = clouds.sec_best_depth(&depth_items, &seen, 1).unwrap();
        let values: Vec<u64> =
            bests.iter().map(|c| master.paillier_secret.decrypt_u64(c).unwrap()).collect();
        assert_eq!(values, vec![26, 26, 26]);
    }

    #[test]
    fn fig3_depth2_best_scores() {
        // Fig. 3b: at depth 2 the items are X2/8 (R1), X3/7 (R2), X3/6 (R3).
        // X2: 8 + 8 (seen in R2 depth1) + 6 (bottom of R3)            = 22
        // X3 in R2: 7 + 8 (bottom R1) + 6 (seen in R3 depth 2)        = 21
        // X3 in R3: 6 + 8 (bottom R1) + 7 (seen in R2 depth 2)        = 21
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let seen = fig3_prefixes(2, &encoder, pk, &mut rng);
        let depth_items: Vec<EncryptedItem> = seen.iter().map(|l| l[1].clone()).collect();
        let bests = clouds.sec_best_depth(&depth_items, &seen, 2).unwrap();
        let values: Vec<u64> =
            bests.iter().map(|c| master.paillier_secret.decrypt_u64(c).unwrap()).collect();
        assert_eq!(values, vec![22, 21, 21]);
    }

    #[test]
    fn unseen_lists_contribute_their_bottom() {
        // Object 9 appears only in list 0; lists 1 and 2 contribute their bottoms.
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let seen = vec![
            vec![make_item(ObjectId(9), 50, &encoder, pk, &mut rng)],
            vec![
                make_item(ObjectId(1), 40, &encoder, pk, &mut rng),
                make_item(ObjectId(2), 30, &encoder, pk, &mut rng),
            ],
            vec![make_item(ObjectId(3), 7, &encoder, pk, &mut rng)],
        ];
        let item = seen[0][0].clone();
        let best = clouds.sec_best(&item, 0, &seen, 1).unwrap();
        // 50 + bottom(list1)=30 + bottom(list2)=7 = 87.
        assert_eq!(master.paillier_secret.decrypt_u64(&best).unwrap(), 87);
    }

    #[test]
    fn whole_depth_costs_two_rounds_when_batched() {
        let (_master, mut clouds, encoder, mut rng) = setup();
        let pk = clouds.pk().clone();
        let seen = fig3_prefixes(2, &encoder, &pk, &mut rng);
        let depth_items: Vec<EncryptedItem> = seen.iter().map(|l| l[1].clone()).collect();
        let _ = clouds.sec_best_depth(&depth_items, &seen, 2).unwrap();
        // One batched equality round + one combined RecoverEnc round for the whole depth.
        assert_eq!(clouds.channel().rounds, 2);
    }

    #[test]
    fn leakage_is_limited_to_equality_bits() {
        let (_master, mut clouds, encoder, mut rng) = setup();
        let pk = clouds.pk().clone();
        let seen = fig3_prefixes(2, &encoder, &pk, &mut rng);
        let depth_items: Vec<EncryptedItem> = seen.iter().map(|l| l[1].clone()).collect();
        let _ = clouds.sec_best_depth(&depth_items, &seen, 2).unwrap();
        assert!(clouds.s2_ledger().only_contains(&["equality_bit"]));
        assert!(clouds.s1_ledger().is_empty());
    }
}
