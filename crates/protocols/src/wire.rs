//! Binary wire codec for the inter-cloud transport.
//!
//! Every protocol message that crosses the S1 ↔ S2 boundary is lowered into the serde
//! [`serde::Value`] tree and encoded with this compact, self-describing binary format.
//! The [`crate::channel::ChannelMetrics`] byte counts are *measured* from these encoded
//! buffers — not estimated from `byte_len()` sums — so the bandwidth figures (Table 3 /
//! Fig. 13) reflect what an actual deployment would put on the wire, including framing
//! overhead (field names, tags, lengths).
//!
//! Format, one tag byte per node:
//!
//! | tag | payload |
//! |-----|---------|
//! | `0` | null |
//! | `1` / `2` | bool false / true |
//! | `3` | u64 as LEB128 varint |
//! | `4` | i64 zig-zag encoded as LEB128 varint |
//! | `5` | f64 as 8 big-endian bytes |
//! | `6` | string: varint length + UTF-8 bytes |
//! | `7` | byte string: varint length + raw bytes (ciphertexts use this) |
//! | `8` | sequence: varint count + encoded items |
//! | `9` | map: varint count + (varint key length + key UTF-8 + encoded value)* |

use std::fmt;

use serde::{Deserialize, Serialize, Value};

use sectopk_crypto::CryptoError;

// ====================================================================================
// The typed error frame
// ====================================================================================

/// Machine-readable failure class of a [`WireError`] frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireErrorCode {
    /// The request decoded, but its contents are structurally invalid (arity mismatch,
    /// index out of range, nested batch, zero-column matrix, …).
    MalformedRequest,
    /// The request is well-formed but arrived out of sequence with respect to the
    /// engine's per-session state (e.g. an aggregate over bits that were never
    /// streamed).
    BadSequence,
    /// The request bytes could not be decoded by the wire codec.
    Codec,
    /// The frame carried an unknown tag byte.
    UnknownFrame,
    /// A cryptographic operation failed while processing the request (corrupted
    /// ciphertext, wrong key, value out of range).
    Crypto,
    /// The serving side shed the request under load (session inbox full, session
    /// table full, or the server is draining).  Unlike every other code this one is
    /// *transient*: the request was never executed and may safely be retried.
    Overloaded,
    /// The engine detected an internal inconsistency while processing the request
    /// (e.g. the parallel compute phase produced outputs whose order disagrees with
    /// the serial commit phase).  The session survives, but the request failed for a
    /// reason that is S2's fault rather than the caller's; not retryable, because the
    /// inconsistency is deterministic for the request that exposed it.
    Internal,
}

impl WireErrorCode {
    /// Every code, in declaration order — for exhaustive tests and log tooling.
    pub const ALL: [WireErrorCode; 7] = [
        WireErrorCode::MalformedRequest,
        WireErrorCode::BadSequence,
        WireErrorCode::Codec,
        WireErrorCode::UnknownFrame,
        WireErrorCode::Crypto,
        WireErrorCode::Overloaded,
        WireErrorCode::Internal,
    ];

    /// Stable lowercase name, used in `Display` and log output.
    pub fn name(self) -> &'static str {
        match self {
            WireErrorCode::MalformedRequest => "malformed_request",
            WireErrorCode::BadSequence => "bad_sequence",
            WireErrorCode::Codec => "codec",
            WireErrorCode::UnknownFrame => "unknown_frame",
            WireErrorCode::Crypto => "crypto",
            WireErrorCode::Overloaded => "overloaded",
            WireErrorCode::Internal => "internal",
        }
    }

    /// True when a request failing with this code was *not* executed and may be
    /// retried verbatim (currently only [`WireErrorCode::Overloaded`]).
    pub fn is_retryable(self) -> bool {
        matches!(self, WireErrorCode::Overloaded)
    }
}

/// A structured error frame: how S2 reports a failure back across the transport.
///
/// Engine failures never panic the serving thread; they are encoded as an
/// `S2Response::Error(WireError)` message, metered and shipped like any other reply, and
/// surfaced to the caller as
/// [`ProtocolError::Remote`](crate::error::ProtocolError::Remote).  The `code` lets
/// callers (and the serving layer's failure accounting) distinguish "your request was
/// garbage" from "the session state is out of sync" without parsing strings.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable failure class.
    pub code: WireErrorCode,
    /// Human-readable context for logs and test failure messages.
    pub message: String,
}

impl WireError {
    /// Build an error frame from a code and a message.
    pub fn new(code: WireErrorCode, message: impl Into<String>) -> Self {
        WireError { code, message: message.into() }
    }

    /// A structurally invalid request.
    pub fn malformed(message: impl Into<String>) -> Self {
        Self::new(WireErrorCode::MalformedRequest, message)
    }

    /// A request that is inconsistent with the engine's per-session state.
    pub fn bad_sequence(message: impl Into<String>) -> Self {
        Self::new(WireErrorCode::BadSequence, message)
    }

    /// A frame whose payload could not be decoded.
    pub fn codec(message: impl Into<String>) -> Self {
        Self::new(WireErrorCode::Codec, message)
    }

    /// A frame with an unknown tag byte.
    pub fn unknown_frame(tag: u8) -> Self {
        Self::new(WireErrorCode::UnknownFrame, format!("unknown frame tag {tag}"))
    }

    /// A request shed under load before execution (safe to retry).
    pub fn overloaded(message: impl Into<String>) -> Self {
        Self::new(WireErrorCode::Overloaded, message)
    }

    /// An internal engine inconsistency surfaced while processing the request.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(WireErrorCode::Internal, message)
    }

    /// True when the failed request was never executed and may be retried verbatim.
    pub fn is_retryable(&self) -> bool {
        self.code.is_retryable()
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code.name(), self.message)
    }
}

impl std::error::Error for WireError {}

impl From<CryptoError> for WireError {
    fn from(e: CryptoError) -> Self {
        WireError::new(WireErrorCode::Crypto, e.to_string())
    }
}

/// Encode any serializable message into its binary wire form.
pub fn to_bytes<T: Serialize + ?Sized>(message: &T) -> Vec<u8> {
    let value = message.to_value();
    let mut out = Vec::with_capacity(encoded_len_value(&value));
    encode_value(&value, &mut out);
    out
}

/// The exact number of bytes [`to_bytes`] would produce, without building the buffer.
/// The in-process transport uses this to meter messages it never actually serializes.
pub fn encoded_len<T: Serialize + ?Sized>(message: &T) -> usize {
    encoded_len_value(&message.to_value())
}

/// Maximum nesting depth a decoded value may have.  Protocol messages nest a handful of
/// levels (enum → struct → vec → tuple → bytes); the cap turns a corrupted or hostile
/// deeply-nested frame into a decode error instead of a stack overflow.
const MAX_DECODE_DEPTH: u32 = 64;

/// Decode a message from its binary wire form.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, serde::Error> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let value = decode_value(&mut cursor, 0)?;
    if cursor.pos != bytes.len() {
        return Err(serde::Error::custom("trailing bytes after wire message"));
    }
    T::from_value(&value)
}

fn varint_len(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encoded_len_value(v: &Value) -> usize {
    1 + match v {
        Value::Null | Value::Bool(_) => 0,
        Value::U64(n) => varint_len(*n),
        Value::I64(n) => varint_len(zigzag(*n)),
        Value::F64(_) => 8,
        Value::Str(s) => varint_len(s.len() as u64) + s.len(),
        Value::Bytes(b) => varint_len(b.len() as u64) + b.len(),
        Value::Seq(items) => {
            varint_len(items.len() as u64) + items.iter().map(encoded_len_value).sum::<usize>()
        }
        Value::Map(entries) => {
            varint_len(entries.len() as u64)
                + entries
                    .iter()
                    .map(|(k, v)| varint_len(k.len() as u64) + k.len() + encoded_len_value(v))
                    .sum::<usize>()
        }
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(false) => out.push(1),
        Value::Bool(true) => out.push(2),
        Value::U64(n) => {
            out.push(3);
            write_varint(*n, out);
        }
        Value::I64(n) => {
            out.push(4);
            write_varint(zigzag(*n), out);
        }
        Value::F64(f) => {
            out.push(5);
            out.extend_from_slice(&f.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(6);
            write_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(7);
            write_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Seq(items) => {
            out.push(8);
            write_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(9);
            write_varint(entries.len() as u64, out);
            for (k, v) in entries {
                write_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode_value(v, out);
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<u8, serde::Error> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| serde::Error::custom("truncated wire message"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], serde::Error> {
        // Indexing `pos..` first keeps every arithmetic step in-bounds; a pathological
        // length prefix (e.g. u64::MAX) fails the `get` instead of overflowing `pos + n`.
        let slice = self
            .bytes
            .get(self.pos..)
            .and_then(|rest| rest.get(..n))
            .ok_or_else(|| serde::Error::custom("truncated wire message"))?;
        self.pos += n;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, serde::Error> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
                // The 10th byte may only contribute the single remaining bit; anything
                // else would be silently shifted out of the u64.
                return Err(serde::Error::custom("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<String, serde::Error> {
        let len = self.varint()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| serde::Error::custom("invalid UTF-8 string"))
    }
}

fn decode_value(cursor: &mut Cursor<'_>, depth: u32) -> Result<Value, serde::Error> {
    if depth > MAX_DECODE_DEPTH {
        return Err(serde::Error::custom("wire message nests too deeply"));
    }
    match cursor.byte()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(false)),
        2 => Ok(Value::Bool(true)),
        3 => Ok(Value::U64(cursor.varint()?)),
        4 => Ok(Value::I64(unzigzag(cursor.varint()?))),
        5 => {
            let raw = cursor.take(8)?;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(raw);
            Ok(Value::F64(f64::from_be_bytes(buf)))
        }
        6 => Ok(Value::Str(cursor.string()?)),
        7 => {
            let len = cursor.varint()? as usize;
            Ok(Value::Bytes(cursor.take(len)?.to_vec()))
        }
        8 => {
            let count = cursor.varint()? as usize;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(decode_value(cursor, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        9 => {
            let count = cursor.varint()? as usize;
            let mut entries = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let key = cursor.string()?;
                entries.push((key, decode_value(cursor, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        tag => Err(serde::Error::custom(format!("unknown wire tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        assert_eq!(buf.len(), encoded_len_value(&v), "encoded_len must match: {v:?}");
        let mut cursor = Cursor { bytes: &buf, pos: 0 };
        let back = decode_value(&mut cursor, 0).unwrap();
        assert_eq!(cursor.pos, buf.len());
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        for n in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(Value::U64(n));
        }
        for n in [0i64, -1, 1, i64::MIN, i64::MAX] {
            round_trip(Value::I64(n));
        }
        round_trip(Value::F64(2.75));
        round_trip(Value::Str("hello — utf8 ✓".into()));
        round_trip(Value::Bytes(vec![0, 255, 1, 2, 3]));
        round_trip(Value::Bytes(Vec::new()));
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(Value::Seq(vec![Value::U64(1), Value::Str("x".into()), Value::Null]));
        round_trip(Value::Map(vec![
            ("a".into(), Value::Bytes(vec![9, 9])),
            ("b".into(), Value::Seq(vec![Value::Bool(true)])),
        ]));
    }

    #[test]
    fn typed_messages_round_trip() {
        let v: Vec<(usize, usize)> = vec![(0, 1), (7, 3)];
        let bytes = to_bytes(&v);
        assert_eq!(bytes.len(), encoded_len(&v));
        let back: Vec<(usize, usize)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        assert!(from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes::<Vec<u64>>(&[250]).is_err(), "unknown tag");
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(from_bytes::<Vec<u64>>(&extended).is_err(), "trailing bytes");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Thousands of [seq-of-one] frames: must be a decode error, not a stack overflow.
        let deep: Vec<u8> = std::iter::repeat_n([8u8, 1], 50_000).flatten().collect();
        assert!(from_bytes::<Vec<u64>>(&deep).is_err());
        // Nesting within the cap still decodes.
        let mut shallow = vec![8u8, 1, 8, 1];
        shallow.push(0); // innermost null
        assert!(from_bytes::<serde::Value>(&shallow).is_ok());
    }

    #[test]
    fn huge_length_prefixes_error_instead_of_panicking() {
        // Bytes tag with a u64::MAX length prefix: must be a decode error, not an
        // overflow panic in the bounds check.
        let mut frame = vec![7u8];
        frame.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(from_bytes::<Vec<u8>>(&frame).is_err());
        // Same for a sequence claiming u64::MAX items.
        let mut seq = vec![8u8];
        seq.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(from_bytes::<Vec<u64>>(&seq).is_err());
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // Tag 3 (u64) followed by ten continuation bytes whose last byte carries more
        // than the one bit that still fits in a u64 — must error, not truncate.
        let mut overlong = vec![3u8];
        overlong.extend_from_slice(&[0x80; 9]);
        overlong.push(0x7f);
        assert!(from_bytes::<u64>(&overlong).is_err());
        // Eleven bytes of continuation is an error too.
        let mut too_many = vec![3u8];
        too_many.extend_from_slice(&[0x80; 10]);
        too_many.push(0x01);
        assert!(from_bytes::<u64>(&too_many).is_err());
        // But u64::MAX itself (10th byte = 0x01) still round-trips.
        let max = to_bytes(&u64::MAX);
        assert_eq!(from_bytes::<u64>(&max).unwrap(), u64::MAX);
    }

    #[test]
    fn wire_error_frames_round_trip_and_display() {
        for code in WireErrorCode::ALL {
            let e = WireError::new(code, "context");
            let back: WireError = from_bytes(&to_bytes(&e)).unwrap();
            assert_eq!(back, e);
            assert!(e.to_string().contains(code.name()));
            // Only a shed request is safe to retry verbatim.
            assert_eq!(e.is_retryable(), code == WireErrorCode::Overloaded);
        }
        let crypto: WireError = CryptoError::NotInvertible.into();
        assert_eq!(crypto.code, WireErrorCode::Crypto);
        assert_eq!(WireError::unknown_frame(7).code, WireErrorCode::UnknownFrame);
        assert_eq!(WireError::overloaded("full").code, WireErrorCode::Overloaded);
    }

    #[test]
    fn ciphertext_bytes_dominate_message_size() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};
        let mut rng = StdRng::seed_from_u64(5);
        let (pk, _sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let c = pk.encrypt_u64(9, &mut rng).unwrap();
        let encoded = to_bytes(&c);
        // Tag + varint length + raw bytes: framing overhead is a handful of bytes.
        assert!(encoded.len() >= c.byte_len());
        assert!(encoded.len() <= c.byte_len() + 4);
    }
}
