//! Metered inter-cloud channel.
//!
//! The paper's §11.2.5 evaluates the communication *bandwidth* (bytes exchanged between
//! S1 and S2 per depth and in total) and the resulting *latency* under an assumed link
//! speed (50 Mbps between the two clouds).  Both clouds run in-process in this
//! reproduction, so every protocol message is routed through a [`ChannelMetrics`] value
//! that records message counts, ciphertext counts and byte volumes; the figures/table
//! harness reads these counters to regenerate Table 3 and Fig. 13.

use serde::{Deserialize, Serialize};

/// Direction of a protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Primary cloud S1 → crypto cloud S2.
    S1ToS2,
    /// Crypto cloud S2 → primary cloud S1.
    S2ToS1,
}

/// Accumulated communication statistics for one protocol execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMetrics {
    /// Number of messages sent from S1 to S2.
    pub messages_s1_to_s2: u64,
    /// Number of messages sent from S2 to S1.
    pub messages_s2_to_s1: u64,
    /// Total ciphertexts shipped (both directions).
    pub ciphertexts: u64,
    /// Total payload bytes shipped (both directions).
    pub bytes: u64,
    /// Number of protocol round trips (an S1→S2 message followed by the S2→S1 reply).
    pub rounds: u64,
    /// Requests sent by S1 that have not yet been answered.  A reply counts as a round
    /// only when it closes one of these — multi-part replies and unsolicited S2 pushes
    /// no longer inflate the round count.
    pub outstanding_requests: u64,
}

impl ChannelMetrics {
    /// A fresh, zeroed metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `bytes` bytes carrying `ciphertexts` ciphertexts.
    pub fn record(&mut self, direction: Direction, bytes: usize, ciphertexts: usize) {
        match direction {
            Direction::S1ToS2 => {
                self.messages_s1_to_s2 += 1;
                self.outstanding_requests += 1;
            }
            Direction::S2ToS1 => {
                self.messages_s2_to_s1 += 1;
                // A reply closes a round trip only if a request is actually outstanding;
                // additional reply parts ride on the already-counted round.
                if self.outstanding_requests > 0 {
                    self.outstanding_requests -= 1;
                    self.rounds += 1;
                }
            }
        }
        self.bytes += bytes as u64;
        self.ciphertexts += ciphertexts as u64;
    }

    /// Total number of messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.messages_s1_to_s2 + self.messages_s2_to_s1
    }

    /// Bandwidth in mebibytes.
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0)
    }

    /// Estimated network latency in seconds if the two clouds were connected by a link of
    /// `link_mbps` megabits per second (the paper assumes a standard 50 Mbps setting for
    /// Table 3) plus `rtt_ms` milliseconds of per-round-trip delay.
    pub fn latency_seconds(&self, link_mbps: f64, rtt_ms: f64) -> f64 {
        assert!(link_mbps > 0.0, "link speed must be positive");
        let transfer = (self.bytes as f64 * 8.0) / (link_mbps * 1_000_000.0);
        let rtts = self.rounds as f64 * (rtt_ms / 1000.0);
        transfer + rtts
    }

    /// The difference `self − earlier`, used to attribute traffic to one depth or one
    /// sub-protocol ("bandwidth per depth" in Fig. 13a).
    pub fn since(&self, earlier: &ChannelMetrics) -> ChannelMetrics {
        ChannelMetrics {
            messages_s1_to_s2: self.messages_s1_to_s2 - earlier.messages_s1_to_s2,
            messages_s2_to_s1: self.messages_s2_to_s1 - earlier.messages_s2_to_s1,
            ciphertexts: self.ciphertexts - earlier.ciphertexts,
            bytes: self.bytes - earlier.bytes,
            rounds: self.rounds - earlier.rounds,
            outstanding_requests: 0,
        }
    }

    /// Merge another metric set into this one.
    pub fn merge(&mut self, other: &ChannelMetrics) {
        self.messages_s1_to_s2 += other.messages_s1_to_s2;
        self.messages_s2_to_s1 += other.messages_s2_to_s1;
        self.ciphertexts += other.ciphertexts;
        self.bytes += other.bytes;
        self.rounds += other.rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_counts_rounds() {
        let mut m = ChannelMetrics::new();
        m.record(Direction::S1ToS2, 100, 2);
        m.record(Direction::S2ToS1, 50, 1);
        m.record(Direction::S1ToS2, 10, 0);
        assert_eq!(m.messages_s1_to_s2, 2);
        assert_eq!(m.messages_s2_to_s1, 1);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.bytes, 160);
        assert_eq!(m.ciphertexts, 3);
        assert_eq!(m.rounds, 1);
    }

    #[test]
    fn multi_part_replies_and_pushes_do_not_inflate_rounds() {
        let mut m = ChannelMetrics::new();
        // One request answered by a three-part reply: still one round trip.
        m.record(Direction::S1ToS2, 10, 1);
        m.record(Direction::S2ToS1, 5, 0);
        m.record(Direction::S2ToS1, 5, 0);
        m.record(Direction::S2ToS1, 5, 0);
        assert_eq!(m.rounds, 1);
        // An unsolicited S2 push is not a round either.
        m.record(Direction::S2ToS1, 5, 0);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages_s2_to_s1, 4);
        // The next proper exchange counts normally.
        m.record(Direction::S1ToS2, 10, 1);
        m.record(Direction::S2ToS1, 5, 0);
        assert_eq!(m.rounds, 2);
    }

    #[test]
    fn latency_scales_with_link_speed() {
        let mut m = ChannelMetrics::new();
        m.record(Direction::S1ToS2, 1_000_000, 10);
        m.record(Direction::S2ToS1, 1_000_000, 10);
        let fast = m.latency_seconds(100.0, 0.0);
        let slow = m.latency_seconds(50.0, 0.0);
        assert!((slow - 2.0 * fast).abs() < 1e-9);
        // Adding RTT increases latency by rounds * rtt.
        let with_rtt = m.latency_seconds(50.0, 10.0);
        assert!((with_rtt - slow - 0.010).abs() < 1e-9);
    }

    #[test]
    fn since_isolates_a_window() {
        let mut m = ChannelMetrics::new();
        m.record(Direction::S1ToS2, 10, 1);
        let snapshot = m;
        m.record(Direction::S2ToS1, 20, 2);
        let delta = m.since(&snapshot);
        assert_eq!(delta.bytes, 20);
        assert_eq!(delta.ciphertexts, 2);
        assert_eq!(delta.messages_s1_to_s2, 0);
        assert_eq!(delta.rounds, 1);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ChannelMetrics::new();
        a.record(Direction::S1ToS2, 5, 1);
        let mut b = ChannelMetrics::new();
        b.record(Direction::S2ToS1, 7, 2);
        a.merge(&b);
        assert_eq!(a.bytes, 12);
        assert_eq!(a.total_messages(), 2);
    }

    #[test]
    fn megabytes_conversion() {
        let mut m = ChannelMetrics::new();
        m.record(Direction::S1ToS2, 2 * 1024 * 1024, 1);
        assert!((m.megabytes() - 2.0).abs() < 1e-9);
    }
}
