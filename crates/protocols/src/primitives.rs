//! Low-level two-party primitives shared by all sub-protocols — the S1 side.  Every
//! exchange here is a typed [`S1Request`] round trip through the transport; the matching
//! S2 logic lives in [`crate::engine::S2Engine`].
//!
//! * batched EHL equality tests (the `⊖` → decrypt → `E2(t)` exchange at the heart of
//!   SecWorst / SecBest / SecDedup / SecUpdate / SecJoin), with optional row/column
//!   aggregates derived by S2 from the bits it legitimately decrypted,
//! * `RecoverEnc` (Algorithm 5) — stripping the outer Damgård–Jurik layer without letting
//!   S2 see the inner plaintext,
//! * encrypted selection `Enc(t·x)` from `E2(t)` and `Enc(x)`,
//! * `EncCompare` — the encrypted comparison of \[11\], realised here as a
//!   blind-flip-and-scale protocol (see the SECURITY note below),
//! * a batched comparison against a common threshold (used by the halting check),
//! * the blinded-product exchange the SkNN baseline builds its SM protocol from.
//!
//! # SECURITY note on the comparison realisation
//!
//! The paper treats EncCompare as a black box from Bost et al. \[11\].  Our realisation has
//! S1 send `Enc(±α·(a−b))` for a fresh random sign flip and a fresh random positive
//! scale `α`; S2 decrypts and reports only the sign of the blinded value.  S2 therefore
//! observes a sign bit that is uniform thanks to the flip (plus, for exact ties, the fact
//! that the two values are equal), and a magnitude scaled by an unknown α.  S1 learns the
//! comparison outcome, which is what the functionality is supposed to deliver.  This
//! keeps the message pattern, round count and asymptotic cost of \[11\] while remaining a
//! few hundred lines; the residual leakage is recorded in the ledgers and called out in
//! DESIGN.md.

use num_bigint::BigUint;
use num_traits::Zero;
use rand::Rng;

use crate::error::{ProtocolError, Result};
use sectopk_crypto::damgard_jurik::LayeredCiphertext;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_crypto::par::par_map;
use sectopk_ehl::EhlPlus;

use crate::context::TwoClouds;
use crate::ledger::LeakageEvent;
use crate::transport::{EqAggregates, EqWants, S1Request, S2Response};

/// Upper bound (exclusive) for the random comparison scale α.  Keeping α small bounds
/// the blinded magnitude by `α · |a − b| < 2^16 · 2^80 ≪ N/2`, so the signed
/// interpretation never wraps for the score ranges the protocols produce.
const COMPARE_SCALE_BOUND: u64 = 1 << 16;

/// Result of a batched EHL equality exchange: the outer-layer encryptions `E2(t_i)`
/// returned to S1.  The plaintext bits are known only to S2 (its `EP^d` leakage) and
/// never cross back to S1-side protocol code.
#[derive(Debug, Clone)]
pub struct EqBatch {
    /// Outer-layer encryptions `E2(t_i)` returned to S1.
    pub e2_bits: Vec<LayeredCiphertext>,
}

/// One equality-matrix exchange prepared on the S1 side: the randomized `⊖` ciphertexts
/// in row-major order plus the aggregates S2 should derive.
#[derive(Debug, Clone)]
pub(crate) struct EqPlan {
    /// Row-major `⊖` ciphertexts (`diffs.len() % cols == 0`).
    pub diffs: Vec<Ciphertext>,
    /// Number of matrix columns.
    pub cols: usize,
    /// Calling sub-protocol (ledger context).
    pub context: &'static str,
    /// Scan depth, if applicable.
    pub depth: Option<usize>,
    /// Aggregates to request.
    pub want: EqWants,
}

/// The outcome of one [`EqPlan`]: the `E2(t_ij)` bits plus any requested aggregates.
#[derive(Debug, Clone)]
pub(crate) struct EqOutcome {
    /// `E2(t_ij)` in row-major order.
    pub bits: Vec<LayeredCiphertext>,
    /// The requested aggregates.
    pub aggregates: EqAggregates,
}

/// The error raised when S2 answers with the wrong response kind (shared by every
/// request site in the crate).
pub(crate) fn unexpected(response: &S2Response, expected: &str) -> ProtocolError {
    ProtocolError::transport(format!("expected {expected} response, got {response:?}"))
}

impl TwoClouds {
    /// Run any number of independent equality-matrix exchanges.  With batching enabled
    /// they all travel in a single round trip ([`S1Request::Batch`]); without it, every
    /// matrix entry becomes its own [`S1Request::EqTest`] round followed by one
    /// aggregate round — the pre-batching wire pattern.
    pub(crate) fn run_eq_plans(&mut self, plans: Vec<EqPlan>) -> Result<Vec<EqOutcome>> {
        let plans: Vec<EqPlan> = plans.into_iter().filter(|p| !p.diffs.is_empty()).collect();
        if plans.is_empty() {
            return Ok(Vec::new());
        }

        if self.batching() {
            let mut requests: Vec<S1Request> = plans
                .into_iter()
                .map(|p| S1Request::EqMatrix {
                    diffs: p.diffs,
                    cols: p.cols,
                    context: p.context.to_string(),
                    depth: p.depth,
                    want: p.want,
                })
                .collect();
            let responses: Vec<S2Response> = if requests.len() == 1 {
                vec![self.round(requests.pop().expect("one request"))?]
            } else {
                match self.round(S1Request::Batch(requests))? {
                    S2Response::Batch(responses) => responses,
                    other => return Err(unexpected(&other, "Batch")),
                }
            };
            responses
                .into_iter()
                .map(|r| match r {
                    S2Response::EqBits { bits, aggregates } => Ok(EqOutcome { bits, aggregates }),
                    other => Err(unexpected(&other, "EqBits")),
                })
                .collect()
        } else {
            let mut outcomes = Vec::with_capacity(plans.len());
            for plan in plans {
                // S2 only needs to remember the streamed bits when an aggregate request
                // will consume them afterwards.
                let accumulate = !plan.want.is_empty();
                let mut bits = Vec::with_capacity(plan.diffs.len());
                for diff in &plan.diffs {
                    match self.round(S1Request::EqTest {
                        diff: diff.clone(),
                        context: plan.context.to_string(),
                        depth: plan.depth,
                        accumulate,
                        reply_bit: true,
                    })? {
                        S2Response::EqBit(bit) => bits.push(bit),
                        other => return Err(unexpected(&other, "EqBit")),
                    }
                }
                let aggregates = if accumulate {
                    match self.round(S1Request::EqAggregate {
                        rows: bits.len() / plan.cols,
                        cols: plan.cols,
                        want: plan.want,
                    })? {
                        S2Response::EqAggregates(aggregates) => aggregates,
                        other => return Err(unexpected(&other, "EqAggregates")),
                    }
                } else {
                    EqAggregates::default()
                };
                outcomes.push(EqOutcome { bits, aggregates });
            }
            Ok(outcomes)
        }
    }

    /// Ship an element-wise exchange through the transport: one request carrying all
    /// `items` when batching is enabled, or one request per item (the pre-batching wire
    /// pattern) when it is not.  `build` constructs the request for a chunk and
    /// `extract` pulls the per-element payload out of the matching response; the reply
    /// arity is checked against the input in both modes.
    fn round_elementwise<T, U>(
        &mut self,
        items: Vec<T>,
        build: impl Fn(Vec<T>) -> S1Request,
        extract: impl Fn(S2Response) -> Result<Vec<U>>,
    ) -> Result<Vec<U>> {
        let expected = items.len();
        if expected == 0 {
            return Ok(Vec::new());
        }
        let out = if self.batching() {
            extract(self.round(build(items))?)?
        } else {
            let mut out = Vec::with_capacity(expected);
            for item in items {
                out.extend(extract(self.round(build(vec![item]))?)?);
            }
            out
        };
        if out.len() != expected {
            return Err(ProtocolError::transport(format!(
                "element-wise exchange arity mismatch: sent {expected}, received {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Compute the randomized `⊖` differences of `pairs` with S1's randomness.
    ///
    /// The masking scalars are drawn serially in pair-major, block-minor order (exactly
    /// the order the one-pair-at-a-time path consumes S1's RNG in), then the pure `⊖`
    /// arithmetic runs data-parallel over [`TwoClouds::intra_workers`] threads — the
    /// ciphertexts are byte-identical for every worker count.
    pub(crate) fn eq_diffs(&mut self, pairs: &[(&EhlPlus, &EhlPlus)]) -> Vec<Ciphertext> {
        let pk = self.s1.keys.paillier_public.clone();
        let randomness: Vec<Vec<BigUint>> = pairs
            .iter()
            .map(|(a, _)| {
                (0..a.len())
                    .map(|_| sectopk_crypto::bigint::random_invertible(&mut self.s1.rng, pk.n()))
                    .collect()
            })
            .collect();
        let jobs: Vec<((&EhlPlus, &EhlPlus), Vec<BigUint>)> =
            pairs.iter().copied().zip(randomness).collect();
        par_map(self.s1.intra_workers, &jobs, |((a, b), rs)| a.eq_test_with_randomness(b, &pk, rs))
    }

    /// Batched EHL equality test: for every pair `(a_i, b_i)` S1 computes the randomized
    /// `a_i ⊖ b_i`, ships the batch to S2, S2 decrypts each (learning the equality bit,
    /// its designed leakage) and replies with `E2(t_i)` where `t_i = 1` iff the pair
    /// hides the same object.
    ///
    /// `context` labels the calling sub-protocol and `depth` the scan depth for the
    /// equality-pattern bookkeeping.
    pub fn eq_batch(
        &mut self,
        pairs: &[(&EhlPlus, &EhlPlus)],
        context: &'static str,
        depth: Option<usize>,
    ) -> Result<EqBatch> {
        if pairs.is_empty() {
            return Ok(EqBatch { e2_bits: Vec::new() });
        }
        let diffs = self.eq_diffs(pairs);
        let cols = diffs.len();
        let outcome = self
            .run_eq_plans(vec![EqPlan { diffs, cols, context, depth, want: EqWants::none() }])?
            .pop()
            .expect("one plan in, one outcome out");
        Ok(EqBatch { e2_bits: outcome.bits })
    }

    /// `RecoverEnc` (Algorithm 5), batched: strip the outer Damgård–Jurik layer from each
    /// `E2(Enc(c_i))`, returning the inner Paillier ciphertexts to S1 while hiding the
    /// inner plaintexts from S2 behind additive blinding.
    pub fn recover_enc_batch(&mut self, layered: &[LayeredCiphertext]) -> Result<Vec<Ciphertext>> {
        if layered.is_empty() {
            return Ok(Vec::new());
        }
        let pk = self.s1.keys.paillier_public.clone();
        let dj_pk = self.s1.keys.dj_public.clone();

        // ---- S1: blind each inner plaintext with a fresh random r. --------------------
        // Draws (S1's RNG, then the nonce pool) happen serially up front; the big
        // `E2(·)^{Enc(r)}` exponentiations then run data-parallel.  Both RNG streams are
        // consumed in the same per-purpose order as the one-item-at-a-time loop, so the
        // wire bytes do not depend on the worker count.
        let mut masks = Vec::with_capacity(layered.len());
        let mut enc_masks = Vec::with_capacity(layered.len());
        for _ in layered {
            let r = sectopk_crypto::bigint::random_below(&mut self.s1.rng, pk.n());
            enc_masks.push(self.s1.pool.encrypt(&r)?);
            masks.push(r);
        }
        let jobs: Vec<(&LayeredCiphertext, Ciphertext)> = layered.iter().zip(enc_masks).collect();
        // E2(Enc(c))^{Enc(r)} = E2(Enc(c) · Enc(r)) = E2(Enc(c + r))
        let blinded: Vec<LayeredCiphertext> =
            par_map(self.s1.intra_workers, &jobs, |(l, enc_r)| dj_pk.mul_by_ciphertext(l, enc_r));

        // ---- transport: S2 strips the outer layer from the (blinded) ciphertexts. ----
        let inner: Vec<Ciphertext> = self.round_elementwise(
            blinded,
            |blinded| S1Request::Recover { blinded },
            |response| match response {
                S2Response::Recovered(inner) => Ok(inner),
                other => Err(unexpected(&other, "Recovered")),
            },
        )?;

        // ---- S1: remove the blinding homomorphically (pure, data-parallel). -----------
        let jobs: Vec<(Ciphertext, BigUint)> = inner.into_iter().zip(masks).collect();
        let recovered = par_map(self.s1.intra_workers, &jobs, |(c, r)| {
            let neg_r = (pk.n() - (r % pk.n())) % pk.n();
            pk.add_plain(c, &neg_r)
        });
        Ok(recovered)
    }

    /// Encrypted selection: from `E2(t_i)` (bit known to S2, encrypted towards S1) and
    /// `Enc(x_i)`, produce `Enc(t_i · x_i)` — the operation on line 6 of Algorithm 4:
    /// `E2(t)^{Enc(x)} · (E2(1) · E2(t)^{-1})^{Enc(0)}` followed by `RecoverEnc`.
    pub fn select_scores(
        &mut self,
        e2_bits: &[LayeredCiphertext],
        scores: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>> {
        assert_eq!(e2_bits.len(), scores.len(), "one bit per score required");
        if e2_bits.is_empty() {
            return Ok(Vec::new());
        }
        let dj_pk = self.s1.keys.dj_public.clone();

        // Pool draws first (serial, position-deterministic), then the two-base
        // exponentiations `E2(t)^{Enc(x)} · E2(1−t)^{Enc(0)}` run data-parallel as one
        // fused Strauss–Shamir double-exponentiation each.
        let mut jobs = Vec::with_capacity(scores.len());
        for (bit, score) in e2_bits.iter().zip(scores.iter()) {
            let e2_one = self.s1.pool.encrypt_dj_u64(1)?;
            let enc_zero = self.s1.pool.encrypt_u64(0)?;
            jobs.push((bit, score, e2_one, enc_zero));
        }
        let layered = par_map(self.s1.intra_workers, &jobs, |(bit, score, e2_one, enc_zero)| {
            let one_minus_t = dj_pk.sub(e2_one, bit);
            dj_pk.mul_add_ciphertexts(bit, score, &one_minus_t, enc_zero)
        });
        self.recover_enc_batch(&layered)
    }

    /// Two-branch encrypted selection `Enc(t · x + (1 − t) · y)` (used by SecUpdate to
    /// overwrite a tracked item's best score only when the fresh item matches it).
    pub fn select_between(
        &mut self,
        e2_bits: &[LayeredCiphertext],
        if_true: &[Ciphertext],
        if_false: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>> {
        assert_eq!(e2_bits.len(), if_true.len());
        assert_eq!(e2_bits.len(), if_false.len());
        if e2_bits.is_empty() {
            return Ok(Vec::new());
        }
        let dj_pk = self.s1.keys.dj_public.clone();
        let mut jobs = Vec::with_capacity(e2_bits.len());
        for ((bit, x), y) in e2_bits.iter().zip(if_true.iter()).zip(if_false.iter()) {
            let e2_one = self.s1.pool.encrypt_dj_u64(1)?;
            jobs.push((bit, x, y, e2_one));
        }
        let layered = par_map(self.s1.intra_workers, &jobs, |(bit, x, y, e2_one)| {
            let one_minus_t = dj_pk.sub(e2_one, bit);
            dj_pk.mul_add_ciphertexts(bit, x, &one_minus_t, y)
        });
        self.recover_enc_batch(&layered)
    }

    /// `EncCompare(Enc(a), Enc(b))`: S1 learns the bit `f := (a ≤ b)` in the symmetric
    /// (signed) plaintext interpretation; S2 learns only a uniformly flipped, scaled sign.
    pub fn enc_compare(&mut self, a: &Ciphertext, b: &Ciphertext, context: &str) -> Result<bool> {
        let outcomes = self.compare_many(&[(a.clone(), b.clone())], context)?;
        Ok(outcomes[0])
    }

    /// Batched comparison `f_i := (a_i ≤ b_i)` in one round trip (one round trip *per
    /// pair* when batching is disabled).
    pub fn compare_many(
        &mut self,
        pairs: &[(Ciphertext, Ciphertext)],
        context: &str,
    ) -> Result<Vec<bool>> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let pk = self.s1.keys.paillier_public.clone();

        // ---- S1: blind each difference with a random flip and scale. ------------------
        // Flips and scales are drawn serially (same RNG order as the per-pair loop);
        // the `Enc(±α·(a−b))` arithmetic runs data-parallel.
        let mut flips = Vec::with_capacity(pairs.len());
        let mut alphas = Vec::with_capacity(pairs.len());
        for _ in pairs {
            flips.push(self.s1.rng.gen::<bool>());
            alphas.push(BigUint::from(self.s1.rng.gen_range(1..COMPARE_SCALE_BOUND)));
        }
        let jobs: Vec<(&(Ciphertext, Ciphertext), bool, &BigUint)> = pairs
            .iter()
            .zip(flips.iter())
            .zip(alphas.iter())
            .map(|((pair, &flip), alpha)| (pair, flip, alpha))
            .collect();
        let blinded = par_map(self.s1.intra_workers, &jobs, |((a, b), flip, alpha)| {
            let diff = if *flip { pk.sub(b, a) } else { pk.sub(a, b) };
            pk.mul_plain(&diff, alpha)
        });

        // ---- transport: S2 decrypts each blinded difference and returns its sign. -----
        let signs: Vec<i8> = self.round_elementwise(
            blinded,
            |blinded| S1Request::Compare { blinded, context: context.to_string() },
            |response| match response {
                S2Response::Signs(signs) => Ok(signs),
                other => Err(unexpected(&other, "Signs")),
            },
        )?;

        // ---- S1: undo the flip. --------------------------------------------------------
        let outcomes = signs
            .into_iter()
            .zip(flips.iter())
            .map(|(sign, &flip)| {
                // Without flip we sent α(a−b): a ≤ b ⇔ sign ≤ 0.
                // With flip we sent α(b−a):   a ≤ b ⇔ sign ≥ 0.
                let le = if flip { sign >= 0 } else { sign <= 0 };
                self.s1.ledger.record(LeakageEvent::ComparisonBit {
                    context: context.to_string(),
                    less_or_equal: le,
                });
                le
            })
            .collect();
        Ok(outcomes)
    }

    /// Batched threshold comparison: `f_i := (values_i ≤ threshold)` for every value, in
    /// one round trip.  Used by the halting check of SecQuery (is every candidate's best
    /// score at most the k-th worst score?).
    pub fn batch_compare_leq(
        &mut self,
        values: &[Ciphertext],
        threshold: &Ciphertext,
        context: &str,
    ) -> Result<Vec<bool>> {
        let pairs: Vec<(Ciphertext, Ciphertext)> =
            values.iter().map(|v| (v.clone(), threshold.clone())).collect();
        self.compare_many(&pairs, context)
    }

    /// Ship additively blinded operand pairs to S2, which decrypts, multiplies and
    /// re-encrypts each product — the round trip at the heart of the SkNN baseline's SM
    /// protocol.  The caller is responsible for the blinding and for stripping the cross
    /// terms afterwards.
    pub fn mul_blinded(&mut self, pairs: Vec<(Ciphertext, Ciphertext)>) -> Result<Vec<Ciphertext>> {
        self.round_elementwise(
            pairs,
            |pairs| S1Request::MulBlinded { pairs },
            |response| match response {
                S2Response::Products(products) => Ok(products),
                other => Err(unexpected(&other, "Products")),
            },
        )
    }

    /// Homomorphically sum a set of encrypted scores (no interaction; exposed here
    /// because every sub-protocol needs it).
    pub fn sum_ciphertexts(&self, scores: &[Ciphertext]) -> Ciphertext {
        let pk = &self.s1.keys.paillier_public;
        let mut acc = pk.one_ciphertext();
        for s in scores {
            acc = pk.add(&acc, s);
        }
        acc
    }

    /// Encrypt a fresh zero under the shared public key (pooled nonce).
    pub fn fresh_zero(&mut self) -> Result<Ciphertext> {
        Ok(self.s1.pool.encrypt(&BigUint::zero())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(33);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 99).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    #[test]
    fn eq_batch_detects_equality_and_inequality() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let a1 = encoder.encode(b"a", pk, &mut rng).unwrap();
        let a2 = encoder.encode(b"a", pk, &mut rng).unwrap();
        let b = encoder.encode(b"b", pk, &mut rng).unwrap();

        let batch = clouds.eq_batch(&[(&a1, &a2), (&a1, &b)], "test", Some(0)).unwrap();
        // The E2 bits decrypt to 1 / 0 (only the key holder can check this; S1 cannot).
        let dj_sk = &master.s2_view().dj_secret;
        assert_eq!(dj_sk.decrypt(&batch.e2_bits[0]).unwrap(), BigUint::from(1u32));
        assert_eq!(dj_sk.decrypt(&batch.e2_bits[1]).unwrap(), BigUint::from(0u32));
        // Channel and ledger were updated.
        assert!(clouds.channel().bytes > 0);
        assert_eq!(clouds.s2_ledger().count_kind("equality_bit"), 2);
        assert_eq!(clouds.channel().rounds, 1);
    }

    #[test]
    fn unbatched_eq_exchange_costs_one_round_per_pair() {
        let mut rng = StdRng::seed_from_u64(34);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let mut clouds = TwoClouds::with_transport(
            &master,
            99,
            crate::transport::TransportKind::InProcess,
            false,
        )
        .unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        let pk = &master.paillier_public;
        let a = encoder.encode(b"a", pk, &mut rng).unwrap();
        let b = encoder.encode(b"b", pk, &mut rng).unwrap();
        let c = encoder.encode(b"c", pk, &mut rng).unwrap();
        let _ = clouds.eq_batch(&[(&a, &b), (&a, &c), (&b, &c)], "test", None).unwrap();
        // One EqTest round per pair, versus 1 round batched (no aggregates were
        // requested, so no drain round is needed either).
        assert_eq!(clouds.channel().rounds, 3);
        assert_eq!(clouds.s2_ledger().count_kind("equality_bit"), 3);
    }

    #[test]
    fn recover_enc_strips_one_layer() {
        let (master, mut clouds, _encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let dj_pk = clouds.dj_pk().clone();
        let inner = pk.encrypt_u64(4321, &mut rng).unwrap();
        let layered = dj_pk.encrypt_ciphertext(&inner, &mut rng).unwrap();
        let recovered = clouds.recover_enc_batch(&[layered]).unwrap();
        assert_eq!(master.paillier_secret.decrypt_u64(&recovered[0]).unwrap(), 4321);
    }

    #[test]
    fn select_scores_keeps_or_zeroes() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let same_a = encoder.encode(b"x", pk, &mut rng).unwrap();
        let same_b = encoder.encode(b"x", pk, &mut rng).unwrap();
        let other = encoder.encode(b"y", pk, &mut rng).unwrap();
        let batch =
            clouds.eq_batch(&[(&same_a, &same_b), (&same_a, &other)], "test", None).unwrap();
        let scores =
            vec![pk.encrypt_u64(111, &mut rng).unwrap(), pk.encrypt_u64(222, &mut rng).unwrap()];
        let selected = clouds.select_scores(&batch.e2_bits, &scores).unwrap();
        assert_eq!(master.paillier_secret.decrypt_u64(&selected[0]).unwrap(), 111);
        assert_eq!(master.paillier_secret.decrypt_u64(&selected[1]).unwrap(), 0);
    }

    #[test]
    fn select_between_chooses_correct_branch() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let a = encoder.encode(b"p", pk, &mut rng).unwrap();
        let a2 = encoder.encode(b"p", pk, &mut rng).unwrap();
        let b = encoder.encode(b"q", pk, &mut rng).unwrap();
        let batch = clouds.eq_batch(&[(&a, &a2), (&a, &b)], "test", None).unwrap();
        let if_true =
            vec![pk.encrypt_u64(10, &mut rng).unwrap(), pk.encrypt_u64(10, &mut rng).unwrap()];
        let if_false =
            vec![pk.encrypt_u64(77, &mut rng).unwrap(), pk.encrypt_u64(77, &mut rng).unwrap()];
        let chosen = clouds.select_between(&batch.e2_bits, &if_true, &if_false).unwrap();
        assert_eq!(master.paillier_secret.decrypt_u64(&chosen[0]).unwrap(), 10);
        assert_eq!(master.paillier_secret.decrypt_u64(&chosen[1]).unwrap(), 77);
    }

    #[test]
    fn enc_compare_orders_correctly() {
        let (master, mut clouds, _encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let cases: Vec<(i64, i64)> = vec![(3, 7), (7, 3), (5, 5), (-1, 4), (4, -1), (-5, -2)];
        for (a, b) in cases {
            let ca = pk.encrypt_i64(a, &mut rng).unwrap();
            let cb = pk.encrypt_i64(b, &mut rng).unwrap();
            let f = clouds.enc_compare(&ca, &cb, "test").unwrap();
            assert_eq!(f, a <= b, "compare({a}, {b})");
        }
        // S2 never saw anything but blinded signs; S1 saw comparison outcomes.
        assert!(clouds.s2_ledger().only_contains(&["blinded_sign"]));
        assert!(clouds.s1_ledger().only_contains(&["comparison_bit"]));
    }

    #[test]
    fn batch_compare_matches_individual_compares() {
        let (master, mut clouds, _encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let threshold = pk.encrypt_u64(50, &mut rng).unwrap();
        let values: Vec<Ciphertext> =
            [10u64, 50, 90, 0, 51].iter().map(|&v| pk.encrypt_u64(v, &mut rng).unwrap()).collect();
        let flags = clouds.batch_compare_leq(&values, &threshold, "test").unwrap();
        assert_eq!(flags, vec![true, true, false, true, false]);
        // One round trip for the whole batch.
        assert_eq!(clouds.channel().rounds, 1);
    }

    #[test]
    fn sum_ciphertexts_is_homomorphic_sum() {
        let (master, clouds, _encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let cs: Vec<Ciphertext> =
            [1u64, 2, 3, 4].iter().map(|&v| pk.encrypt_u64(v, &mut rng).unwrap()).collect();
        let sum = clouds.sum_ciphertexts(&cs);
        assert_eq!(master.paillier_secret.decrypt_u64(&sum).unwrap(), 10);
    }

    #[test]
    fn empty_batches_are_noops() {
        let (_master, mut clouds, _encoder, _rng) = setup();
        assert!(clouds.eq_batch(&[], "t", None).unwrap().e2_bits.is_empty());
        assert!(clouds.recover_enc_batch(&[]).unwrap().is_empty());
        assert!(clouds.compare_many(&[], "t").unwrap().is_empty());
        assert!(clouds.mul_blinded(Vec::new()).unwrap().is_empty());
        assert_eq!(clouds.channel().total_messages(), 0);
    }
}
