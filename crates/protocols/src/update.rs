//! `SecUpdate` (Algorithm 9): merging the current depth's items `Γ^d` into the global
//! list `T^{d-1}` to obtain `T^d`.
//!
//! Semantics (the NRA bookkeeping the protocol must realise obliviously):
//!
//! * if a fresh item's object is already tracked, the tracked entry's worst score grows
//!   by the fresh local worst and its best score is replaced by the fresh (tighter) best;
//!   the appended copy must be neutralised so the object is not counted twice;
//! * if the object is new, the fresh item is appended as-is.
//!
//! Only S2 can tell which case applies (it decrypts the `⊖` equality tests — the designed
//! equality-pattern leakage); all of S1's updates are homomorphic selections driven by
//! the `E2(t)` bits S2 returns.  The per-row / per-column "matched" selectors Algorithm 9
//! needs are requested as aggregates of the same
//! [`crate::transport::S1Request::EqMatrix`] exchange, so the whole fresh × tracked
//! matrix costs a single round trip.
//!
//! Two variants mirror the paper's query modes:
//! * **keep-length** (`Qry_F`): every fresh item is appended; duplicates are appended as
//!   neutralised garbage (worst = best = −1, random id), so S1 learns nothing about how
//!   many objects were new;
//! * **eliminate** (`Qry_E`, §10.1): duplicates are simply not appended — S2 disclosing
//!   the per-row matched bits in plaintext is exactly the uniqueness-pattern leakage
//!   `UP^d` this variant grants S1.

use num_bigint::BigUint;

use crate::error::Result;
use sectopk_crypto::bigint::random_below;
use sectopk_crypto::damgard_jurik::LayeredCiphertext;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_ehl::EhlPlus;

use crate::context::TwoClouds;
use crate::items::ScoredItem;
use crate::ledger::LeakageEvent;
use crate::primitives::EqPlan;
use crate::transport::EqWants;

/// Which update variant to run (mirrors `SecDedup` vs `SecDupElim`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateMode {
    /// Append neutralised duplicates so the length of `T` is data-independent (`Qry_F`).
    KeepLength,
    /// Drop duplicates, revealing the uniqueness pattern to S1 (`Qry_E`).
    Eliminate,
}

impl TwoClouds {
    /// Merge the per-depth items `fresh` (already de-duplicated within the depth) into
    /// the tracked list `tracked`, returning the new `T^d`.
    pub fn sec_update(
        &mut self,
        tracked: Vec<ScoredItem>,
        fresh: &[ScoredItem],
        depth: usize,
        mode: UpdateMode,
    ) -> Result<Vec<ScoredItem>> {
        let pk = self.s1.keys.paillier_public.clone();
        if fresh.is_empty() {
            return Ok(tracked);
        }
        if tracked.is_empty() {
            // Nothing to merge into: every fresh item starts a new entry.
            return Ok(fresh.to_vec());
        }

        let t_len = tracked.len();
        let f_len = fresh.len();

        // ---- S1 → S2: the fresh × tracked equality matrix, plus the aggregate
        //      selectors the update needs, in one exchange. -----------------------------
        let mut pairs: Vec<(&EhlPlus, &EhlPlus)> = Vec::with_capacity(t_len * f_len);
        for fresh_item in fresh {
            for tracked_item in &tracked {
                pairs.push((&fresh_item.ehl, &tracked_item.ehl));
            }
        }
        let diffs = self.eq_diffs(&pairs);
        let want = match mode {
            UpdateMode::KeepLength => EqWants {
                row_matched: true,
                row_unmatched: true,
                col_unmatched: true,
                row_matched_plain: false,
            },
            UpdateMode::Eliminate => EqWants {
                row_matched: false,
                row_unmatched: false,
                col_unmatched: true,
                row_matched_plain: true,
            },
        };
        let outcome = self
            .run_eq_plans(vec![EqPlan {
                diffs,
                cols: t_len,
                context: "sec_update",
                depth: Some(depth),
                want,
            }])?
            .pop()
            .expect("one plan in, one outcome out");
        let bit_at = |i: usize, j: usize| -> &LayeredCiphertext { &outcome.bits[i * t_len + j] };

        // ---- S1: add the matched fresh worst score into each tracked entry. -------------
        // For tracked entry j: worst_j += Σ_i t_ij · fresh_i.worst.
        let mut select_bits = Vec::with_capacity(t_len * f_len);
        let mut select_scores = Vec::with_capacity(t_len * f_len);
        for (i, fresh_item) in fresh.iter().enumerate() {
            for j in 0..t_len {
                select_bits.push(bit_at(i, j).clone());
                select_scores.push(fresh_item.worst.clone());
            }
        }
        let selected_worst = self.select_scores(&select_bits, &select_scores)?;

        // For the best score: best_j := (Σ_i t_ij · fresh_i.best) + (1 − matched_j) · best_j,
        // where `1 − matched_j` is the column-unmatched aggregate S2 derived.
        let mut select_best_scores = Vec::with_capacity(t_len * f_len);
        for fresh_item in fresh {
            for _j in 0..t_len {
                select_best_scores.push(fresh_item.best.clone());
            }
        }
        let selected_best = self.select_scores(&select_bits, &select_best_scores)?;

        let e2_tracked_unmatched = &outcome.aggregates.col_unmatched;
        let old_best: Vec<Ciphertext> = tracked.iter().map(|t| t.best.clone()).collect();
        let kept_old_best = self.select_scores(e2_tracked_unmatched, &old_best)?;

        let mut new_tracked = Vec::with_capacity(t_len + f_len);
        for (j, tracked_item) in tracked.iter().enumerate() {
            let mut worst = tracked_item.worst.clone();
            let mut best = kept_old_best[j].clone();
            for i in 0..f_len {
                worst = pk.add(&worst, &selected_worst[i * t_len + j]);
                best = pk.add(&best, &selected_best[i * t_len + j]);
            }
            new_tracked.push(ScoredItem {
                ehl: tracked_item.ehl.rerandomize_pooled(&mut self.s1.pool),
                worst: self.s1.pool.rerandomize(&worst),
                best: self.s1.pool.rerandomize(&best),
            });
        }

        // ---- Appending the fresh items. --------------------------------------------------
        match mode {
            UpdateMode::Eliminate => {
                // S2 disclosed which (already permuted within the depth, re-randomized)
                // fresh items duplicate a tracked entry — the `UP^d` leakage of §10.1.
                let fresh_matched = &outcome.aggregates.row_matched_plain;
                let new_count = fresh_matched.iter().filter(|&&m| !m).count();
                self.s1.ledger.record(LeakageEvent::UniqueCount { depth, count: new_count });
                for (i, fresh_item) in fresh.iter().enumerate() {
                    if !fresh_matched[i] {
                        new_tracked.push(fresh_item.clone());
                    }
                }
            }
            UpdateMode::KeepLength => {
                // Append every fresh item, but duplicates are neutralised obliviously:
                //   worst/best := not_matched ? value : Z  (= −1)
                //   EHL block  += matched · ρ              (random ρ ⇒ garbage id)
                let e2_unmatched = &outcome.aggregates.row_unmatched;
                let e2_matched = &outcome.aggregates.row_matched;

                let sentinel = self.s1.pool.encrypt(&pk.sentinel_z())?;
                let worst_if_new: Vec<Ciphertext> = fresh.iter().map(|f| f.worst.clone()).collect();
                let best_if_new: Vec<Ciphertext> = fresh.iter().map(|f| f.best.clone()).collect();
                let sentinels: Vec<Ciphertext> = (0..f_len).map(|_| sentinel.clone()).collect();

                let appended_worst =
                    self.select_between(e2_unmatched, &worst_if_new, &sentinels)?;
                let appended_best = self.select_between(e2_unmatched, &best_if_new, &sentinels)?;

                // Garbage-ify the EHL of matched items: every block gets + (matched · ρ).
                let ehl_blocks = fresh[0].ehl.len();
                let mut noise_bits = Vec::with_capacity(f_len * ehl_blocks);
                let mut noise_values = Vec::with_capacity(f_len * ehl_blocks);
                for e2_m in e2_matched {
                    for _ in 0..ehl_blocks {
                        noise_bits.push(e2_m.clone());
                        let rho = random_below(&mut self.s1.rng, pk.n());
                        noise_values.push(self.s1.pool.encrypt(&rho)?);
                    }
                }
                let noise = self.select_scores(&noise_bits, &noise_values)?;

                for (i, fresh_item) in fresh.iter().enumerate() {
                    let blocks: Vec<Ciphertext> = fresh_item
                        .ehl
                        .blocks()
                        .iter()
                        .enumerate()
                        .map(|(b, block)| pk.add(block, &noise[i * ehl_blocks + b]))
                        .collect();
                    new_tracked.push(ScoredItem {
                        ehl: EhlPlus::from_blocks(blocks).rerandomize_pooled(&mut self.s1.pool),
                        worst: self.s1.pool.rerandomize(&appended_worst[i]),
                        best: self.s1.pool.rerandomize(&appended_best[i]),
                    });
                }
            }
        }

        Ok(new_tracked)
    }

    /// Homomorphically apply a plaintext weight to a score ciphertext (`Enc(w · x)`), the
    /// preprocessing step §7 prescribes for non-binary scoring weights.
    pub fn apply_weight(&self, score: &Ciphertext, weight: u64) -> Ciphertext {
        let pk = &self.s1.keys.paillier_public;
        pk.mul_plain(score, &BigUint::from(weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;
    use std::collections::BTreeMap;

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(505);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 55).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    fn item(
        object: &str,
        worst: i64,
        best: i64,
        encoder: &EhlEncoder,
        pk: &sectopk_crypto::PaillierPublicKey,
        rng: &mut StdRng,
    ) -> ScoredItem {
        ScoredItem {
            ehl: encoder.encode(object.as_bytes(), pk, rng).unwrap(),
            worst: pk.encrypt_i64(worst, rng).unwrap(),
            best: pk.encrypt_i64(best, rng).unwrap(),
        }
    }

    /// Decrypt the tracked list into `{object -> (worst, best)}` for the objects named in
    /// `candidates`; neutralised entries match no candidate and are reported under "?".
    fn snapshot(
        items: &[ScoredItem],
        candidates: &[&str],
        master: &MasterKeys,
        encoder: &EhlEncoder,
        rng: &mut StdRng,
    ) -> BTreeMap<String, (i64, i64)> {
        let pk = &master.paillier_public;
        let sk = &master.paillier_secret;
        let mut out = BTreeMap::new();
        for it in items {
            let w = i64::try_from(sk.decrypt_signed(&it.worst).unwrap()).unwrap();
            let b = i64::try_from(sk.decrypt_signed(&it.best).unwrap()).unwrap();
            let mut name = "?".to_string();
            for cand in candidates {
                let fresh = encoder.encode(cand.as_bytes(), pk, rng).unwrap();
                if sk.is_zero(&it.ehl.eq_test(&fresh, pk, rng)).unwrap() {
                    name = (*cand).to_string();
                    break;
                }
            }
            out.insert(format!("{name}:{w}:{b}"), (w, b));
        }
        out
    }

    #[test]
    fn new_objects_are_appended_unchanged() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let tracked = vec![item("A", 10, 26, &encoder, pk, &mut rng)];
        let fresh = vec![item("B", 8, 22, &encoder, pk, &mut rng)];
        let out = clouds.sec_update(tracked, &fresh, 1, UpdateMode::KeepLength).unwrap();
        assert_eq!(out.len(), 2);
        let snap = snapshot(&out, &["A", "B"], &master, &encoder, &mut rng);
        assert!(snap.contains_key("A:10:26"));
        assert!(snap.contains_key("B:8:22"));
    }

    #[test]
    fn matched_objects_accumulate_worst_and_refresh_best() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        // A is tracked with W=10, B=26; it reappears with local worst 3 and fresh best 23.
        let tracked = vec![
            item("A", 10, 26, &encoder, pk, &mut rng),
            item("C", 8, 26, &encoder, pk, &mut rng),
        ];
        let fresh = vec![item("A", 3, 23, &encoder, pk, &mut rng)];
        let out = clouds.sec_update(tracked, &fresh, 2, UpdateMode::KeepLength).unwrap();
        assert_eq!(out.len(), 3, "keep-length appends the (neutralised) duplicate");
        let snap = snapshot(&out, &["A", "C"], &master, &encoder, &mut rng);
        // A: worst 10+3 = 13, best replaced by 23.  C untouched.
        assert!(snap.contains_key("A:13:23"), "snapshot: {snap:?}");
        assert!(snap.contains_key("C:8:26"), "snapshot: {snap:?}");
        // The neutralised appended copy has sentinel scores and a garbage id.
        assert!(snap.contains_key("?:-1:-1"), "snapshot: {snap:?}");
    }

    #[test]
    fn eliminate_mode_drops_duplicates_and_counts_new_objects() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let tracked = vec![item("A", 5, 20, &encoder, pk, &mut rng)];
        let fresh = vec![
            item("A", 2, 18, &encoder, pk, &mut rng),
            item("B", 7, 19, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_update(tracked, &fresh, 3, UpdateMode::Eliminate).unwrap();
        assert_eq!(out.len(), 2);
        let snap = snapshot(&out, &["A", "B"], &master, &encoder, &mut rng);
        assert!(snap.contains_key("A:7:18"), "snapshot: {snap:?}");
        assert!(snap.contains_key("B:7:19"), "snapshot: {snap:?}");
        assert_eq!(clouds.s1_ledger().count_kind("unique_count"), 1);
    }

    #[test]
    fn empty_edges() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let tracked = vec![item("A", 1, 2, &encoder, pk, &mut rng)];
        // Empty fresh: unchanged.
        let out = clouds.sec_update(tracked.clone(), &[], 0, UpdateMode::KeepLength).unwrap();
        assert_eq!(out.len(), 1);
        // Empty tracked: fresh becomes the new list.
        let fresh = vec![item("B", 3, 4, &encoder, pk, &mut rng)];
        let out = clouds.sec_update(Vec::new(), &fresh, 0, UpdateMode::Eliminate).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn weights_scale_scores() {
        let (master, clouds, _encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let c = pk.encrypt_u64(6, &mut rng).unwrap();
        let scaled = clouds.apply_weight(&c, 7);
        assert_eq!(master.paillier_secret.decrypt_u64(&scaled).unwrap(), 42);
    }

    #[test]
    fn s2_leakage_is_equality_pattern_only() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let tracked =
            vec![item("A", 1, 9, &encoder, pk, &mut rng), item("B", 2, 9, &encoder, pk, &mut rng)];
        let fresh = vec![item("B", 4, 8, &encoder, pk, &mut rng)];
        let _ = clouds.sec_update(tracked, &fresh, 1, UpdateMode::KeepLength).unwrap();
        assert!(clouds.s2_ledger().only_contains(&["equality_bit"]));
        assert!(clouds.s1_ledger().is_empty());
    }
}
