//! Real-socket transport: the crypto cloud S2 as a networked process.
//!
//! The other three transports keep both clouds in one process; this module makes the
//! §3.2 deployment literal.  A [`TcpCloudServer`] (the `sectopk-s2d` binary) listens on
//! a socket and feeds accepted connections into a [`crate::multiplex::MultiplexServer`]
//! worker pool; a [`TcpTransport`] is the S1 side of one connection, speaking the *same*
//! session-tagged [`Envelope`]s as the multiplexed transport, length-prefix-framed onto
//! the stream:
//!
//! ```text
//!    S1 process                                        S2 process (sectopk-s2d)
//!   ┌──────────────┐   frame = u32 LE length ‖ bytes  ┌────────────────────────────┐
//!   │ TcpTransport │ ───────────────────────────────▶ │ accept loop ─ bridge thread │
//!   │  (one conn = │   bytes = Envelope{session,seq,  │      │ per connection       │
//!   │  one session)│            tag ‖ wire payload}   │      ▼                      │
//!   │              │ ◀─────────────────────────────── │ MultiplexServer worker pool │
//!   └──────────────┘                                  └────────────────────────────┘
//! ```
//!
//! # Connection lifecycle
//!
//! 1. **Connect** with bounded retry and capped, deterministically jittered exponential
//!    backoff ([`TcpOptions`]).
//! 2. **Handshake**: the client sends a `ClientHello` — magic, protocol version
//!    ([`TCP_PROTOCOL_VERSION`]), and either a *fresh* session (a proposed id, 0 = server
//!    assigns, plus the [`EngineProvision`] that boots its S2 engine) or a *resume* of a
//!    parked one (session id, last acknowledged sequence number, resume token).  The
//!    server answers accept (negotiated id + a fresh resume token) or a typed reject.
//! 3. **Serve**: strict request/reply — the bridge thread forwards each envelope to the
//!    worker pool and ships the session's reply back.  At most one frame per connection
//!    is in flight, and the pool's bounded per-session reply queues give
//!    per-connection backpressure.  A session over its inbox bound is answered with a
//!    typed `overloaded` error frame instead of queueing without bound.
//! 4. **Teardown**: the client's `Drop` ships a `DISCONNECT` frame and blocks for the
//!    ack, exactly like the multiplexed transport.
//!
//! # Fault tolerance: the session lifecycle on the server
//!
//! A connection that dies *without* the DISCONNECT handshake (socket error, EOF,
//! cross-session injection) does not destroy its session.  When
//! [`TcpServerConfig::park_ttl`] is non-zero the bridge *parks* it — engine, leakage
//! ledger, nonce streams and last-reply cache stay registered in the pool — and a
//! reconnecting client presents its resume token to take the session over exactly where
//! it left off:
//!
//! ```text
//!              handshake Fresh                dirty socket exit
//!    (free) ──────────────────▶ ACTIVE ─────────────────────────▶ PARKED
//!               ▲                 │  ▲                              │ │
//!               │      DISCONNECT │  │ handshake Resume             │ │ park TTL
//!               │                 ▼  │ (token checked,              │ │ expires /
//!               │              (free)└──────────────────────────────┘ │ drain
//!               │                      replay cache pruned            ▼
//!               └─────────────────────────────────────────────────ᴿᴱᴬᴾᴱᴰ──▶ (free)
//! ```
//!
//! Exactly-once effects across a resume come from the pool's per-session last-reply
//! cache: the client re-sends the one envelope it never saw answered, and if the
//! server had already executed it the cached reply is replayed without touching the
//! engine — the ledgers and nonce streams advance exactly once, and the resumed run is
//! byte-identical to an uninterrupted one.
//!
//! On the client, [`RetryPolicy`] makes the recovery transparent: a retryable
//! transport failure mid-exchange triggers reconnect → resume handshake → re-send of
//! the unacknowledged envelope, under a bounded attempt/deadline budget with capped,
//! jittered backoff.  [`FaultPlan`] injects exactly these failures (severed sockets,
//! delayed replies) on a deterministic schedule, which is what the chaos soak harness
//! drives.
//!
//! # Metering
//!
//! Byte accounting excludes all framing — the 4-byte length prefix, the 16-byte
//! envelope header and the tag byte — so [`ChannelMetrics`] stays byte-identical with
//! the other three transports (asserted by `tests/transport_equivalence.rs`).  A
//! re-sent envelope is a physical retransmit of the same logical exchange and is *not*
//! re-metered.  Errors of the socket itself (timeout, reset, EOF) surface as
//! [`ProtocolError::Transport`] with a typed [`crate::TransportErrorKind`]; a
//! provisioning payload this size is key material, so production deployments would
//! wrap the socket in TLS — the handshake (and its resume token, which is an
//! anti-footgun, not a security boundary) is factored so that swap stays local to
//! this module.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sectopk_crypto::pool::shard_seed;
use sectopk_metrics::{Counter, Histogram as MetricsHistogram, Registry as MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::channel::{ChannelMetrics, Direction};
use crate::engine::EngineProvision;
use crate::error::{ProtocolError, Result};
use crate::ledger::LeakageLedger;
use crate::multiplex::{
    AttachReason, Envelope, MultiplexServer, SessionConduit, SessionId, SubmitError,
};
use crate::plock::PoisonFree;
use crate::transport::TransportKind;
use crate::transport::{frame, framed, response_or_error, S1Request, S2Response, Transport};
use crate::wire::{self, WireError};

/// Version of the TCP handshake and framing.  Bumped on any incompatible change; the
/// server rejects hellos carrying a different version.  v2 added session resumption
/// (the `Fresh`/`Resume` hello split, resume tokens, typed reject codes).
pub const TCP_PROTOCOL_VERSION: u64 = 2;

/// Magic string opening every `ClientHello`; lets the server reject a stray client
/// of some other protocol before trying to decode key material.
const TCP_MAGIC: &str = "sectopk";

/// Upper bound on one length-prefixed frame.  Generous for the protocol's largest
/// batched exchanges while turning a corrupted length prefix into a clean transport
/// error instead of an attempted multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Session ids the server assigns start here, far above anything clients propose
/// densely, so negotiated and proposed ids never collide by accident.
const ASSIGNED_SESSION_BASE: u64 = 1 << 32;

/// How long a resume handshake waits for the dropped connection's bridge to park the
/// session before concluding someone else holds it.  The old bridge parks as soon as
/// it observes the dead socket, so this is a race-absorbing grace, not a timeout the
/// happy path ever sleeps through.
const RESUME_GRACE: Duration = Duration::from_secs(5);

/// Poll tick of the resume grace loop and of [`TcpCloudServer::drain`].
const POLL_TICK: Duration = Duration::from_millis(5);

/// Tick of the background sweeper that reaps parked sessions past their TTL.
const SWEEP_TICK: Duration = Duration::from_millis(20);

// ====================================================================================
// Length-prefixed framing
// ====================================================================================

/// Write one `u32 LE length ‖ bytes` frame in a single buffer (one syscall in the
/// common case, and no interleaving hazard if a writer is ever shared).
fn write_frame(mut w: impl Write, bytes: &[u8]) -> Result<()> {
    debug_assert!(bytes.len() <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    w.write_all(&out).map_err(|e| ProtocolError::from_io("writing frame", e))?;
    w.flush().map_err(|e| ProtocolError::from_io("flushing frame", e))
}

/// Read one length-prefixed frame.
fn read_frame(mut r: impl Read) -> Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(|e| ProtocolError::from_io("reading frame header", e))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::transport(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| ProtocolError::from_io("reading frame body", e))?;
    Ok(buf)
}

// ====================================================================================
// Handshake messages
// ====================================================================================

/// First frame on every connection: identifies the protocol and either provisions a
/// fresh session or resumes a parked one.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ClientHello {
    /// Must be [`TCP_MAGIC`].
    magic: String,
    /// Must be [`TCP_PROTOCOL_VERSION`].
    version: u64,
    /// What the connection wants from the server.
    kind: HelloKind,
}

/// The two ways a connection can claim a session.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum HelloKind {
    /// Provision a new session.
    Fresh {
        /// Proposed session id; 0 asks the server to assign one.
        session: u64,
        /// Everything the server needs to boot this session's
        /// [`crate::engine::S2Engine`].
        provision: EngineProvision,
    },
    /// Take over a parked session after a dropped connection.
    Resume(ResumeHello),
}

/// Resume claim: which session, how far the client got, and proof it is the same
/// client (the token minted at the previous accept).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct ResumeHello {
    /// The session id negotiated by the dropped connection.
    session: u64,
    /// Highest protocol sequence number whose reply the client has seen; the server
    /// prunes the session's replay cache up to it.
    last_acked_seq: u64,
    /// The token the server minted at the previous accept of this session.
    resume_token: u64,
}

/// Why the server refused a `ClientHello`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum RejectCode {
    /// Undecodable hello or wrong magic.
    Malformed,
    /// Client speaks a different [`TCP_PROTOCOL_VERSION`].
    VersionMismatch,
    /// The session table (active + parked) is at capacity.  Transient.
    Full,
    /// The server is draining: finishing in-flight sessions, accepting no claims.
    /// Transient from the fleet's point of view (retry against a peer).
    Draining,
    /// Fresh hello proposing an id that is connected, or a resume racing a live
    /// connection that never died.
    SessionInUse,
    /// Resume refused outright: unknown session, expired park TTL, token mismatch,
    /// or another client already claimed it.
    ResumeDenied,
}

/// The server's answer to a `ClientHello`.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum ServerHello {
    /// Connection admitted under the negotiated session id.
    Accept {
        /// The server's protocol version (equals the client's on accept).
        version: u64,
        /// The session id all subsequent envelopes must carry.
        session: u64,
        /// Token a future [`HelloKind::Resume`] of this session must present.
        /// Rotated on every accept, so a stale client cannot hijack a resumed
        /// session.
        resume_token: u64,
    },
    /// Connection refused; the socket closes after this frame.
    Reject {
        /// Machine-readable refusal class.
        code: RejectCode,
        /// Human-readable refusal reason.
        reason: String,
    },
}

/// Map a server rejection onto the typed error taxonomy: capacity refusals are
/// transient (retry), everything else is permanent.
fn rejection_error(peer: SocketAddr, code: RejectCode, reason: &str) -> ProtocolError {
    let message = format!("S2 at {peer} refused the connection: {reason}");
    match code {
        RejectCode::Full | RejectCode::Draining => ProtocolError::transport_overloaded(message),
        _ => ProtocolError::transport_rejected(message),
    }
}

// ====================================================================================
// Client policy: retry, backoff, fault injection
// ====================================================================================

/// Transparent-retry budget of a [`TcpTransport`]: how hard the client works to
/// reconnect, resume its session and re-send the unacknowledged envelope before a
/// retryable failure is surfaced to the caller.
///
/// The default is [`RetryPolicy::none`] — fail fast, exactly the pre-resumption
/// behaviour — so recovery is strictly opt-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts per logical exchange before giving up (0 disables retry).
    pub attempts: u32,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound the exponential backoff saturates at (zero = uncapped).
    pub backoff_cap: Duration,
    /// Wall-clock budget per logical exchange across all its attempts (zero = no
    /// deadline).  Exceeding it surfaces [`crate::TransportErrorKind::Exhausted`].
    pub deadline: Duration,
}

impl RetryPolicy {
    /// No retry: the first transport failure surfaces to the caller.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 0,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            deadline: Duration::ZERO,
        }
    }

    /// A sensible serving-fleet default: 6 attempts, 10ms → 500ms capped backoff,
    /// 30s overall deadline.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 6,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            deadline: Duration::from_secs(30),
        }
    }

    /// Whether this policy retries at all.
    pub fn is_enabled(&self) -> bool {
        self.attempts > 0
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Deterministic fault injection for the chaos harness: the client severs or delays
/// its own connection on a fixed schedule of *logical* protocol frames (control
/// exchanges and retransmits are not counted), so a seeded run injects exactly the
/// same faults every time.
///
/// Faults fire only on the **first** attempt of each logical frame — a retry of the
/// same envelope is never re-faulted — which guarantees forward progress under any
/// enabled [`RetryPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Every Nth logical frame: sever the connection *before* the request is written
    /// (the server never sees it; the retry re-executes it once).  0 disables.
    pub drop_before_send_every: u64,
    /// Every Nth logical frame: write the request, then sever before reading the
    /// reply (the server executes it; the retry is answered from the replay cache).
    /// 0 disables.
    pub drop_after_send_every: u64,
    /// Every Nth logical frame: sleep [`FaultPlan::delay`] after writing the request,
    /// simulating a stalled link. 0 disables.
    pub delay_every: u64,
    /// The stall injected by [`FaultPlan::delay_every`].
    pub delay: Duration,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan {
            drop_before_send_every: 0,
            drop_after_send_every: 0,
            delay_every: 0,
            delay: Duration::ZERO,
        }
    }

    /// Sever the connection before sending every Nth logical frame.
    pub fn with_drop_before_send_every(mut self, every: u64) -> Self {
        self.drop_before_send_every = every;
        self
    }

    /// Sever the connection after sending every Nth logical frame.
    pub fn with_drop_after_send_every(mut self, every: u64) -> Self {
        self.drop_after_send_every = every;
        self
    }

    /// Stall for `delay` after sending every Nth logical frame.
    pub fn with_delay_every(mut self, every: u64, delay: Duration) -> Self {
        self.delay_every = every;
        self.delay = delay;
        self
    }

    /// Whether any fault is scheduled.
    pub fn is_active(&self) -> bool {
        self.drop_before_send_every > 0 || self.drop_after_send_every > 0 || self.delay_every > 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Exponential backoff for `attempt` (0-based): `base * 2^attempt`, saturated at
/// `cap`, with deterministic jitter in [50%, 100%] drawn from `seed` — seeded runs
/// back off identically, and a fleet sharing a base schedule decorrelates by seed.
///
/// The doubling is computed in saturating 128-bit nanoseconds *before* the cap is
/// applied, so a large `attempt` (or an uncapped policy, `cap == 0`) pins at the
/// representable maximum instead of wrapping around to a tiny delay.
fn backoff_delay(base: Duration, cap: Duration, attempt: u32, seed: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exponential = base.as_nanos().saturating_mul(1u128 << attempt.min(127));
    let capped = if cap.is_zero() { exponential } else { exponential.min(cap.as_nanos()) };
    // Integer jitter: floor(capped / 100) * percent never overflows (the division
    // comes first) and agrees exactly with the real-valued percentage whenever
    // `capped` is a multiple of 100ns.
    let percent = 50 + shard_seed(seed, u64::from(attempt) + 1) % 51;
    duration_from_nanos_saturating((capped / 100).saturating_mul(u128::from(percent)))
}

/// A `Duration` from 128-bit nanoseconds, pinned at `Duration::MAX` on overflow.
fn duration_from_nanos_saturating(nanos: u128) -> Duration {
    const NANOS_PER_SEC: u128 = 1_000_000_000;
    match u64::try_from(nanos / NANOS_PER_SEC) {
        Ok(secs) => Duration::new(secs, (nanos % NANOS_PER_SEC) as u32),
        Err(_) => Duration::MAX,
    }
}

// ====================================================================================
// Client options
// ====================================================================================

/// Connection policy of a [`TcpTransport`]: bounded connect retry with capped,
/// jittered exponential backoff, socket timeouts, an optional explicit session id,
/// the transparent [`RetryPolicy`], and the chaos harness's [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpOptions {
    /// Connection attempts before giving up (at least 1).
    pub connect_attempts: u32,
    /// Delay after the first failed attempt; doubles per retry up to
    /// [`TcpOptions::connect_backoff_cap`].
    pub connect_backoff: Duration,
    /// Upper bound the connect backoff saturates at (zero = uncapped).
    pub connect_backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter; 0 derives one from the negotiated
    /// session id, so a fleet of clients decorrelates without configuration.
    pub jitter_seed: u64,
    /// Socket read timeout; a server silent for longer yields
    /// [`ProtocolError::Transport`] with [`crate::TransportErrorKind::Timeout`].
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Session id to propose; `None` lets the server assign one.
    pub session: Option<SessionId>,
    /// Transparent reconnect-resume-resend budget (default: disabled).
    pub retry: RetryPolicy,
    /// Deterministic fault injection (default: none).
    pub faults: FaultPlan,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(25),
            connect_backoff_cap: Duration::from_secs(1),
            jitter_seed: 0,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            session: None,
            retry: RetryPolicy::none(),
            faults: FaultPlan::none(),
        }
    }
}

impl TcpOptions {
    /// Propose an explicit session id instead of letting the server assign one.
    pub fn with_session(mut self, session: SessionId) -> Self {
        self.session = Some(session);
        self
    }

    /// Set the connect retry budget.
    pub fn with_connect_attempts(mut self, attempts: u32) -> Self {
        self.connect_attempts = attempts.max(1);
        self
    }

    /// Set both socket timeouts.
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Enable transparent retry under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Inject faults on `plan`'s schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Seed the deterministic backoff jitter explicitly.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

fn configure_stream(stream: &TcpStream, options: &TcpOptions) -> Result<()> {
    stream.set_nodelay(true).map_err(|e| ProtocolError::from_io("configuring socket", e))?;
    stream
        .set_read_timeout(Some(options.read_timeout))
        .map_err(|e| ProtocolError::from_io("configuring socket", e))?;
    stream
        .set_write_timeout(Some(options.write_timeout))
        .map_err(|e| ProtocolError::from_io("configuring socket", e))
}

// ====================================================================================
// Client transport
// ====================================================================================

/// Cached client-side metric handles (`tcp.client.*`).  All no-ops until
/// [`TcpTransport::set_metrics_registry`] installs an enabled registry; the
/// deterministic fault accounting ([`TcpTransport::faults_absorbed`]) is counted
/// separately and is always on.
#[derive(Clone, Debug, Default)]
struct TcpClientMetrics {
    /// Dial attempts made while recovering a dropped connection
    /// (`tcp.client.connect_attempts`).
    connect_attempts: Counter,
    /// Successful reconnect-resume recoveries (`tcp.client.reconnects`).
    reconnects: Counter,
    /// Shed (typed-overload) replies absorbed by re-submission
    /// (`tcp.client.shed_retries`).
    shed_retries: Counter,
    /// Total nanoseconds slept in recovery backoff (`tcp.client.backoff_nanos`).
    backoff_nanos: Counter,
    /// Encoded envelope bytes per logical exchange (`tcp.client.frame_bytes`).
    frame_bytes: MetricsHistogram,
}

impl TcpClientMetrics {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        TcpClientMetrics {
            connect_attempts: registry.counter("tcp.client.connect_attempts"),
            reconnects: registry.counter("tcp.client.reconnects"),
            shed_retries: registry.counter("tcp.client.shed_retries"),
            backoff_nanos: registry.counter("tcp.client.backoff_nanos"),
            frame_bytes: registry.histogram("tcp.client.frame_bytes"),
        }
    }
}

/// Clamp a [`Duration`] to whole nanoseconds for counter accounting.
fn nanos_u64(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// The S1 side of one TCP connection to a [`TcpCloudServer`]: a [`Transport`] whose
/// envelopes travel length-prefix-framed over a real socket, with opt-in transparent
/// reconnect-resume-resend recovery (see the module docs).
pub struct TcpTransport {
    /// The live socket.  `RefCell` because recovery swaps it mid-exchange from the
    /// `&self` control plane (`s2_ledger` runs through the same retry path).
    stream: RefCell<TcpStream>,
    /// Resolved server addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    peer: SocketAddr,
    session: SessionId,
    options: TcpOptions,
    /// Resolved jitter seed ([`TcpOptions::jitter_seed`], or derived from the session
    /// id when left 0).
    jitter_seed: u64,
    /// Token to present when resuming; rotated by the server on every accept.
    resume_token: Cell<u64>,
    seq: u64,
    /// Highest protocol sequence number whose reply we have seen (sent with every
    /// resume so the server can prune its replay cache).
    acked: Cell<u64>,
    /// Logical protocol frames sent, driving the [`FaultPlan`] schedule.
    frames: Cell<u64>,
    /// Successful reconnect-resume recoveries performed so far.
    reconnects: Cell<u64>,
    /// Transport faults absorbed without surfacing to the caller: reconnect-resume
    /// recoveries plus shed requests retried to success.  Always counted (independent
    /// of any metrics registry), so serving reports can split query failures from
    /// faults the retry machinery hid.
    faults_absorbed: Cell<u64>,
    /// Cached `tcp.client.*` metric handles (no-ops until a registry is installed).
    client_metrics: TcpClientMetrics,
    metrics: ChannelMetrics,
    /// Set once teardown (or an unrecoverable socket error) happened, so `Drop` does
    /// not try to disconnect twice or over a dead socket.
    disconnected: Cell<bool>,
    /// When the transport was created through [`TransportKind::Tcp`] rather than by
    /// connecting to an explicit listener, it owns a private loopback server that must
    /// live (and shut down) with it.
    private_server: Option<Box<TcpCloudServer>>,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.peer)
            .field("session", &self.session)
            .field("reconnects", &self.reconnects.get())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl TcpTransport {
    /// Connect to a [`TcpCloudServer`] at `addr`, retrying with capped jittered
    /// exponential backoff, and run the handshake that provisions this session's S2
    /// engine.
    pub fn connect(
        addr: impl ToSocketAddrs,
        provision: EngineProvision,
        options: TcpOptions,
    ) -> Result<Self> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ProtocolError::transport(format!("resolving S2 address: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ProtocolError::transport("S2 address resolved to nothing"));
        }
        let stream = Self::connect_with_retry(&addrs, &options)?;
        let peer =
            stream.peer_addr().map_err(|e| ProtocolError::from_io("reading peer address", e))?;
        configure_stream(&stream, &options)?;

        let hello = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            kind: HelloKind::Fresh { session: options.session.map_or(0, |s| s.0), provision },
        };
        let (session, resume_token) = client_handshake(&stream, peer, &hello)?;
        let jitter_seed = if options.jitter_seed != 0 {
            options.jitter_seed
        } else {
            shard_seed(session, 0xBAC0FF)
        };
        Ok(TcpTransport {
            stream: RefCell::new(stream),
            addrs,
            peer,
            session: SessionId(session),
            options,
            jitter_seed,
            resume_token: Cell::new(resume_token),
            seq: 0,
            acked: Cell::new(0),
            frames: Cell::new(0),
            reconnects: Cell::new(0),
            faults_absorbed: Cell::new(0),
            client_metrics: TcpClientMetrics::default(),
            metrics: ChannelMetrics::new(),
            disconnected: Cell::new(false),
            private_server: None,
        })
    }

    /// A self-contained TCP transport: spins up a private single-worker loopback
    /// [`TcpCloudServer`] on an ephemeral port serving only this session.  This is what
    /// `SECTOPK_TRANSPORT=tcp` uses, so the whole test suite can exercise the real
    /// socket path without managing a server process.
    pub fn private(provision: EngineProvision, options: TcpOptions) -> Result<Self> {
        let server = TcpCloudServer::bind("127.0.0.1:0", 1)
            .map_err(|e| ProtocolError::transport(format!("binding loopback S2: {e}")))?;
        let mut transport = Self::connect(server.local_addr(), provision, options)?;
        transport.private_server = Some(Box::new(server));
        Ok(transport)
    }

    fn connect_with_retry(addrs: &[SocketAddr], options: &TcpOptions) -> Result<TcpStream> {
        let attempts = options.connect_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(
                    options.connect_backoff,
                    options.connect_backoff_cap,
                    attempt - 1,
                    options.jitter_seed,
                ));
            }
            for addr in addrs {
                match TcpStream::connect(addr) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last_error = format!("{addr}: {e}"),
                }
            }
        }
        Err(ProtocolError::transport_io(format!(
            "connecting to S2 failed after {attempts} attempts: {last_error}"
        )))
    }

    /// One reconnect attempt (no inner retry — the caller's [`RetryPolicy`] is the
    /// budget): dial, resume-handshake the session, and on accept swap the live
    /// stream.
    fn resume_once(&self) -> Result<()> {
        let mut last_error = String::new();
        let stream = 'dial: {
            for addr in &self.addrs {
                self.client_metrics.connect_attempts.incr();
                match TcpStream::connect(addr) {
                    Ok(stream) => break 'dial stream,
                    Err(e) => last_error = format!("{addr}: {e}"),
                }
            }
            return Err(ProtocolError::transport_io(format!("reconnecting to S2: {last_error}")));
        };
        configure_stream(&stream, &self.options)?;
        let hello = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            kind: HelloKind::Resume(ResumeHello {
                session: self.session.0,
                last_acked_seq: self.acked.get(),
                resume_token: self.resume_token.get(),
            }),
        };
        let (session, resume_token) = client_handshake(&stream, self.peer, &hello)?;
        if session != self.session.0 {
            return Err(ProtocolError::transport(format!(
                "resume handshake returned {session}, expected {}",
                self.session.0
            )));
        }
        self.resume_token.set(resume_token);
        *self.stream.borrow_mut() = stream;
        Ok(())
    }

    /// Burn through the retry budget until one reconnect-resume succeeds.  `attempt`
    /// is shared across the whole logical exchange, so repeated failures of the same
    /// envelope cannot retry forever.
    fn reconnect_and_resume(
        &self,
        attempt: &mut u32,
        started: Instant,
        trigger: ProtocolError,
    ) -> Result<()> {
        let policy = self.options.retry;
        let mut last = trigger;
        while *attempt < policy.attempts {
            if !policy.deadline.is_zero() && started.elapsed() >= policy.deadline {
                return Err(ProtocolError::transport_exhausted(format!(
                    "retry deadline of {:?} exceeded after {} reconnect attempts; last error: {last}",
                    policy.deadline, *attempt
                )));
            }
            let delay =
                backoff_delay(policy.backoff, policy.backoff_cap, *attempt, self.jitter_seed);
            self.client_metrics.backoff_nanos.add(nanos_u64(delay));
            std::thread::sleep(delay);
            *attempt += 1;
            match self.resume_once() {
                Ok(()) => {
                    self.reconnects.set(self.reconnects.get() + 1);
                    self.faults_absorbed.set(self.faults_absorbed.get() + 1);
                    self.client_metrics.reconnects.incr();
                    return Ok(());
                }
                Err(e) if e.is_retryable() => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(ProtocolError::transport_exhausted(format!(
            "gave up after {} reconnect attempts; last error: {last}",
            policy.attempts
        )))
    }

    /// The session id negotiated at connect time.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The server address this transport is connected to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Successful transparent reconnect-resume recoveries performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Install `tcp.client.*` metric handles from `registry` (see
    /// [`sectopk_metrics::Registry`]).  A disabled registry leaves every instrument a
    /// no-op; either way the protocol bytes and [`ChannelMetrics`] are unaffected.
    pub fn set_metrics_registry(&mut self, registry: &MetricsRegistry) {
        self.client_metrics = TcpClientMetrics::from_registry(registry);
    }

    /// Sever our own socket (fault injection).
    fn sever(&self) {
        let _ = self.stream.borrow().shutdown(Shutdown::Both);
    }

    /// One attempt at shipping `encoded` and reading its reply, injecting scheduled
    /// faults when this is the first attempt of a logical protocol frame.
    fn try_exchange(&self, seq: u64, encoded: &[u8], first_attempt: bool) -> Result<Envelope> {
        let faults = self.options.faults;
        let inject = first_attempt && seq != 0 && faults.is_active();
        let nth = if inject {
            self.frames.set(self.frames.get() + 1);
            self.frames.get()
        } else if first_attempt && seq != 0 {
            self.frames.set(self.frames.get() + 1);
            0
        } else {
            0
        };
        if inject && faults.drop_before_send_every > 0 && nth % faults.drop_before_send_every == 0 {
            self.sever();
            return Err(ProtocolError::transport_io(
                "fault injection: connection severed before send",
            ));
        }
        let stream = self.stream.borrow();
        write_frame(&*stream, encoded)?;
        if inject && faults.drop_after_send_every > 0 && nth % faults.drop_after_send_every == 0 {
            // The request left, the reply is lost: sever and fail without reading (on
            // loopback the kernel may otherwise hand us the reply out of the severed
            // socket's buffer, absorbing the fault).
            let _ = stream.shutdown(Shutdown::Both);
            return Err(ProtocolError::transport_io(
                "fault injection: connection severed after send",
            ));
        }
        if inject && faults.delay_every > 0 && nth % faults.delay_every == 0 {
            std::thread::sleep(faults.delay);
        }
        loop {
            let incoming = read_frame(&*stream)?;
            let reply = Envelope::decode(&incoming)?;
            if reply.session == self.session && reply.seq < seq {
                // A stale replay of an exchange we already acknowledged (possible in
                // the reply queue right after a resume): discard, keep reading.
                continue;
            }
            if reply.session != self.session || reply.seq != seq {
                return Err(ProtocolError::transport(format!(
                    "envelope echo mismatch: sent {}#{seq}, got {}#{}",
                    self.session, reply.session, reply.seq
                )));
            }
            return Ok(reply);
        }
    }

    /// Ship one frame under sequence number `seq` and block for the reply, recovering
    /// from retryable transport failures under the configured [`RetryPolicy`]
    /// (reconnect → resume handshake → re-send this same envelope).
    fn exchange_with_seq(&self, seq: u64, frame_bytes: Vec<u8>) -> Result<Envelope> {
        let envelope = Envelope { session: self.session, seq, frame: frame_bytes };
        let encoded = envelope.encode();
        self.client_metrics.frame_bytes.observe(encoded.len() as u64);
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let mut first_attempt = true;
        loop {
            match self.try_exchange(seq, &encoded, first_attempt) {
                Ok(reply) => {
                    if seq != 0 {
                        self.acked.set(seq);
                    }
                    return Ok(reply);
                }
                Err(e) => {
                    first_attempt = false;
                    if !(e.is_retryable() && self.options.retry.is_enabled()) {
                        self.disconnected.set(true);
                        return Err(e);
                    }
                    if let Err(gave_up) = self.reconnect_and_resume(&mut attempt, started, e) {
                        self.disconnected.set(true);
                        return Err(gave_up);
                    }
                }
            }
        }
    }

    /// One unmetered control-plane exchange (ledger fetch / reset) under the reserved
    /// sequence number 0.
    fn control(&self, tag: u8, expected_reply: u8) -> Result<Vec<u8>> {
        let reply = self.exchange_with_seq(0, vec![tag])?;
        match reply.frame.split_first() {
            Some((&t, payload)) if t == expected_reply => Ok(payload.to_vec()),
            _ => Err(ProtocolError::transport("unexpected control reply from S2")),
        }
    }
}

/// Run one client-side handshake over `stream`; returns the negotiated
/// `(session, resume_token)` on accept.
fn client_handshake(
    stream: &TcpStream,
    peer: SocketAddr,
    hello: &ClientHello,
) -> Result<(u64, u64)> {
    write_frame(stream, &wire::to_bytes(hello))?;
    let reply = read_frame(stream)?;
    let reply: ServerHello = wire::from_bytes(&reply)
        .map_err(|e| ProtocolError::transport(format!("undecodable server hello: {e}")))?;
    match reply {
        ServerHello::Accept { version, session, resume_token } => {
            if version != TCP_PROTOCOL_VERSION {
                return Err(ProtocolError::transport_rejected(format!(
                    "server speaks protocol v{version}, client v{TCP_PROTOCOL_VERSION}"
                )));
            }
            Ok((session, resume_token))
        }
        ServerHello::Reject { code, reason } => Err(rejection_error(peer, code, &reason)),
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        let out_frame = framed(frame::REQUEST, &request);
        // Metered size = wire payload only; the tag byte, the 16-byte envelope header
        // and the 4-byte length prefix are framing, keeping metrics identical across
        // all four transports.  Metered exactly once per *logical* exchange: a
        // recovery re-send is a physical retransmit, not new protocol traffic.
        self.metrics.record(Direction::S1ToS2, out_frame.len() - 1, request.ciphertext_count());
        self.seq += 1;
        let seq = self.seq;
        let mut shed_attempt: u32 = 0;
        loop {
            let reply = self.exchange_with_seq(seq, out_frame.clone())?;
            let payload = match reply.frame.split_first() {
                Some((&frame::RESPONSE, payload)) => payload,
                _ => {
                    self.disconnected.set(true);
                    return Err(ProtocolError::transport("unexpected reply frame from S2"));
                }
            };
            let response: S2Response = wire::from_bytes(payload)
                .map_err(|e| ProtocolError::transport(format!("undecodable response: {e}")))?;
            if let S2Response::Error(e) = &response {
                // A shed request (typed overload) was never executed; re-submitting
                // the same sequence number after a backoff is safe and invisible to
                // the caller, up to the retry budget.
                if e.is_retryable() && shed_attempt < self.options.retry.attempts {
                    let delay = backoff_delay(
                        self.options.retry.backoff,
                        self.options.retry.backoff_cap,
                        shed_attempt,
                        self.jitter_seed,
                    );
                    self.client_metrics.backoff_nanos.add(nanos_u64(delay));
                    std::thread::sleep(delay);
                    shed_attempt += 1;
                    self.faults_absorbed.set(self.faults_absorbed.get() + 1);
                    self.client_metrics.shed_retries.incr();
                    continue;
                }
            }
            self.metrics.record(Direction::S2ToS1, payload.len(), response.ciphertext_count());
            return response_or_error(response);
        }
    }

    fn metrics(&self) -> ChannelMetrics {
        self.metrics
    }

    fn reset_metrics(&mut self) {
        self.metrics = ChannelMetrics::new();
    }

    fn s2_ledger(&self) -> LeakageLedger {
        let payload = self
            .control(frame::FETCH_LEDGER, frame::LEDGER)
            .expect("S2 server unavailable while fetching the session ledger");
        wire::from_bytes(&payload).expect("undecodable S2 ledger snapshot")
    }

    fn reset_s2(&mut self) {
        self.control(frame::RESET, frame::RESET_DONE)
            .expect("S2 server unavailable while resetting the session");
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn faults_absorbed(&self) -> u64 {
        self.faults_absorbed.get()
    }

    fn set_metrics_registry(&mut self, registry: &MetricsRegistry) {
        TcpTransport::set_metrics_registry(self, registry);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if !self.disconnected.get() {
            // Graceful teardown: ship DISCONNECT and block for the ack so the session
            // id is free for reuse the moment this drop returns; best effort if the
            // server is already gone.
            let disconnect = Envelope {
                session: self.session,
                seq: self.seq + 1,
                frame: vec![frame::DISCONNECT],
            };
            let stream = self.stream.borrow();
            if write_frame(&*stream, &disconnect.encode()).is_ok() {
                let _ = read_frame(&*stream);
            }
        }
        let _ = self.stream.borrow().shutdown(Shutdown::Both);
        // A private server (if any) drops afterwards, joining its threads.
    }
}

// ====================================================================================
// Server
// ====================================================================================

/// Admission and fault-tolerance policy of a [`TcpCloudServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpServerConfig {
    /// Maximum concurrently held sessions (active + parked); further fresh hellos are
    /// rejected with a typed `Full`.
    pub max_sessions: usize,
    /// How long a session whose connection died dirty stays parked (engine, ledger
    /// and replay cache intact) awaiting a resume before it is reaped.
    /// `Duration::ZERO` disables parking entirely: a dirty exit reaps immediately,
    /// the pre-resumption behaviour.
    pub park_ttl: Duration,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig { max_sessions: 1024, park_ttl: Duration::from_secs(30) }
    }
}

impl TcpServerConfig {
    /// Set the park TTL (see [`TcpServerConfig::park_ttl`]).
    pub fn with_park_ttl(mut self, ttl: Duration) -> Self {
        self.park_ttl = ttl;
        self
    }

    /// Set the session capacity.
    pub fn with_max_sessions(mut self, max: usize) -> Self {
        self.max_sessions = max.max(1);
        self
    }
}

/// Mint a resume token.  `RandomState` is randomly seeded per process, so tokens are
/// unguessable enough to stop accidental cross-client resumes — the real security
/// boundary is the transport (TLS in production), not this token.
fn mint_token(session: u64, nonce: u64) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(session);
    hasher.write_u64(nonce);
    hasher.finish() | 1 // never 0, so "no token" is unambiguous
}

/// Cached server-side metric handles (`tcp.server.*`), resolved from the worker
/// pool's registry — see [`MultiplexServer::metrics_registry`].  All no-ops when the
/// pool was built without one.
#[derive(Clone, Debug, Default)]
struct TcpServerMetrics {
    /// Handshakes accepted (fresh and resume) — `tcp.server.accepts`.
    accepts: Counter,
    /// Sessions taken over by a resume handshake — `tcp.server.resumed`.
    resumed: Counter,
    /// Sessions parked after a dirty disconnect — `tcp.server.parked`.
    parked: Counter,
    /// Sessions reaped (TTL expiry, drain, dead socket) — `tcp.server.reaped`.
    reaped: Counter,
    /// Requests answered with a typed overload error — `tcp.server.sheds`.
    sheds: Counter,
    /// Rejected hellos by [`RejectCode`] — `tcp.server.rejects.{code}`.
    reject_full: Counter,
    reject_draining: Counter,
    reject_malformed: Counter,
    reject_version_mismatch: Counter,
    reject_session_in_use: Counter,
    reject_resume_denied: Counter,
}

impl TcpServerMetrics {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        TcpServerMetrics {
            accepts: registry.counter("tcp.server.accepts"),
            resumed: registry.counter("tcp.server.resumed"),
            parked: registry.counter("tcp.server.parked"),
            reaped: registry.counter("tcp.server.reaped"),
            sheds: registry.counter("tcp.server.sheds"),
            reject_full: registry.counter("tcp.server.rejects.full"),
            reject_draining: registry.counter("tcp.server.rejects.draining"),
            reject_malformed: registry.counter("tcp.server.rejects.malformed"),
            reject_version_mismatch: registry.counter("tcp.server.rejects.version_mismatch"),
            reject_session_in_use: registry.counter("tcp.server.rejects.session_in_use"),
            reject_resume_denied: registry.counter("tcp.server.rejects.resume_denied"),
        }
    }

    fn reject(&self, code: RejectCode) -> &Counter {
        match code {
            RejectCode::Full => &self.reject_full,
            RejectCode::Draining => &self.reject_draining,
            RejectCode::Malformed => &self.reject_malformed,
            RejectCode::VersionMismatch => &self.reject_version_mismatch,
            RejectCode::SessionInUse => &self.reject_session_in_use,
            RejectCode::ResumeDenied => &self.reject_resume_denied,
        }
    }
}

/// Everything the accept loop, bridges and sweeper share.
struct Shared {
    pool: Arc<MultiplexServer>,
    config: TcpServerConfig,
    /// Session id → the live connection's stream (a `try_clone`), so the server can
    /// sever one session ([`TcpCloudServer::drop_session`]) or all of them on
    /// shutdown.
    streams: Mutex<HashMap<u64, TcpStream>>,
    /// Sessions whose connection died dirty, awaiting resume until the deadline.
    parked: Mutex<HashMap<u64, Instant>>,
    /// Current resume token of every held session (active or parked).
    tokens: Mutex<HashMap<u64, u64>>,
    /// Draining: reject every hello, finish in-flight work, park nothing.
    draining: AtomicBool,
    /// Hard shutdown (server drop): stops the accept loop and the sweeper.
    shutdown: AtomicBool,
    /// Sessions successfully taken over by a resume handshake.
    resumed: AtomicU64,
    /// Next server-assigned session id.
    next_session: AtomicU64,
    /// Nonce feed for token minting.
    token_nonce: AtomicU64,
    /// Cached `tcp.server.*` metric handles (no-ops when the pool has no registry).
    metrics: TcpServerMetrics,
}

impl Shared {
    fn reap(&self, session: SessionId) {
        self.tokens.plock().remove(&session.0);
        reap_session(&self.pool, session);
        self.metrics.reaped.incr();
    }
}

/// The crypto cloud S2 as a network listener: an accept loop feeding per-connection
/// bridge threads into a shared [`MultiplexServer`] worker pool, plus a background
/// sweeper reaping parked sessions past their TTL.  This is the engine of the
/// `sectopk-s2d` binary; tests bind it on a loopback ephemeral port.
pub struct TcpCloudServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    sweeper_thread: Option<JoinHandle<()>>,
    bridge_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl fmt::Debug for TcpCloudServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpCloudServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.shared.pool.workers())
            .field("active_sessions", &self.active_sessions())
            .field("parked_sessions", &self.parked_sessions())
            .finish()
    }
}

impl TcpCloudServer {
    /// Bind a listener at `addr` with its own `workers`-thread S2 pool and default
    /// admission policy.  `"127.0.0.1:0"` binds an ephemeral loopback port (read it
    /// back with [`Self::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> std::io::Result<Self> {
        Self::serve_pool(addr, Arc::new(MultiplexServer::new(workers)), TcpServerConfig::default())
    }

    /// Bind a listener at `addr` feeding an existing (possibly shared) worker pool —
    /// the path `QueryServer::listen` uses so networked and in-process sessions are
    /// served by the same S2 workers.
    pub fn serve_pool(
        addr: impl ToSocketAddrs,
        pool: Arc<MultiplexServer>,
        config: TcpServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // The listener reports into the same registry as the worker pool it feeds, so
        // one snapshot covers the whole serving stack; a pool built without a registry
        // makes every handle a no-op.
        let metrics = TcpServerMetrics::from_registry(pool.metrics_registry());
        let shared = Arc::new(Shared {
            pool,
            config,
            streams: Mutex::new(HashMap::new()),
            parked: Mutex::new(HashMap::new()),
            tokens: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            resumed: AtomicU64::new(0),
            next_session: AtomicU64::new(ASSIGNED_SESSION_BASE),
            token_nonce: AtomicU64::new(1),
            metrics,
        });
        let bridge_threads = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let bridge_threads = Arc::clone(&bridge_threads);
            std::thread::Builder::new()
                .name("sectopk-s2d-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &bridge_threads))
                .expect("spawn accept thread")
        };
        let sweeper_thread = if config.park_ttl.is_zero() {
            None
        } else {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("sectopk-s2d-sweeper".into())
                    .spawn(move || sweeper_loop(&shared))
                    .expect("spawn sweeper thread"),
            )
        };
        Ok(TcpCloudServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            sweeper_thread,
            bridge_threads,
        })
    }

    /// The bound listening address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The worker pool serving this listener's sessions.
    pub fn pool(&self) -> &Arc<MultiplexServer> {
        &self.shared.pool
    }

    /// The admission policy this listener runs under.
    pub fn config(&self) -> TcpServerConfig {
        self.shared.config
    }

    /// Number of currently connected TCP sessions.
    pub fn active_sessions(&self) -> usize {
        self.shared.streams.plock().len()
    }

    /// Number of sessions parked after a dirty disconnect, awaiting resume.
    pub fn parked_sessions(&self) -> usize {
        self.shared.parked.plock().len()
    }

    /// Number of sessions successfully taken over by a resume handshake so far.
    pub fn resumed_sessions(&self) -> u64 {
        self.shared.resumed.load(Ordering::Relaxed)
    }

    /// Whether the server is draining (rejecting every new hello).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Failure injection: sever the socket of `session` mid-flight, as a crashed
    /// client or cut link would.  The bridge thread observes the dead socket and
    /// parks (or, with a zero [`TcpServerConfig::park_ttl`], reaps) the session;
    /// clean neighbours are unaffected.  Returns whether the session was connected.
    pub fn drop_session(&self, session: SessionId) -> bool {
        let streams = self.shared.streams.plock();
        match streams.get(&session.0) {
            Some(stream) => {
                let _ = stream.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }

    /// Drain-then-exit support: stop admitting hellos (fresh *and* resume), reap every
    /// parked session immediately, give in-flight connections up to `grace` to finish
    /// their current exchanges and disconnect, then sever the stragglers.  The server
    /// object stays alive (its `Drop` completes shutdown); this just quiesces it.
    pub fn drain(&self, grace: Duration) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let parked: Vec<u64> = {
            let mut parked = self.shared.parked.plock();
            parked.drain().map(|(session, _)| session).collect()
        };
        for session in parked {
            self.shared.reap(SessionId(session));
        }
        let started = Instant::now();
        while started.elapsed() < grace {
            if self.shared.streams.plock().is_empty() {
                return;
            }
            std::thread::sleep(POLL_TICK);
        }
        for stream in self.shared.streams.plock().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for TcpCloudServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        // Reap every parked session so the pool releases their engines.
        let parked: Vec<u64> = {
            let mut parked = self.shared.parked.plock();
            parked.drain().map(|(session, _)| session).collect()
        };
        for session in parked {
            self.shared.reap(SessionId(session));
        }
        // Sever every live connection; bridges observe the dead sockets and reap
        // (draining is set, so nothing re-parks).
        for stream in self.shared.streams.plock().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.sweeper_thread.take() {
            let _ = handle.join();
        }
        let bridges: Vec<JoinHandle<()>> = std::mem::take(&mut *self.bridge_threads.plock());
        for handle in bridges {
            let _ = handle.join();
        }
        // The pool itself (if privately owned) drops afterwards, joining its workers.
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    bridge_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection (or anything racing it)
        }
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("sectopk-s2d-conn".into())
            .spawn(move || serve_connection(stream, &shared));
        match spawned {
            Ok(handle) => bridge_threads.plock().push(handle),
            // Thread exhaustion: dropping the stream resets the connection, and a
            // well-behaved client retries under its policy.  The listener survives.
            Err(_) => continue,
        }
    }
}

/// Reap parked sessions whose TTL expired, freeing their ids and engines.
fn sweeper_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(SWEEP_TICK);
        let now = Instant::now();
        let expired: Vec<u64> = shared
            .parked
            .plock()
            .iter()
            .filter(|(_, deadline)| **deadline <= now)
            .map(|(session, _)| *session)
            .collect();
        for session in expired {
            if shared.parked.plock().remove(&session).is_some() {
                shared.reap(SessionId(session));
            }
        }
    }
}

/// Run the handshake, then bridge envelopes between one socket and the worker pool.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let reject = |code: RejectCode, reason: &str| {
        shared.metrics.reject(code).incr();
        let hello = ServerHello::Reject { code, reason: reason.into() };
        let _ = write_frame(&stream, &wire::to_bytes(&hello));
    };

    // --- Handshake -----------------------------------------------------------------
    let Ok(hello_bytes) = read_frame(&stream) else { return };
    let Ok(hello) = wire::from_bytes::<ClientHello>(&hello_bytes) else {
        reject(RejectCode::Malformed, "undecodable hello");
        return;
    };
    if hello.magic != TCP_MAGIC {
        reject(RejectCode::Malformed, "bad magic");
        return;
    }
    if hello.version != TCP_PROTOCOL_VERSION {
        reject(
            RejectCode::VersionMismatch,
            &format!(
                "protocol version mismatch: client v{}, server v{TCP_PROTOCOL_VERSION}",
                hello.version
            ),
        );
        return;
    }
    if shared.draining.load(Ordering::SeqCst) {
        reject(RejectCode::Draining, "server is draining");
        return;
    }

    let (session, conduit) = match hello.kind {
        HelloKind::Fresh { session, provision } => {
            match admit_fresh(shared, session, provision, &reject) {
                Some(admitted) => admitted,
                None => return,
            }
        }
        HelloKind::Resume(resume) => match admit_resume(shared, resume, &reject) {
            Some(admitted) => admitted,
            None => return,
        },
    };

    // Mint (or rotate) this session's resume token and register the live stream
    // before accepting, so drop_session / shutdown can always reach it.
    let token = mint_token(session.0, shared.token_nonce.fetch_add(1, Ordering::Relaxed));
    shared.tokens.plock().insert(session.0, token);
    {
        let mut streams = shared.streams.plock();
        match stream.try_clone() {
            Ok(clone) => {
                streams.insert(session.0, clone);
            }
            Err(_) => {
                drop(streams);
                shared.reap(session);
                return;
            }
        }
    }
    let accept = ServerHello::Accept {
        version: TCP_PROTOCOL_VERSION,
        session: session.0,
        resume_token: token,
    };
    if write_frame(&stream, &wire::to_bytes(&accept)).is_err() {
        shared.streams.plock().remove(&session.0);
        shared.reap(session);
        return;
    }
    shared.metrics.accepts.incr();

    bridge_loop(&stream, shared, session, &conduit);
}

/// Admit a fresh hello: capacity check, engine build, pool attach (with server-side id
/// assignment when the client proposed none).
fn admit_fresh(
    shared: &Shared,
    proposed: u64,
    provision: EngineProvision,
    reject: &dyn Fn(RejectCode, &str),
) -> Option<(SessionId, SessionConduit)> {
    let held = shared.streams.plock().len() + shared.parked.plock().len();
    if held >= shared.config.max_sessions {
        reject(RejectCode::Full, "server full");
        return None;
    }
    // The engine's intra-query worker count comes from SECTOPK_INTRA_PARALLEL in the
    // *server* process's environment (the provision wire format carries no worker
    // knob: worker count is a local resource decision, never protocol state).
    let mut engine = provision.build();
    if proposed != 0 {
        match shared.pool.attach(SessionId(proposed), engine) {
            Ok(conduit) => Some((SessionId(proposed), conduit)),
            Err(e) => {
                match e.reason {
                    AttachReason::InUse => reject(
                        RejectCode::SessionInUse,
                        &format!("session id {proposed} is already connected"),
                    ),
                    AttachReason::Full => reject(RejectCode::Full, "server full"),
                }
                None
            }
        }
    } else {
        loop {
            let candidate = SessionId(shared.next_session.fetch_add(1, Ordering::SeqCst));
            match shared.pool.attach(candidate, engine) {
                Ok(conduit) => return Some((candidate, conduit)),
                Err(e) if e.reason == AttachReason::InUse => engine = e.engine,
                Err(_) => {
                    reject(RejectCode::Full, "server full");
                    return None;
                }
            }
        }
    }
}

/// Admit a resume hello: verify the token, wait (briefly) for the dropped
/// connection's bridge to park the session, claim it, reattach to the pool and prune
/// the replay cache up to the client's acknowledged sequence number.
fn admit_resume(
    shared: &Shared,
    resume: ResumeHello,
    reject: &dyn Fn(RejectCode, &str),
) -> Option<(SessionId, SessionConduit)> {
    let session = SessionId(resume.session);
    let started = Instant::now();
    let claimed = loop {
        match shared.tokens.plock().get(&resume.session) {
            None => {
                reject(RejectCode::ResumeDenied, "unknown or expired session");
                return None;
            }
            Some(token) if *token != resume.resume_token => {
                reject(RejectCode::ResumeDenied, "resume token mismatch");
                return None;
            }
            Some(_) => {}
        }
        if shared.parked.plock().remove(&resume.session).is_some() {
            break true;
        }
        if !shared.streams.plock().contains_key(&resume.session)
            && !shared.pool.has_session(session)
        {
            // Not live, not parked, not in the pool: it was reaped between our token
            // check and now.
            reject(RejectCode::ResumeDenied, "session was reaped");
            return None;
        }
        if started.elapsed() >= RESUME_GRACE {
            break false;
        }
        // The old bridge is still on its way out (or genuinely alive): give it a tick.
        std::thread::sleep(POLL_TICK);
    };
    if !claimed {
        if shared.streams.plock().contains_key(&resume.session) {
            reject(RejectCode::SessionInUse, "session is still connected");
        } else {
            reject(RejectCode::ResumeDenied, "session was not parked");
        }
        return None;
    }
    let Some(conduit) = shared.pool.reattach(session) else {
        reject(RejectCode::ResumeDenied, "session engine is gone");
        return None;
    };
    shared.pool.prune_replay(session, resume.last_acked_seq);
    shared.resumed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.resumed.incr();
    Some((session, conduit))
}

/// Bridge envelopes between one accepted socket and the worker pool until the
/// connection ends, then park or reap the session.
fn bridge_loop(
    stream: &TcpStream,
    shared: &Arc<Shared>,
    session: SessionId,
    conduit: &SessionConduit,
) {
    // Strict request/reply: at most one envelope of this connection is in the pool at
    // any time, so the session's bounded reply queue never fills and a stalled socket
    // back-pressures right here instead of buffering.
    let mut clean_exit = false;
    'serve: while let Ok(incoming) = read_frame(stream) {
        let Ok(envelope) = Envelope::decode(&incoming) else { break };
        if envelope.session != session {
            // Cross-session injection: a connection may only speak for the session it
            // negotiated.  Kill the connection rather than forward.
            break;
        }
        let seq = envelope.seq;
        if envelope.frame.first() == Some(&frame::DISCONNECT) {
            if conduit.disconnect(incoming).is_err() {
                break;
            }
            if let Ok(reply) = conduit.from_server.recv() {
                let _ = write_frame(stream, &reply);
            }
            clean_exit = true; // the pool removed the session either way
            break;
        }
        match conduit.submit(incoming) {
            Ok(()) => {}
            Err(SubmitError::QueueFull) => {
                // Load shedding: answer with a typed overload error without touching
                // the engine — the client may safely re-send this sequence number.
                let shed = Envelope {
                    session,
                    seq,
                    frame: framed(
                        frame::RESPONSE,
                        &S2Response::Error(WireError::overloaded(format!(
                            "{session} inbox full, request shed"
                        ))),
                    ),
                };
                shared.metrics.sheds.incr();
                if write_frame(stream, &shed.encode()).is_err() {
                    break;
                }
                continue;
            }
            Err(SubmitError::ServerGone) => break,
        }
        // Ship the reply for *this* sequence number; discard stale replays that a
        // resumed session's previous life may have left in flight (a worker that
        // finished after the reattach delivers into our queue).
        loop {
            let Ok(reply_bytes) = conduit.from_server.recv() else { break 'serve };
            let stale = match Envelope::decode(&reply_bytes) {
                Ok(reply) => reply.seq != seq,
                Err(_) => true,
            };
            if stale {
                continue;
            }
            if write_frame(stream, &reply_bytes).is_err() {
                break 'serve;
            }
            break;
        }
    }

    shared.streams.plock().remove(&session.0);
    if clean_exit {
        shared.tokens.plock().remove(&session.0);
    } else if !shared.config.park_ttl.is_zero()
        && !shared.draining.load(Ordering::SeqCst)
        && shared.pool.has_session(session)
    {
        // Dirty exit with parking enabled: keep the session (engine, ledger, replay
        // cache, resume token) registered until a resume claims it or the TTL
        // expires.
        let deadline = Instant::now()
            .checked_add(shared.config.park_ttl)
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(365 * 24 * 3600));
        shared.parked.plock().insert(session.0, deadline);
        shared.metrics.parked.incr();
    } else {
        // The client vanished without a DISCONNECT and parking is off (or we are
        // draining): reap its session so the id frees up and the pool drops the
        // engine (ledger, pending state) with it.
        shared.reap(session);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Disconnect `session` from the pool on behalf of a dead client.  Eviction is
/// immediate (not queued through the inbox): every caller holds the invariant that no
/// new attachment of the id can exist yet, so the registered slot is the one to reap.
fn reap_session(pool: &MultiplexServer, session: SessionId) {
    pool.evict(session);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TransportErrorKind;
    use crate::multiplex::LinkProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};

    use crate::transport::ChannelTransport;

    fn master(seed: u64) -> MasterKeys {
        let mut rng = StdRng::seed_from_u64(seed);
        MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap()
    }

    fn provision_for(master: &MasterKeys, engine_seed: u64) -> EngineProvision {
        let mut rng = StdRng::seed_from_u64(engine_seed ^ 0xABCD);
        let (own_pk, _own_sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        EngineProvision::new(master.s2_view(), own_pk, engine_seed)
    }

    fn compare_request(master: &MasterKeys, value: i64, rng: &mut StdRng) -> S1Request {
        S1Request::Compare {
            blinded: vec![master.paillier_public.encrypt_i64(value, rng).unwrap()],
            context: "test".into(),
        }
    }

    /// A config whose dirty exits reap immediately (the pre-resumption behaviour).
    fn no_parking() -> TcpServerConfig {
        TcpServerConfig::default().with_park_ttl(Duration::ZERO)
    }

    /// A retry policy tuned for loopback tests: fast, bounded, deterministic.
    fn test_retry() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            deadline: Duration::from_secs(20),
        }
    }

    /// Raw fresh handshake, bypassing `TcpTransport` (so tests can die dirty or
    /// hand-craft resume claims).  Returns the stream, negotiated id and token.
    fn raw_fresh(
        addr: SocketAddr,
        session: u64,
        provision: EngineProvision,
    ) -> (TcpStream, u64, u64) {
        let stream = TcpStream::connect(addr).unwrap();
        let hello = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            kind: HelloKind::Fresh { session, provision },
        };
        write_frame(&stream, &wire::to_bytes(&hello)).unwrap();
        match wire::from_bytes::<ServerHello>(&read_frame(&stream).unwrap()).unwrap() {
            ServerHello::Accept { session, resume_token, .. } => (stream, session, resume_token),
            ServerHello::Reject { reason, .. } => panic!("fresh hello rejected: {reason}"),
        }
    }

    /// Raw resume handshake; returns the server's answer (and the stream on accept).
    fn raw_resume(
        addr: SocketAddr,
        session: u64,
        last_acked_seq: u64,
        resume_token: u64,
    ) -> (TcpStream, ServerHello) {
        let stream = TcpStream::connect(addr).unwrap();
        let hello = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            kind: HelloKind::Resume(ResumeHello { session, last_acked_seq, resume_token }),
        };
        write_frame(&stream, &wire::to_bytes(&hello)).unwrap();
        let answer = wire::from_bytes::<ServerHello>(&read_frame(&stream).unwrap()).unwrap();
        (stream, answer)
    }

    fn wait_for(mut condition: impl FnMut() -> bool) {
        for _ in 0..400 {
            if condition() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not reached within 2s");
    }

    #[test]
    fn loopback_session_matches_dedicated_channel_transport() {
        let master = master(41);
        let server = TcpCloudServer::bind("127.0.0.1:0", 2).unwrap();
        let mut tcp = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 99),
            TcpOptions::default(),
        )
        .unwrap();
        let mut channel = ChannelTransport::new(provision_for(&master, 99).build());

        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let a = tcp.round_trip(compare_request(&master, -4, &mut rng_a)).unwrap();
        let b = channel.round_trip(compare_request(&master, -4, &mut rng_b)).unwrap();
        assert_eq!(a, b, "same engine seed must answer identically over TCP");
        assert_eq!(tcp.metrics(), channel.metrics(), "metering must be transport-invariant");
        assert_eq!(tcp.s2_ledger().events(), channel.s2_ledger().events());
        assert_eq!(tcp.kind(), TransportKind::Tcp);
        assert_eq!(tcp.link(), LinkProfile::ideal());
    }

    #[test]
    fn server_assigns_session_ids_and_honours_proposals() {
        let master = master(42);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let assigned = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 1),
            TcpOptions::default(),
        )
        .unwrap();
        assert!(assigned.session().0 >= ASSIGNED_SESSION_BASE);

        let proposed = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 2),
            TcpOptions::default().with_session(SessionId(7)),
        )
        .unwrap();
        assert_eq!(proposed.session(), SessionId(7));
        assert_eq!(server.active_sessions(), 2);

        // A second client proposing the same id is refused, permanently.
        let err = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 3),
            TcpOptions::default().with_session(SessionId(7)),
        )
        .unwrap_err();
        match &err {
            ProtocolError::Transport(e) => {
                assert_eq!(e.kind, TransportErrorKind::Rejected);
                assert!(!err.is_retryable());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn disconnect_frees_the_session_and_its_id() {
        let master = master(43);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        {
            let mut t = TcpTransport::connect(
                server.local_addr(),
                provision_for(&master, 5),
                TcpOptions::default().with_session(SessionId(4)),
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            t.round_trip(compare_request(&master, 3, &mut rng)).unwrap();
            assert_eq!(server.active_sessions(), 1);
        }
        // Teardown is synchronous on the client side (drop waits for the ack), so the
        // bridge has already removed the id by the time the drop returns — poll only
        // for the bridge thread's own registry cleanup.  A *clean* disconnect never
        // parks, even with parking enabled.
        wait_for(|| server.active_sessions() == 0 && server.pool().active_sessions() == 0);
        assert_eq!(server.parked_sessions(), 0);
        let _t = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 6),
            TcpOptions::default().with_session(SessionId(4)),
        )
        .unwrap();
    }

    #[test]
    fn handshake_rejects_bad_magic_and_version() {
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let master = master(44);

        let refusal = |hello: &ClientHello| -> ServerHello {
            let stream = TcpStream::connect(server.local_addr()).unwrap();
            write_frame(&stream, &wire::to_bytes(hello)).unwrap();
            wire::from_bytes(&read_frame(&stream).unwrap()).unwrap()
        };

        let good = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            kind: HelloKind::Fresh { session: 0, provision: provision_for(&master, 1) },
        };
        let bad_magic = ClientHello { magic: "not-sectopk".into(), ..good.clone() };
        assert!(matches!(
            refusal(&bad_magic),
            ServerHello::Reject { code: RejectCode::Malformed, .. }
        ));
        let bad_version = ClientHello { version: TCP_PROTOCOL_VERSION + 1, ..good };
        assert!(matches!(
            refusal(&bad_version),
            ServerHello::Reject { code: RejectCode::VersionMismatch, reason }
                if reason.contains("version mismatch")
        ));
        assert_eq!(server.active_sessions(), 0);
    }

    #[test]
    fn admission_control_rejects_when_full_with_a_retryable_overload() {
        let master = master(45);
        let server = TcpCloudServer::serve_pool(
            "127.0.0.1:0",
            Arc::new(MultiplexServer::new(1)),
            TcpServerConfig::default().with_max_sessions(1),
        )
        .unwrap();
        let _first = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 1),
            TcpOptions::default(),
        )
        .unwrap();
        let err = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 2),
            TcpOptions::default(),
        )
        .unwrap_err();
        match &err {
            ProtocolError::Transport(e) => {
                assert_eq!(e.kind, TransportErrorKind::Overloaded);
                assert!(e.message.contains("server full"), "unexpected message {e:?}");
                assert!(err.is_retryable(), "a full server is a transient condition");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn connect_retries_with_backoff_then_fails_typed() {
        // Bind-then-drop gives an ephemeral port that is (almost surely) not listening.
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let master = master(46);
        let options = TcpOptions {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(1),
            ..TcpOptions::default()
        };
        let err = TcpTransport::connect(dead, provision_for(&master, 1), options).unwrap_err();
        match &err {
            ProtocolError::Transport(e) => {
                assert_eq!(e.kind, TransportErrorKind::Io);
                assert!(e.message.contains("after 3 attempts"), "unexpected message {e:?}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn severed_socket_without_parking_surfaces_transport_error_and_is_reaped() {
        let master = master(47);
        let server = TcpCloudServer::serve_pool(
            "127.0.0.1:0",
            Arc::new(MultiplexServer::new(1)),
            no_parking(),
        )
        .unwrap();
        let mut t = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 9),
            TcpOptions::default().with_session(SessionId(9)),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        t.round_trip(compare_request(&master, 1, &mut rng)).unwrap();

        assert!(server.drop_session(SessionId(9)));
        let err = t.round_trip(compare_request(&master, 1, &mut rng)).unwrap_err();
        assert!(err.is_retryable(), "a severed socket is transient: {err:?}");
        // Parking is off, so the bridge reaps the pool session; the id becomes
        // reusable.
        wait_for(|| server.pool().active_sessions() == 0);
        assert_eq!(server.parked_sessions(), 0);
        assert!(!server.drop_session(SessionId(9)), "already severed");
    }

    #[test]
    fn private_loopback_server_backs_a_self_contained_transport() {
        let master = master(48);
        let mut t =
            TcpTransport::private(provision_for(&master, 31), TcpOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let response = t.round_trip(compare_request(&master, -2, &mut rng)).unwrap();
        assert_eq!(response, S2Response::Signs(vec![-1]));
        assert_eq!(t.metrics().rounds, 1);
        assert!(!t.s2_ledger().is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected_cleanly() {
        let mut encoded = Vec::new();
        encoded.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let err = read_frame(&encoded[..]).unwrap_err();
        assert!(matches!(&err, ProtocolError::Transport(e) if e.message.contains("oversized")));
        assert!(!err.is_retryable(), "a corrupt frame is not transient");
    }

    #[test]
    fn backoff_is_capped_and_deterministically_jittered() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(100);
        for attempt in 0..64 {
            let d = backoff_delay(base, cap, attempt, 7);
            assert!(d <= cap, "attempt {attempt} exceeded the cap: {d:?}");
            let uncapped_floor = base.saturating_mul(1 << attempt.min(20)).min(cap).mul_f64(0.5);
            assert!(d >= uncapped_floor, "attempt {attempt} under 50% jitter floor: {d:?}");
            assert_eq!(
                d,
                backoff_delay(base, cap, attempt, 7),
                "same seed must give the same jitter"
            );
        }
        // Huge attempt counts must not overflow.
        let _ = backoff_delay(Duration::from_secs(1), Duration::ZERO, u32::MAX, 1);
        assert_eq!(backoff_delay(Duration::ZERO, cap, 3, 7), Duration::ZERO);
    }

    #[test]
    fn uncapped_backoff_is_monotone_and_saturates_instead_of_wrapping() {
        // Regression: the doubling used to run in u32 `Duration::saturating_mul`
        // after a 20-bit shift clamp, so an uncapped policy stopped growing early,
        // and a nanosecond-domain overflow could wrap to a tiny delay.  Uncapped
        // delays must now be monotone nondecreasing across the whole attempt range.
        let base = Duration::from_millis(10);
        let mut prev = Duration::ZERO;
        for attempt in 0..=63 {
            let d = backoff_delay(base, Duration::ZERO, attempt, 7);
            assert!(
                d >= prev,
                "uncapped backoff regressed at attempt {attempt}: {d:?} after {prev:?}"
            );
            prev = d;
        }
        // Far past any representable doubling the delay pins at the saturated
        // maximum; it must never fall back below an earlier attempt's delay.
        let huge = backoff_delay(Duration::from_secs(1), Duration::ZERO, u32::MAX, 1);
        let earlier = backoff_delay(Duration::from_secs(1), Duration::ZERO, 40, 1);
        assert!(huge >= earlier, "saturated backoff wrapped: {huge:?} < {earlier:?}");
    }

    #[test]
    fn transparent_resume_recovers_a_mid_flight_drop_byte_identically() {
        let master = master(49);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let mut tcp = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 77),
            TcpOptions::default().with_retry(test_retry()),
        )
        .unwrap();
        let mut channel = ChannelTransport::new(provision_for(&master, 77).build());

        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let a1 = tcp.round_trip(compare_request(&master, 5, &mut rng_a)).unwrap();
        let b1 = channel.round_trip(compare_request(&master, 5, &mut rng_b)).unwrap();
        assert_eq!(a1, b1);

        // Sever the connection server-side, mid-session.  The next exchange hits a
        // dead socket, reconnects, resumes and re-sends — invisibly to the caller.
        assert!(server.drop_session(tcp.session()));
        let a2 = tcp.round_trip(compare_request(&master, -6, &mut rng_a)).unwrap();
        let b2 = channel.round_trip(compare_request(&master, -6, &mut rng_b)).unwrap();
        assert_eq!(a2, b2, "the resumed exchange must answer byte-identically");
        assert_eq!(tcp.reconnects(), 1);
        assert_eq!(server.resumed_sessions(), 1);
        assert_eq!(
            tcp.metrics(),
            channel.metrics(),
            "a recovery retransmit must not be re-metered"
        );
        assert_eq!(
            tcp.s2_ledger().events(),
            channel.s2_ledger().events(),
            "the resumed session's ledger must match an uninterrupted run"
        );
    }

    #[test]
    fn drop_after_send_fault_is_answered_from_the_replay_cache() {
        let master = master(50);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        // Frame 2 is written, then the connection is severed before its reply: the
        // server executes it exactly once and the resend replays the cached reply.
        let faults = FaultPlan::none().with_drop_after_send_every(2);
        let mut tcp = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 88),
            TcpOptions::default().with_retry(test_retry()).with_faults(faults),
        )
        .unwrap();
        let mut channel = ChannelTransport::new(provision_for(&master, 88).build());

        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        for value in [3, -9] {
            let a = tcp.round_trip(compare_request(&master, value, &mut rng_a)).unwrap();
            let b = channel.round_trip(compare_request(&master, value, &mut rng_b)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(tcp.reconnects(), 1);
        assert_eq!(
            server.pool().replayed_replies(),
            1,
            "the faulted frame must be served from the cache, not re-executed"
        );
        assert_eq!(tcp.s2_ledger().events(), channel.s2_ledger().events());
        assert_eq!(tcp.metrics(), channel.metrics());
    }

    #[test]
    fn drop_before_send_fault_reexecutes_exactly_once() {
        let master = master(51);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let faults = FaultPlan::none().with_drop_before_send_every(2);
        let mut tcp = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 89),
            TcpOptions::default().with_retry(test_retry()).with_faults(faults),
        )
        .unwrap();
        let mut channel = ChannelTransport::new(provision_for(&master, 89).build());

        let mut rng_a = StdRng::seed_from_u64(22);
        let mut rng_b = StdRng::seed_from_u64(22);
        for value in [1, 2, 3, 4] {
            let a = tcp.round_trip(compare_request(&master, value, &mut rng_a)).unwrap();
            let b = channel.round_trip(compare_request(&master, value, &mut rng_b)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(tcp.reconnects(), 2, "frames 2 and 4 are dropped before send");
        assert_eq!(
            server.pool().replayed_replies(),
            0,
            "a never-delivered request has nothing cached to replay"
        );
        assert_eq!(tcp.s2_ledger().events(), channel.s2_ledger().events());
        assert_eq!(tcp.metrics(), channel.metrics());
    }

    #[test]
    fn resume_with_a_bad_token_is_denied() {
        let master = master(52);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let (stream, session, token) = raw_fresh(server.local_addr(), 0, provision_for(&master, 1));
        drop(stream); // dirty exit: no DISCONNECT
        wait_for(|| server.parked_sessions() == 1);

        let (_s, answer) = raw_resume(server.local_addr(), session, 0, token.wrapping_add(1));
        assert!(matches!(
            answer,
            ServerHello::Reject { code: RejectCode::ResumeDenied, reason }
                if reason.contains("token mismatch")
        ));
        // The denied claim leaves the session parked for the rightful owner.
        assert_eq!(server.parked_sessions(), 1);
        let (_s2, answer) = raw_resume(server.local_addr(), session, 0, token);
        assert!(matches!(answer, ServerHello::Accept { .. }));
        assert_eq!(server.resumed_sessions(), 1);
    }

    #[test]
    fn resume_of_an_unknown_session_is_denied() {
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let (_s, answer) = raw_resume(server.local_addr(), 424242, 0, 1);
        assert!(matches!(answer, ServerHello::Reject { code: RejectCode::ResumeDenied, .. }));
    }

    #[test]
    fn two_clients_racing_to_resume_admit_exactly_one() {
        let master = master(53);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let (stream, session, token) = raw_fresh(server.local_addr(), 0, provision_for(&master, 1));
        drop(stream);
        wait_for(|| server.parked_sessions() == 1);

        let addr = server.local_addr();
        let racers: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || raw_resume(addr, session, 0, token)))
            .collect();
        let answers: Vec<ServerHello> = racers.into_iter().map(|h| h.join().unwrap().1).collect();
        let accepts = answers.iter().filter(|a| matches!(a, ServerHello::Accept { .. })).count();
        assert_eq!(accepts, 1, "exactly one racer may claim the parked session: {answers:?}");
        assert_eq!(server.resumed_sessions(), 1);
    }

    #[test]
    fn park_ttl_expiry_reaps_the_session_and_frees_its_id() {
        let master = master(54);
        let server = TcpCloudServer::serve_pool(
            "127.0.0.1:0",
            Arc::new(MultiplexServer::new(1)),
            TcpServerConfig::default().with_park_ttl(Duration::from_millis(50)),
        )
        .unwrap();
        let (stream, session, token) =
            raw_fresh(server.local_addr(), 21, provision_for(&master, 1));
        drop(stream);
        wait_for(|| server.parked_sessions() == 1);
        assert_eq!(server.pool().active_sessions(), 1, "parked sessions stay in the pool");

        wait_for(|| server.parked_sessions() == 0 && server.pool().active_sessions() == 0);
        // The expired session is gone: its resume is denied and its id is reusable.
        let (_s, answer) = raw_resume(server.local_addr(), session, 0, token);
        assert!(matches!(answer, ServerHello::Reject { code: RejectCode::ResumeDenied, .. }));
        let (_s2, reused, _t) = raw_fresh(server.local_addr(), 21, provision_for(&master, 2));
        assert_eq!(reused, 21);
    }

    #[test]
    fn draining_server_rejects_hellos_with_a_typed_overload() {
        let master = master(55);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        server.drain(Duration::ZERO);
        assert!(server.is_draining());
        let err = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 1),
            TcpOptions::default(),
        )
        .unwrap_err();
        match &err {
            ProtocolError::Transport(e) => {
                assert_eq!(e.kind, TransportErrorKind::Overloaded);
                assert!(e.message.contains("draining"), "unexpected message {e:?}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn drain_reaps_parked_sessions_immediately() {
        let master = master(56);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let (stream, _session, _token) =
            raw_fresh(server.local_addr(), 0, provision_for(&master, 1));
        drop(stream);
        wait_for(|| server.parked_sessions() == 1);
        server.drain(Duration::from_millis(200));
        assert_eq!(server.parked_sessions(), 0);
        wait_for(|| server.pool().active_sessions() == 0);
    }
}
