//! Real-socket transport: the crypto cloud S2 as a networked process.
//!
//! The other three transports keep both clouds in one process; this module makes the
//! §3.2 deployment literal.  A [`TcpCloudServer`] (the `sectopk-s2d` binary) listens on
//! a socket and feeds accepted connections into a [`crate::multiplex::MultiplexServer`]
//! worker pool; a [`TcpTransport`] is the S1 side of one connection, speaking the *same*
//! session-tagged [`Envelope`]s as the multiplexed transport, length-prefix-framed onto
//! the stream:
//!
//! ```text
//!    S1 process                                        S2 process (sectopk-s2d)
//!   ┌──────────────┐   frame = u32 LE length ‖ bytes  ┌────────────────────────────┐
//!   │ TcpTransport │ ───────────────────────────────▶ │ accept loop ─ bridge thread │
//!   │  (one conn = │   bytes = Envelope{session,seq,  │      │ per connection       │
//!   │  one session)│            tag ‖ wire payload}   │      ▼                      │
//!   │              │ ◀─────────────────────────────── │ MultiplexServer worker pool │
//!   └──────────────┘                                  └────────────────────────────┘
//! ```
//!
//! # Connection lifecycle
//!
//! 1. **Connect** with bounded retry and exponential backoff ([`TcpOptions`]).
//! 2. **Handshake**: the client sends a `ClientHello` — magic, protocol version
//!    ([`TCP_PROTOCOL_VERSION`]), a proposed session id (0 = server assigns), and the
//!    [`EngineProvision`] that boots its S2 engine.  The server answers accept (with
//!    the negotiated id) or reject (version mismatch, id in use, server full).
//! 3. **Serve**: strict request/reply — the bridge thread forwards each envelope to the
//!    worker pool and ships the session's reply back.  At most one frame per connection
//!    is in flight, and the pool's bounded per-session reply queues give
//!    per-connection backpressure.
//! 4. **Teardown**: the client's `Drop` ships a `DISCONNECT` frame and blocks for the
//!    ack, exactly like the multiplexed transport.  A connection that dies without the
//!    handshake (socket error, EOF, cross-session injection) is *reaped*: the bridge
//!    disconnects the session from the pool so its id frees up and clean neighbours
//!    keep being served.
//!
//! # Metering
//!
//! Byte accounting excludes all framing — the 4-byte length prefix, the 16-byte
//! envelope header and the tag byte — so [`ChannelMetrics`] stays byte-identical with
//! the other three transports (asserted by `tests/transport_equivalence.rs`).  Errors
//! of the socket itself (timeout, reset, EOF) surface as
//! [`ProtocolError::Transport`]; a provisioning payload this size is key material, so
//! production deployments would wrap the socket in TLS — the handshake is factored so
//! that swap stays local to this module.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::channel::{ChannelMetrics, Direction};
use crate::engine::EngineProvision;
use crate::error::{ProtocolError, Result};
use crate::ledger::LeakageLedger;
use crate::multiplex::{Envelope, MultiplexServer, SessionId};
use crate::transport::TransportKind;
use crate::transport::{frame, framed, response_or_error, S1Request, S2Response, Transport};
use crate::wire;

/// Version of the TCP handshake and framing.  Bumped on any incompatible change; the
/// server rejects hellos carrying a different version.
pub const TCP_PROTOCOL_VERSION: u64 = 1;

/// Magic string opening every [`ClientHello`]; lets the server reject a stray client
/// of some other protocol before trying to decode key material.
const TCP_MAGIC: &str = "sectopk";

/// Upper bound on one length-prefixed frame.  Generous for the protocol's largest
/// batched exchanges while turning a corrupted length prefix into a clean transport
/// error instead of an attempted multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Session ids the server assigns start here, far above anything clients propose
/// densely, so negotiated and proposed ids never collide by accident.
const ASSIGNED_SESSION_BASE: u64 = 1 << 32;

// ====================================================================================
// Length-prefixed framing
// ====================================================================================

fn transport_io_error(context: &str, e: &std::io::Error) -> ProtocolError {
    use std::io::ErrorKind;
    let detail = match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => "timed out".to_string(),
        ErrorKind::UnexpectedEof => "connection closed".to_string(),
        _ => e.to_string(),
    };
    ProtocolError::transport(format!("{context}: {detail}"))
}

/// Write one `u32 LE length ‖ bytes` frame in a single buffer (one syscall in the
/// common case, and no interleaving hazard if a writer is ever shared).
fn write_frame(mut w: impl Write, bytes: &[u8]) -> Result<()> {
    debug_assert!(bytes.len() <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    w.write_all(&out).map_err(|e| transport_io_error("writing frame", &e))?;
    w.flush().map_err(|e| transport_io_error("flushing frame", &e))
}

/// Read one length-prefixed frame.
fn read_frame(mut r: impl Read) -> Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(|e| transport_io_error("reading frame header", &e))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::transport(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| transport_io_error("reading frame body", &e))?;
    Ok(buf)
}

// ====================================================================================
// Handshake messages
// ====================================================================================

/// First frame on every connection: identifies the protocol, negotiates the session id
/// and provisions the session's S2 engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ClientHello {
    /// Must be [`TCP_MAGIC`].
    magic: String,
    /// Must be [`TCP_PROTOCOL_VERSION`].
    version: u64,
    /// Proposed session id; 0 asks the server to assign one.
    session: u64,
    /// Everything the server needs to boot this session's [`crate::engine::S2Engine`].
    provision: EngineProvision,
}

/// The server's answer to a [`ClientHello`].
#[derive(Clone, Debug, Serialize, Deserialize)]
enum ServerHello {
    /// Connection admitted under the negotiated session id.
    Accept {
        /// The server's protocol version (equals the client's on accept).
        version: u64,
        /// The session id all subsequent envelopes must carry.
        session: u64,
    },
    /// Connection refused; the socket closes after this frame.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
}

// ====================================================================================
// Client options
// ====================================================================================

/// Connection policy of a [`TcpTransport`]: bounded connect retry with exponential
/// backoff, socket timeouts, and an optional explicit session id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpOptions {
    /// Connection attempts before giving up (at least 1).
    pub connect_attempts: u32,
    /// Delay after the first failed attempt; doubles per retry.
    pub connect_backoff: Duration,
    /// Socket read timeout; a server silent for longer yields
    /// [`ProtocolError::Transport`].
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Session id to propose; `None` lets the server assign one.
    pub session: Option<SessionId>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(25),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            session: None,
        }
    }
}

impl TcpOptions {
    /// Propose an explicit session id instead of letting the server assign one.
    pub fn with_session(mut self, session: SessionId) -> Self {
        self.session = Some(session);
        self
    }

    /// Set the connect retry budget.
    pub fn with_connect_attempts(mut self, attempts: u32) -> Self {
        self.connect_attempts = attempts.max(1);
        self
    }

    /// Set both socket timeouts.
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }
}

// ====================================================================================
// Client transport
// ====================================================================================

/// The S1 side of one TCP connection to a [`TcpCloudServer`]: a [`Transport`] whose
/// envelopes travel length-prefix-framed over a real socket.
pub struct TcpTransport {
    stream: TcpStream,
    peer: SocketAddr,
    session: SessionId,
    seq: u64,
    metrics: ChannelMetrics,
    /// Set once teardown (or an unrecoverable socket error) happened, so `Drop` does
    /// not try to disconnect twice or over a dead socket.
    disconnected: bool,
    /// When the transport was created through [`TransportKind::Tcp`] rather than by
    /// connecting to an explicit listener, it owns a private loopback server that must
    /// live (and shut down) with it.
    private_server: Option<Box<TcpCloudServer>>,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.peer)
            .field("session", &self.session)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl TcpTransport {
    /// Connect to a [`TcpCloudServer`] at `addr`, retrying with exponential backoff,
    /// and run the handshake that provisions this session's S2 engine.
    pub fn connect(
        addr: impl ToSocketAddrs,
        provision: EngineProvision,
        options: TcpOptions,
    ) -> Result<Self> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ProtocolError::transport(format!("resolving S2 address: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ProtocolError::transport("S2 address resolved to nothing"));
        }
        let stream = Self::connect_with_retry(&addrs, &options)?;
        let peer =
            stream.peer_addr().map_err(|e| transport_io_error("reading peer address", &e))?;
        stream.set_nodelay(true).map_err(|e| transport_io_error("configuring socket", &e))?;
        stream
            .set_read_timeout(Some(options.read_timeout))
            .map_err(|e| transport_io_error("configuring socket", &e))?;
        stream
            .set_write_timeout(Some(options.write_timeout))
            .map_err(|e| transport_io_error("configuring socket", &e))?;

        let hello = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            session: options.session.map_or(0, |s| s.0),
            provision,
        };
        write_frame(&stream, &wire::to_bytes(&hello))?;
        let reply = read_frame(&stream)?;
        let reply: ServerHello = wire::from_bytes(&reply)
            .map_err(|e| ProtocolError::transport(format!("undecodable server hello: {e}")))?;
        let session = match reply {
            ServerHello::Accept { version, session } => {
                if version != TCP_PROTOCOL_VERSION {
                    return Err(ProtocolError::transport(format!(
                        "server speaks protocol v{version}, client v{TCP_PROTOCOL_VERSION}"
                    )));
                }
                SessionId(session)
            }
            ServerHello::Reject { reason } => {
                return Err(ProtocolError::transport(format!(
                    "S2 at {peer} refused the connection: {reason}"
                )));
            }
        };
        Ok(TcpTransport {
            stream,
            peer,
            session,
            seq: 0,
            metrics: ChannelMetrics::new(),
            disconnected: false,
            private_server: None,
        })
    }

    /// A self-contained TCP transport: spins up a private single-worker loopback
    /// [`TcpCloudServer`] on an ephemeral port serving only this session.  This is what
    /// `SECTOPK_TRANSPORT=tcp` uses, so the whole test suite can exercise the real
    /// socket path without managing a server process.
    pub fn private(provision: EngineProvision, options: TcpOptions) -> Result<Self> {
        let server = TcpCloudServer::bind("127.0.0.1:0", 1)
            .map_err(|e| ProtocolError::transport(format!("binding loopback S2: {e}")))?;
        let mut transport = Self::connect(server.local_addr(), provision, options)?;
        transport.private_server = Some(Box::new(server));
        Ok(transport)
    }

    fn connect_with_retry(addrs: &[SocketAddr], options: &TcpOptions) -> Result<TcpStream> {
        let attempts = options.connect_attempts.max(1);
        let mut backoff = options.connect_backoff;
        let mut last_error = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            for addr in addrs {
                match TcpStream::connect(addr) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last_error = format!("{addr}: {e}"),
                }
            }
        }
        Err(ProtocolError::transport(format!(
            "connecting to S2 failed after {attempts} attempts: {last_error}"
        )))
    }

    /// The session id negotiated at connect time.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The server address this transport is connected to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Ship one frame under sequence number `seq` and block for the reply, verifying
    /// the envelope echo.  `&TcpStream` implements `Read`/`Write`, which is what lets
    /// the `&self` control plane (`s2_ledger`) share this path with `round_trip`.
    fn exchange_with_seq(&self, seq: u64, frame_bytes: Vec<u8>) -> Result<Envelope> {
        let envelope = Envelope { session: self.session, seq, frame: frame_bytes };
        write_frame(&self.stream, &envelope.encode())?;
        let incoming = read_frame(&self.stream)?;
        let reply = Envelope::decode(&incoming)?;
        if reply.session != self.session || reply.seq != seq {
            return Err(ProtocolError::transport(format!(
                "envelope echo mismatch: sent {}#{seq}, got {}#{}",
                self.session, reply.session, reply.seq
            )));
        }
        Ok(reply)
    }

    /// Ship one protocol frame under the next sequence number.
    fn exchange(&mut self, frame_bytes: Vec<u8>) -> Result<Envelope> {
        self.seq += 1;
        let reply = self.exchange_with_seq(self.seq, frame_bytes);
        if reply.is_err() {
            // The socket (or the strict request/reply pairing) is broken; don't try to
            // run a disconnect handshake over it during drop.
            self.disconnected = true;
        }
        reply
    }

    /// One unmetered control-plane exchange (ledger fetch / reset) under the reserved
    /// sequence number 0.
    fn control(&self, tag: u8, expected_reply: u8) -> Result<Vec<u8>> {
        let reply = self.exchange_with_seq(0, vec![tag])?;
        match reply.frame.split_first() {
            Some((&t, payload)) if t == expected_reply => Ok(payload.to_vec()),
            _ => Err(ProtocolError::transport("unexpected control reply from S2")),
        }
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        let out_frame = framed(frame::REQUEST, &request);
        // Metered size = wire payload only; the tag byte, the 16-byte envelope header
        // and the 4-byte length prefix are framing, keeping metrics identical across
        // all four transports.
        self.metrics.record(Direction::S1ToS2, out_frame.len() - 1, request.ciphertext_count());
        let reply = self.exchange(out_frame)?;
        let payload = match reply.frame.split_first() {
            Some((&frame::RESPONSE, payload)) => payload,
            _ => return Err(ProtocolError::transport("unexpected reply frame from S2")),
        };
        let response: S2Response = wire::from_bytes(payload)
            .map_err(|e| ProtocolError::transport(format!("undecodable response: {e}")))?;
        self.metrics.record(Direction::S2ToS1, payload.len(), response.ciphertext_count());
        response_or_error(response)
    }

    fn metrics(&self) -> ChannelMetrics {
        self.metrics
    }

    fn reset_metrics(&mut self) {
        self.metrics = ChannelMetrics::new();
    }

    fn s2_ledger(&self) -> LeakageLedger {
        let payload = self
            .control(frame::FETCH_LEDGER, frame::LEDGER)
            .expect("S2 server unavailable while fetching the session ledger");
        wire::from_bytes(&payload).expect("undecodable S2 ledger snapshot")
    }

    fn reset_s2(&mut self) {
        self.control(frame::RESET, frame::RESET_DONE)
            .expect("S2 server unavailable while resetting the session");
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if !self.disconnected {
            // Graceful teardown: ship DISCONNECT and block for the ack so the session
            // id is free for reuse the moment this drop returns; best effort if the
            // server is already gone.
            let disconnect = Envelope {
                session: self.session,
                seq: self.seq + 1,
                frame: vec![frame::DISCONNECT],
            };
            if write_frame(&self.stream, &disconnect.encode()).is_ok() {
                let _ = read_frame(&self.stream);
            }
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        // A private server (if any) drops afterwards, joining its threads.
    }
}

// ====================================================================================
// Server
// ====================================================================================

/// Admission and pool policy of a [`TcpCloudServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpServerConfig {
    /// Maximum concurrently connected sessions; further hellos are rejected with
    /// "server full".
    pub max_sessions: usize,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig { max_sessions: 1024 }
    }
}

/// Per-connection bookkeeping the listener keeps for failure injection and teardown.
struct ConnRegistry {
    /// Session id → the connection's stream (a `try_clone`), so the server can sever
    /// one session ([`TcpCloudServer::drop_session`]) or all of them on shutdown.
    streams: Mutex<HashMap<u64, TcpStream>>,
}

/// The crypto cloud S2 as a network listener: an accept loop feeding per-connection
/// bridge threads into a shared [`MultiplexServer`] worker pool.  This is the engine of
/// the `sectopk-s2d` binary; tests bind it on a loopback ephemeral port.
pub struct TcpCloudServer {
    local_addr: SocketAddr,
    pool: Arc<MultiplexServer>,
    config: TcpServerConfig,
    shutdown: Arc<AtomicBool>,
    conns: Arc<ConnRegistry>,
    accept_thread: Option<JoinHandle<()>>,
    bridge_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl fmt::Debug for TcpCloudServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpCloudServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.pool.workers())
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

impl TcpCloudServer {
    /// Bind a listener at `addr` with its own `workers`-thread S2 pool and default
    /// admission policy.  `"127.0.0.1:0"` binds an ephemeral loopback port (read it
    /// back with [`Self::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> std::io::Result<Self> {
        Self::serve_pool(addr, Arc::new(MultiplexServer::new(workers)), TcpServerConfig::default())
    }

    /// Bind a listener at `addr` feeding an existing (possibly shared) worker pool —
    /// the path `QueryServer::listen` uses so networked and in-process sessions are
    /// served by the same S2 workers.
    pub fn serve_pool(
        addr: impl ToSocketAddrs,
        pool: Arc<MultiplexServer>,
        config: TcpServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnRegistry { streams: Mutex::new(HashMap::new()) });
        let bridge_threads = Arc::new(Mutex::new(Vec::new()));
        let next_session = Arc::new(AtomicU64::new(ASSIGNED_SESSION_BASE));

        let accept_thread = {
            let pool = Arc::clone(&pool);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let bridge_threads = Arc::clone(&bridge_threads);
            std::thread::Builder::new()
                .name("sectopk-s2d-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &pool,
                        config,
                        &shutdown,
                        &conns,
                        &bridge_threads,
                        &next_session,
                    );
                })
                .expect("spawn accept thread")
        };
        Ok(TcpCloudServer {
            local_addr,
            pool,
            config,
            shutdown,
            conns,
            accept_thread: Some(accept_thread),
            bridge_threads,
        })
    }

    /// The bound listening address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The worker pool serving this listener's sessions.
    pub fn pool(&self) -> &Arc<MultiplexServer> {
        &self.pool
    }

    /// The admission policy this listener runs under.
    pub fn config(&self) -> TcpServerConfig {
        self.config
    }

    /// Number of currently connected TCP sessions.
    pub fn active_sessions(&self) -> usize {
        self.conns.streams.lock().expect("connection registry poisoned").len()
    }

    /// Failure injection: sever the socket of `session` mid-flight, as a crashed
    /// client or cut link would.  The bridge thread observes the dead socket and reaps
    /// the session from the pool; clean neighbours are unaffected.  Returns whether the
    /// session was connected.
    pub fn drop_session(&self, session: SessionId) -> bool {
        let streams = self.conns.streams.lock().expect("connection registry poisoned");
        match streams.get(&session.0) {
            Some(stream) => {
                let _ = stream.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }
}

impl Drop for TcpCloudServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Sever every live connection; bridges observe the dead sockets and reap.
        for stream in self.conns.streams.lock().expect("connection registry poisoned").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let bridges: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.bridge_threads.lock().expect("bridge registry poisoned"));
        for handle in bridges {
            let _ = handle.join();
        }
        // The pool itself (if privately owned) drops afterwards, joining its workers.
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    pool: &Arc<MultiplexServer>,
    config: TcpServerConfig,
    shutdown: &Arc<AtomicBool>,
    conns: &Arc<ConnRegistry>,
    bridge_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    next_session: &Arc<AtomicU64>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection (or anything racing it)
        }
        let pool = Arc::clone(pool);
        let conns = Arc::clone(conns);
        let next_session = Arc::clone(next_session);
        let handle = std::thread::Builder::new()
            .name("sectopk-s2d-conn".into())
            .spawn(move || serve_connection(stream, &pool, config, &conns, &next_session))
            .expect("spawn connection bridge thread");
        bridge_threads.lock().expect("bridge registry poisoned").push(handle);
    }
}

/// Run the handshake, then bridge envelopes between one socket and the worker pool.
fn serve_connection(
    stream: TcpStream,
    pool: &MultiplexServer,
    config: TcpServerConfig,
    conns: &ConnRegistry,
    next_session: &AtomicU64,
) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let reject = |reason: &str| {
        let hello = ServerHello::Reject { reason: reason.into() };
        let _ = write_frame(&stream, &wire::to_bytes(&hello));
    };

    // --- Handshake -----------------------------------------------------------------
    let Ok(hello_bytes) = read_frame(&stream) else { return };
    let Ok(hello) = wire::from_bytes::<ClientHello>(&hello_bytes) else {
        reject("undecodable hello");
        return;
    };
    if hello.magic != TCP_MAGIC {
        reject("bad magic");
        return;
    }
    if hello.version != TCP_PROTOCOL_VERSION {
        reject(&format!(
            "protocol version mismatch: client v{}, server v{TCP_PROTOCOL_VERSION}",
            hello.version
        ));
        return;
    }
    {
        let streams = conns.streams.lock().expect("connection registry poisoned");
        if streams.len() >= config.max_sessions {
            reject("server full");
            return;
        }
    }

    // Negotiate the session id: try the client's proposal (if any), else assign from
    // the server-reserved range; `attach` hands the engine back on a collision.
    // The engine's intra-query worker count comes from SECTOPK_INTRA_PARALLEL in the
    // *server* process's environment (the provision wire format carries no worker
    // knob: worker count is a local resource decision, never protocol state).
    let mut engine = hello.provision.build();
    let (session, conduit) = if hello.session != 0 {
        match pool.attach(SessionId(hello.session), engine) {
            Ok(conduit) => (SessionId(hello.session), conduit),
            Err(_) => {
                reject(&format!("session id {} is already connected", hello.session));
                return;
            }
        }
    } else {
        loop {
            let candidate = SessionId(next_session.fetch_add(1, Ordering::SeqCst));
            match pool.attach(candidate, engine) {
                Ok(conduit) => break (candidate, conduit),
                Err(returned) => engine = returned,
            }
        }
    };

    {
        let mut streams = conns.streams.lock().expect("connection registry poisoned");
        match stream.try_clone() {
            Ok(clone) => {
                streams.insert(session.0, clone);
            }
            Err(_) => {
                drop(streams);
                reap_session(pool, session);
                return;
            }
        }
    }
    let accept = ServerHello::Accept { version: TCP_PROTOCOL_VERSION, session: session.0 };
    if write_frame(&stream, &wire::to_bytes(&accept)).is_err() {
        conns.streams.lock().expect("connection registry poisoned").remove(&session.0);
        reap_session(pool, session);
        return;
    }

    // --- Bridge loop ----------------------------------------------------------------
    // Strict request/reply: at most one envelope of this connection is in the pool at
    // any time, so the session's bounded reply queue never fills and a stalled socket
    // back-pressures right here instead of buffering.
    let mut clean_exit = false;
    while let Ok(incoming) = read_frame(&stream) {
        let Ok(envelope) = Envelope::decode(&incoming) else { break };
        if envelope.session != session {
            // Cross-session injection: a connection may only speak for the session it
            // negotiated.  Kill the connection rather than forward.
            break;
        }
        let is_disconnect = envelope.frame.first() == Some(&frame::DISCONNECT);
        if conduit.to_server.send(incoming).is_err() {
            break; // the pool is gone
        }
        let Ok(reply) = conduit.from_server.recv() else { break };
        if write_frame(&stream, &reply).is_err() {
            if is_disconnect {
                clean_exit = true; // the pool already removed the session
            }
            break;
        }
        if is_disconnect {
            clean_exit = true;
            break;
        }
    }

    conns.streams.lock().expect("connection registry poisoned").remove(&session.0);
    if !clean_exit {
        // The client vanished without a DISCONNECT: reap its session so the id frees
        // up and the pool drops the engine (ledger, pending state) with it.
        reap_session(pool, session);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Disconnect `session` from the pool on behalf of a dead client.
fn reap_session(pool: &MultiplexServer, session: SessionId) {
    let disconnect = Envelope { session, seq: 0, frame: vec![frame::DISCONNECT] };
    // The ack lands in the session's reply queue, which drops with the conduit.
    let _ = pool.inbox().send(disconnect.encode());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplex::LinkProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};

    use crate::transport::ChannelTransport;

    fn master(seed: u64) -> MasterKeys {
        let mut rng = StdRng::seed_from_u64(seed);
        MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap()
    }

    fn provision_for(master: &MasterKeys, engine_seed: u64) -> EngineProvision {
        let mut rng = StdRng::seed_from_u64(engine_seed ^ 0xABCD);
        let (own_pk, _own_sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        EngineProvision::new(master.s2_view(), own_pk, engine_seed)
    }

    fn compare_request(master: &MasterKeys, value: i64, rng: &mut StdRng) -> S1Request {
        S1Request::Compare {
            blinded: vec![master.paillier_public.encrypt_i64(value, rng).unwrap()],
            context: "test".into(),
        }
    }

    #[test]
    fn loopback_session_matches_dedicated_channel_transport() {
        let master = master(41);
        let server = TcpCloudServer::bind("127.0.0.1:0", 2).unwrap();
        let mut tcp = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 99),
            TcpOptions::default(),
        )
        .unwrap();
        let mut channel = ChannelTransport::new(provision_for(&master, 99).build());

        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let a = tcp.round_trip(compare_request(&master, -4, &mut rng_a)).unwrap();
        let b = channel.round_trip(compare_request(&master, -4, &mut rng_b)).unwrap();
        assert_eq!(a, b, "same engine seed must answer identically over TCP");
        assert_eq!(tcp.metrics(), channel.metrics(), "metering must be transport-invariant");
        assert_eq!(tcp.s2_ledger().events(), channel.s2_ledger().events());
        assert_eq!(tcp.kind(), TransportKind::Tcp);
        assert_eq!(tcp.link(), LinkProfile::ideal());
    }

    #[test]
    fn server_assigns_session_ids_and_honours_proposals() {
        let master = master(42);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let assigned = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 1),
            TcpOptions::default(),
        )
        .unwrap();
        assert!(assigned.session().0 >= ASSIGNED_SESSION_BASE);

        let proposed = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 2),
            TcpOptions::default().with_session(SessionId(7)),
        )
        .unwrap();
        assert_eq!(proposed.session(), SessionId(7));
        assert_eq!(server.active_sessions(), 2);

        // A second client proposing the same id is refused.
        let err = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 3),
            TcpOptions::default().with_session(SessionId(7)),
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)), "unexpected error {err:?}");
    }

    #[test]
    fn disconnect_frees_the_session_and_its_id() {
        let master = master(43);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        {
            let mut t = TcpTransport::connect(
                server.local_addr(),
                provision_for(&master, 5),
                TcpOptions::default().with_session(SessionId(4)),
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            t.round_trip(compare_request(&master, 3, &mut rng)).unwrap();
            assert_eq!(server.active_sessions(), 1);
        }
        // Teardown is synchronous on the client side (drop waits for the ack), so the
        // bridge has already removed the id by the time the drop returns — poll only
        // for the bridge thread's own registry cleanup.
        for _ in 0..200 {
            if server.active_sessions() == 0 && server.pool().active_sessions() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.pool().active_sessions(), 0);
        let _t = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 6),
            TcpOptions::default().with_session(SessionId(4)),
        )
        .unwrap();
    }

    #[test]
    fn handshake_rejects_bad_magic_and_version() {
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let master = master(44);

        let refusal = |hello: &ClientHello| -> ServerHello {
            let stream = TcpStream::connect(server.local_addr()).unwrap();
            write_frame(&stream, &wire::to_bytes(hello)).unwrap();
            wire::from_bytes(&read_frame(&stream).unwrap()).unwrap()
        };

        let good = ClientHello {
            magic: TCP_MAGIC.into(),
            version: TCP_PROTOCOL_VERSION,
            session: 0,
            provision: provision_for(&master, 1),
        };
        let bad_magic = ClientHello { magic: "not-sectopk".into(), ..good.clone() };
        assert!(
            matches!(refusal(&bad_magic), ServerHello::Reject { reason } if reason == "bad magic")
        );
        let bad_version = ClientHello { version: TCP_PROTOCOL_VERSION + 1, ..good };
        assert!(matches!(
            refusal(&bad_version),
            ServerHello::Reject { reason } if reason.contains("version mismatch")
        ));
        assert_eq!(server.active_sessions(), 0);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let master = master(45);
        let server = TcpCloudServer::serve_pool(
            "127.0.0.1:0",
            Arc::new(MultiplexServer::new(1)),
            TcpServerConfig { max_sessions: 1 },
        )
        .unwrap();
        let _first = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 1),
            TcpOptions::default(),
        )
        .unwrap();
        let err = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 2),
            TcpOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(&err, ProtocolError::Transport(msg) if msg.contains("server full")),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn connect_retries_with_backoff_then_fails_typed() {
        // Bind-then-drop gives an ephemeral port that is (almost surely) not listening.
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let master = master(46);
        let options = TcpOptions {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(1),
            ..TcpOptions::default()
        };
        let err = TcpTransport::connect(dead, provision_for(&master, 1), options).unwrap_err();
        assert!(
            matches!(&err, ProtocolError::Transport(msg) if msg.contains("after 3 attempts")),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn severed_socket_surfaces_transport_error_and_is_reaped() {
        let master = master(47);
        let server = TcpCloudServer::bind("127.0.0.1:0", 1).unwrap();
        let mut t = TcpTransport::connect(
            server.local_addr(),
            provision_for(&master, 9),
            TcpOptions::default().with_session(SessionId(9)),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        t.round_trip(compare_request(&master, 1, &mut rng)).unwrap();

        assert!(server.drop_session(SessionId(9)));
        let err = t.round_trip(compare_request(&master, 1, &mut rng)).unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)), "unexpected error {err:?}");
        // The bridge reaps the pool session; the id becomes reusable.
        for _ in 0..200 {
            if server.pool().active_sessions() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.pool().active_sessions(), 0);
        assert!(!server.drop_session(SessionId(9)), "already severed");
    }

    #[test]
    fn private_loopback_server_backs_a_self_contained_transport() {
        let master = master(48);
        let mut t =
            TcpTransport::private(provision_for(&master, 31), TcpOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let response = t.round_trip(compare_request(&master, -2, &mut rng)).unwrap();
        assert_eq!(response, S2Response::Signs(vec![-1]));
        assert_eq!(t.metrics().rounds, 1);
        assert!(!t.s2_ledger().is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected_cleanly() {
        let mut encoded = Vec::new();
        encoded.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let err = read_frame(&encoded[..]).unwrap_err();
        assert!(matches!(&err, ProtocolError::Transport(msg) if msg.contains("oversized")));
    }
}
