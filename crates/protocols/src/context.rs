//! The two-cloud execution context.
//!
//! The paper's architecture (§3.2) has a primary cloud S1 (stores the encrypted relation,
//! holds only public keys) and a crypto cloud S2 (holds the Paillier / Damgård–Jurik
//! secret keys, stores no data).  Both parties are semi-honest and non-colluding.  In
//! this reproduction both run in-process inside a [`TwoClouds`] value; every message that
//! would cross the network is accounted in the [`ChannelMetrics`] and every observation a
//! party makes beyond its own inputs is recorded in its [`LeakageLedger`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_crypto::damgard_jurik::DjPublicKey;
use sectopk_crypto::keys::{MasterKeys, S1Keys, S2Keys};
use sectopk_crypto::paillier::{generate_keypair, PaillierPublicKey, PaillierSecretKey};
use sectopk_crypto::Result;

use crate::channel::{ChannelMetrics, Direction};
use crate::ledger::LeakageLedger;

/// State held by the primary cloud S1 during protocol execution.
#[derive(Debug)]
pub struct S1State {
    /// Public key material shared by the data owner.
    pub keys: S1Keys,
    /// S1's *own* Paillier key pair, used only to transport blinding randomness through
    /// S2 in SecDedup / SecFilter (Algorithm 7 line 7, Algorithm 12 line 3).
    pub own_public: PaillierPublicKey,
    /// Secret half of S1's own key pair.
    pub own_secret: PaillierSecretKey,
    /// S1's local randomness.
    pub rng: StdRng,
    /// Everything S1 observed beyond its inputs.
    pub ledger: LeakageLedger,
}

/// State held by the crypto cloud S2 during protocol execution.
#[derive(Debug)]
pub struct S2State {
    /// Public and secret key material uploaded by the data owner.
    pub keys: S2Keys,
    /// S2's local randomness.
    pub rng: StdRng,
    /// Everything S2 observed beyond its inputs.
    pub ledger: LeakageLedger,
}

/// The in-process simulation of the two non-colluding clouds plus the metered channel
/// connecting them.
#[derive(Debug)]
pub struct TwoClouds {
    /// The primary cloud S1.
    pub s1: S1State,
    /// The crypto cloud S2.
    pub s2: S2State,
    /// Communication accounting.
    pub channel: ChannelMetrics,
}

impl TwoClouds {
    /// Set up the two clouds from the data owner's key bundle.  `seed` makes every
    /// random choice of both parties reproducible (useful for tests and benches).
    pub fn new(master: &MasterKeys, seed: u64) -> Result<Self> {
        let mut s1_rng = StdRng::seed_from_u64(seed ^ 0x5151_5151_5151_5151);
        let s2_rng = StdRng::seed_from_u64(seed ^ 0x5252_5252_5252_5252);

        // S1's own key pair is used to transport blinding randomness through S2 (SecDedup,
        // SecFilter).  The composed masks are sums (≤ 2N) or products (≤ N²) of values in
        // Z_N computed homomorphically under S1's modulus N', so N' must be large enough
        // that those compositions never wrap: 2·|N| + 64 bits.
        let own_bits = master.paillier_public.modulus_bits() * 2 + 64;
        let (own_public, own_secret) = generate_keypair(own_bits, &mut s1_rng)?;

        Ok(TwoClouds {
            s1: S1State {
                keys: master.s1_view(),
                own_public,
                own_secret,
                rng: s1_rng,
                ledger: LeakageLedger::new(),
            },
            s2: S2State { keys: master.s2_view(), rng: s2_rng, ledger: LeakageLedger::new() },
            channel: ChannelMetrics::new(),
        })
    }

    /// The shared Paillier public key (every score and EHL block is encrypted under it).
    pub fn pk(&self) -> &PaillierPublicKey {
        &self.s1.keys.paillier_public
    }

    /// The shared Damgård–Jurik public key.
    pub fn dj_pk(&self) -> &DjPublicKey {
        &self.s1.keys.dj_public
    }

    /// Communication statistics accumulated so far.
    pub fn channel(&self) -> &ChannelMetrics {
        &self.channel
    }

    /// S1's leakage ledger.
    pub fn s1_ledger(&self) -> &LeakageLedger {
        &self.s1.ledger
    }

    /// S2's leakage ledger.
    pub fn s2_ledger(&self) -> &LeakageLedger {
        &self.s2.ledger
    }

    /// Reset the channel metrics and both ledgers (e.g. between queries).
    pub fn reset_accounting(&mut self) {
        self.channel = ChannelMetrics::new();
        self.s1.ledger.clear();
        self.s2.ledger.clear();
    }

    /// Record a message from S1 to S2 of `bytes` bytes carrying `ciphertexts` ciphertexts.
    pub(crate) fn send_to_s2(&mut self, bytes: usize, ciphertexts: usize) {
        self.channel.record(Direction::S1ToS2, bytes, ciphertexts);
    }

    /// Record a message from S2 to S1 of `bytes` bytes carrying `ciphertexts` ciphertexts.
    pub(crate) fn send_to_s1(&mut self, bytes: usize, ciphertexts: usize) {
        self.channel.record(Direction::S2ToS1, bytes, ciphertexts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;

    #[test]
    fn setup_shares_the_owner_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 7).unwrap();
        assert_eq!(clouds.pk().n(), master.paillier_public.n());
        assert_eq!(clouds.dj_pk().n(), master.paillier_public.n());
        // S1's own key pair must be a *different* modulus.
        assert_ne!(clouds.s1.own_public.n(), master.paillier_public.n());
        assert_eq!(clouds.channel().total_messages(), 0);
        assert!(clouds.s1_ledger().is_empty());
        assert!(clouds.s2_ledger().is_empty());
    }

    #[test]
    fn accounting_and_reset() {
        let mut rng = StdRng::seed_from_u64(2);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut clouds = TwoClouds::new(&master, 3).unwrap();
        clouds.send_to_s2(128, 2);
        clouds.send_to_s1(64, 1);
        assert_eq!(clouds.channel().bytes, 192);
        assert_eq!(clouds.channel().rounds, 1);
        clouds.reset_accounting();
        assert_eq!(clouds.channel().total_messages(), 0);
    }

    #[test]
    fn same_seed_gives_reproducible_randomness() {
        let mut rng = StdRng::seed_from_u64(3);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut a = TwoClouds::new(&master, 42).unwrap();
        let mut b = TwoClouds::new(&master, 42).unwrap();
        let pk = a.pk().clone();
        let ca = pk.encrypt_u64(5, &mut a.s1.rng).unwrap();
        let cb = pk.encrypt_u64(5, &mut b.s1.rng).unwrap();
        assert_eq!(ca, cb);
    }
}
