//! The two-cloud execution context.
//!
//! The paper's architecture (§3.2) has a primary cloud S1 (stores the encrypted relation,
//! holds only public keys) and a crypto cloud S2 (holds the Paillier / Damgård–Jurik
//! secret keys, stores no data).  Both parties are semi-honest and non-colluding.
//!
//! A [`TwoClouds`] value holds S1's state directly and reaches S2 **only** through a
//! [`Transport`]: every S1 ↔ S2 exchange is a typed,
//! serializable [`S1Request`] / [`S2Response`] round trip,
//! metered in the transport's [`ChannelMetrics`] and reflected in the per-party
//! [`LeakageLedger`]s.  The transport is selected by [`TransportKind`] (or the
//! `SECTOPK_TRANSPORT` environment variable): in-process for speed, or a real
//! thread-backed message channel.

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_metrics::{Counter, Histogram, Registry as MetricsRegistry, TraceHook};

use crate::error::Result;
use sectopk_crypto::damgard_jurik::DjPublicKey;
use sectopk_crypto::keys::{MasterKeys, S1Keys};
use sectopk_crypto::paillier::{generate_keypair, PaillierPublicKey, PaillierSecretKey};
use sectopk_crypto::pool::RandomnessPool;

use crate::channel::ChannelMetrics;
use crate::engine::EngineProvision;
use crate::ledger::LeakageLedger;
use crate::multiplex::{LinkProfile, MultiplexServer, MultiplexTransport, SessionId};
use crate::tcp::{TcpOptions, TcpTransport};
use crate::transport::{
    ChannelTransport, InProcessTransport, S1Request, S2Response, Transport, TransportKind,
};

/// State held by the primary cloud S1 during protocol execution.
#[derive(Debug)]
pub struct S1State {
    /// Public key material shared by the data owner.
    pub keys: S1Keys,
    /// S1's *own* Paillier key pair, used only to transport blinding randomness through
    /// S2 in SecDedup / SecFilter (Algorithm 7 line 7, Algorithm 12 line 3).
    pub own_public: PaillierPublicKey,
    /// Secret half of S1's own key pair.
    pub own_secret: PaillierSecretKey,
    /// S1's local randomness.
    pub rng: StdRng,
    /// S1's pool of precomputed encryption nonces for the *shared* Paillier / DJ keys
    /// (every fresh-zero, selection constant and re-randomization S1 produces draws
    /// from here instead of paying a full exponentiation inline).
    pub pool: RandomnessPool,
    /// Nonce pool for S1's *own* key pair `pk'` (the encrypted-blinding channel of
    /// SecDedup / SecFilter / SecJoin).
    pub own_pool: RandomnessPool,
    /// Everything S1 observed beyond its inputs.
    pub ledger: LeakageLedger,
    /// Worker threads S1's batched client loops may use for the pure crypto of one
    /// query (1 = serial; default from `SECTOPK_INTRA_PARALLEL`).  Randomness is always
    /// drawn serially first, so protocol bytes never depend on this value.
    pub intra_workers: usize,
}

/// The two non-colluding clouds: S1's state plus the metered transport to the S2 engine.
pub struct TwoClouds {
    /// The primary cloud S1.
    pub s1: S1State,
    /// The message channel to the crypto cloud S2 (which owns all S2 state).
    transport: Box<dyn Transport>,
    /// Whether multi-item exchanges are shipped as single messages (round-trip
    /// batching).  `false` degrades to one message per pair — the pre-batching wire
    /// pattern, kept for the bandwidth benchmarks.
    batching: bool,
    /// Per-round latency histogram (`session.{label}.round_nanos`); a no-op until
    /// [`TwoClouds::set_metrics`] installs a registry.  Observes wall-clock only —
    /// never protocol state — so ledgers and [`ChannelMetrics`] are unaffected.
    round_nanos: Histogram,
    /// Rounds completed (`session.{label}.rounds`), mirroring
    /// [`ChannelMetrics::rounds`] into the registry for cross-checking.
    rounds_counter: Counter,
    /// Optional span hook notified at entry/exit of every protocol round.
    trace: Option<Arc<dyn TraceHook>>,
}

impl fmt::Debug for TwoClouds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TwoClouds")
            .field("s1", &self.s1)
            .field("transport", &self.transport)
            .field("batching", &self.batching)
            .finish_non_exhaustive()
    }
}

impl TwoClouds {
    /// Set up the two clouds from the data owner's key bundle with the transport chosen
    /// by the `SECTOPK_TRANSPORT` environment variable (in-process by default) and
    /// batching enabled.  `seed` makes every random choice of both parties reproducible.
    pub fn new(master: &MasterKeys, seed: u64) -> Result<Self> {
        Self::with_transport(master, seed, TransportKind::from_env(), true)
    }

    /// Set up the two clouds with an explicit transport and batching policy.
    /// [`TransportKind::Multiplex`] gives the session a private single-worker
    /// [`MultiplexServer`]; to share one server across sessions use
    /// [`TwoClouds::connect`].
    pub fn with_transport(
        master: &MasterKeys,
        seed: u64,
        kind: TransportKind,
        batching: bool,
    ) -> Result<Self> {
        Self::build(master, seed, batching, |provision| {
            Ok(match kind {
                TransportKind::InProcess => Box::new(InProcessTransport::new(provision.build())),
                TransportKind::Channel => Box::new(ChannelTransport::new(provision.build())),
                TransportKind::Multiplex => {
                    Box::new(MultiplexTransport::private(provision.build(), LinkProfile::ideal())?)
                }
                TransportKind::Tcp => {
                    Box::new(TcpTransport::private(provision, TcpOptions::default())?)
                }
            })
        })
    }

    /// Set up the two clouds against a remote [`crate::tcp::TcpCloudServer`] at `addr`
    /// (e.g. a `sectopk-s2d` process): the S2 engine is provisioned over the connection
    /// handshake, and every protocol round trip crosses the real socket.  S1-side state
    /// derives from `seed` exactly as in [`TwoClouds::with_transport`], so a TCP run
    /// with seed *s* is byte-identical to an in-process run with seed *s*.
    pub fn connect_tcp(
        master: &MasterKeys,
        seed: u64,
        batching: bool,
        addr: &str,
        mut options: TcpOptions,
    ) -> Result<Self> {
        // Derive the reconnect-backoff jitter from the session seed when the caller
        // left it unset: retries stay deterministic per session, and a fleet of
        // sessions fanned out from one base seed decorrelates automatically.
        if options.jitter_seed == 0 {
            options.jitter_seed = sectopk_crypto::pool::shard_seed(seed, 0x6A17_7E12);
        }
        Self::build(master, seed, batching, |provision| {
            Ok(Box::new(TcpTransport::connect(addr, provision, options)?))
        })
    }

    /// Set up the two clouds as session `session` of a shared [`MultiplexServer`].
    ///
    /// The S1-side state and the session's S2 engine are derived from `seed` exactly as
    /// in [`TwoClouds::with_transport`], so a session connected with seed *s* is
    /// byte-identical to a dedicated-transport run with seed *s* — the serving layer
    /// picks per-session seeds (e.g. [`sectopk_crypto::pool::shard_seed`]) to keep
    /// concurrent sessions deterministic and decorrelated.
    pub fn connect(
        master: &MasterKeys,
        seed: u64,
        batching: bool,
        server: &MultiplexServer,
        session: SessionId,
        link: LinkProfile,
    ) -> Result<Self> {
        Self::connect_with_workers(
            master,
            seed,
            batching,
            server,
            session,
            link,
            crate::engine::intra_workers_from_env(),
        )
    }

    /// [`TwoClouds::connect`] with an explicit intra-query worker count applied to
    /// *both* sides — S1's client loops and the session's S2 engine — instead of the
    /// `SECTOPK_INTRA_PARALLEL` default.  Worker count never affects protocol bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_workers(
        master: &MasterKeys,
        seed: u64,
        batching: bool,
        server: &MultiplexServer,
        session: SessionId,
        link: LinkProfile,
        intra_workers: usize,
    ) -> Result<Self> {
        let mut clouds = Self::build(master, seed, batching, |provision| {
            let mut engine = provision.build();
            engine.set_intra_workers(intra_workers);
            Ok(Box::new(server.connect(session, engine, link)?))
        })?;
        clouds.set_intra_workers(intra_workers);
        Ok(clouds)
    }

    /// The shared S1-side setup: every transport and the multiplexed sessions derive
    /// S1's keys, RNG and nonce pools from `seed` through this one path, which is what
    /// makes protocol output byte-identical across transports for a fixed seed.
    fn build(
        master: &MasterKeys,
        seed: u64,
        batching: bool,
        make_transport: impl FnOnce(EngineProvision) -> Result<Box<dyn Transport>>,
    ) -> Result<Self> {
        let mut s1_rng = StdRng::seed_from_u64(seed ^ 0x5151_5151_5151_5151);

        // S1's own key pair is used to transport blinding randomness through S2 (SecDedup,
        // SecFilter).  The composed masks are sums (≤ 2N) or products (≤ N²) of values in
        // Z_N computed homomorphically under S1's modulus N', so N' must be large enough
        // that those compositions never wrap: 2·|N| + 64 bits.
        let own_bits = master.paillier_public.modulus_bits() * 2 + 64;
        let (own_public, own_secret) = generate_keypair(own_bits, &mut s1_rng)?;

        // S2 receives the owner's secret-key view and S1's published own public key; it
        // lives behind the transport from here on.  The provision is the serializable
        // form of that hand-over — local transports build the engine in place, the TCP
        // transport ships it over the connection handshake.
        let provision = EngineProvision::new(
            master.s2_view(),
            own_public.clone(),
            seed ^ 0x5252_5252_5252_5252,
        );
        let transport = make_transport(provision)?;

        let s1_keys = master.s1_view();
        // S1's nonce pool serves the shared key pair; it owns its own deterministic
        // stream so the two clouds (and any replay with the same seed) stay reproducible.
        let pool = RandomnessPool::with_dj(
            &s1_keys.paillier_public,
            &s1_keys.dj_public,
            seed ^ 0x1001_1001_1001_1001,
        );
        let own_pool = RandomnessPool::new(&own_public, seed ^ 0x4004_4004_4004_4004);
        Ok(TwoClouds {
            s1: S1State {
                keys: s1_keys,
                own_public,
                own_secret,
                rng: s1_rng,
                pool,
                own_pool,
                ledger: LeakageLedger::new(),
                intra_workers: crate::engine::intra_workers_from_env(),
            },
            transport,
            batching,
            round_nanos: Histogram::noop(),
            rounds_counter: Counter::noop(),
            trace: None,
        })
    }

    /// Report this context's protocol rounds into `registry`: a per-round latency
    /// histogram (`session.{label}.round_nanos`), a round counter
    /// (`session.{label}.rounds`), and the transport's own client-side handles
    /// (`tcp.client.*` on the TCP transport).  A disabled registry leaves every
    /// instrument a no-op; protocol bytes, ledgers and [`ChannelMetrics`] are
    /// unaffected either way.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry, label: &str) {
        self.round_nanos = registry.histogram(&format!("session.{label}.round_nanos"));
        self.rounds_counter = registry.counter(&format!("session.{label}.rounds"));
        self.transport.set_metrics_registry(registry);
    }

    /// Install a hook notified at entry and exit of every protocol round; the span
    /// name is the request's [`S1Request::kind_name`] (e.g. `"compare"`).  Hooks run
    /// on the query thread — keep them cheap.
    pub fn set_trace_hook(&mut self, hook: Arc<dyn TraceHook>) {
        self.trace = Some(hook);
    }

    /// Transport faults absorbed without surfacing an error (reconnect-resume cycles,
    /// shed requests retried to success); see [`Transport::faults_absorbed`].
    pub fn faults_absorbed(&self) -> u64 {
        self.transport.faults_absorbed()
    }

    /// Worker threads S1's batched client loops may use for one query's pure crypto.
    pub fn intra_workers(&self) -> usize {
        self.s1.intra_workers
    }

    /// Set the S1-side intra-query worker count (minimum 1; 1 = fully serial).  The S2
    /// engine behind the transport has its own knob
    /// ([`crate::engine::S2Engine::set_intra_workers`]); both default to the
    /// `SECTOPK_INTRA_PARALLEL` environment variable.  Protocol bytes, ledgers and
    /// metrics are identical for every value.
    pub fn set_intra_workers(&mut self, workers: usize) {
        self.s1.intra_workers = workers.max(1);
    }

    /// Use transport idle time to top S1's nonce pools up to `paillier` / `dj` / `own`
    /// ready nonces (e.g. between queries, while no request is in flight).  Pool streams
    /// are position-deterministic, so eager refilling never changes protocol bytes.
    pub fn idle_refill(&mut self, paillier: usize, dj: usize, own: usize) {
        let workers = self.s1.intra_workers;
        let (ready_p, ready_dj) = self.s1.pool.ready();
        let need_p = paillier.saturating_sub(ready_p);
        let need_dj = dj.saturating_sub(ready_dj);
        if need_p + need_dj > 0 {
            self.s1.pool.prefill_parallel(need_p, need_dj, workers);
        }
        let (ready_own, _) = self.s1.own_pool.ready();
        let need_own = own.saturating_sub(ready_own);
        if need_own > 0 {
            self.s1.own_pool.prefill_parallel(need_own, 0, workers);
        }
    }

    /// The shared Paillier public key (every score and EHL block is encrypted under it).
    pub fn pk(&self) -> &PaillierPublicKey {
        &self.s1.keys.paillier_public
    }

    /// The shared Damgård–Jurik public key.
    pub fn dj_pk(&self) -> &DjPublicKey {
        &self.s1.keys.dj_public
    }

    /// Which transport implementation carries the S1 ↔ S2 messages.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// Whether round-trip batching is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// The simulated inter-cloud link the transport runs over (ideal for dedicated
    /// transports; the connected RTT for multiplexed sessions).  Feeds the adaptive
    /// query planner's §11 cost model.
    pub fn link_profile(&self) -> LinkProfile {
        self.transport.link()
    }

    /// Communication statistics accumulated so far (metered at the transport boundary).
    pub fn channel(&self) -> ChannelMetrics {
        self.transport.metrics()
    }

    /// S1's leakage ledger.
    pub fn s1_ledger(&self) -> &LeakageLedger {
        &self.s1.ledger
    }

    /// A snapshot of S2's leakage ledger, fetched through the transport's control plane.
    pub fn s2_ledger(&self) -> LeakageLedger {
        self.transport.s2_ledger()
    }

    /// Reset the channel metrics and both ledgers (e.g. between queries).
    pub fn reset_accounting(&mut self) {
        self.transport.reset_metrics();
        self.transport.reset_s2();
        self.s1.ledger.clear();
    }

    /// Ship one request to S2 and return its response (one metered round trip),
    /// timed into the round-latency histogram and bracketed by the trace hook.
    pub(crate) fn round(&mut self, request: S1Request) -> Result<S2Response> {
        let span = request.kind_name();
        if let Some(trace) = &self.trace {
            trace.enter(span);
        }
        let timer = self.round_nanos.start();
        let result = self.transport.round_trip(request);
        self.round_nanos.stop(timer);
        self.rounds_counter.incr();
        if let Some(trace) = &self.trace {
            trace.exit(span);
        }
        result
    }

    /// Ship one *raw* request to S2 — the escape hatch the conformance and
    /// failure-injection suites use to exercise the engine's typed error frames.
    /// Regular callers speak through the sub-protocol methods, never this.
    pub fn raw_round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        self.round(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;

    #[test]
    fn setup_shares_the_owner_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 7).unwrap();
        assert_eq!(clouds.pk().n(), master.paillier_public.n());
        assert_eq!(clouds.dj_pk().n(), master.paillier_public.n());
        // S1's own key pair must be a *different* modulus.
        assert_ne!(clouds.s1.own_public.n(), master.paillier_public.n());
        assert_eq!(clouds.channel().total_messages(), 0);
        assert!(clouds.s1_ledger().is_empty());
        assert!(clouds.s2_ledger().is_empty());
        assert!(clouds.batching());
    }

    #[test]
    fn accounting_and_reset() {
        let mut rng = StdRng::seed_from_u64(2);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut clouds = TwoClouds::new(&master, 3).unwrap();
        let a = clouds.pk().clone().encrypt_u64(1, &mut clouds.s1.rng).unwrap();
        let b = clouds.pk().clone().encrypt_u64(2, &mut clouds.s1.rng).unwrap();
        let _ = clouds.enc_compare(&a, &b, "test").unwrap();
        assert!(clouds.channel().bytes > 0);
        assert_eq!(clouds.channel().rounds, 1);
        assert!(!clouds.s2_ledger().is_empty());
        clouds.reset_accounting();
        assert_eq!(clouds.channel().total_messages(), 0);
        assert!(clouds.s1_ledger().is_empty());
        assert!(clouds.s2_ledger().is_empty());
    }

    #[test]
    fn same_seed_gives_reproducible_randomness() {
        let mut rng = StdRng::seed_from_u64(3);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let mut a = TwoClouds::new(&master, 42).unwrap();
        let mut b = TwoClouds::new(&master, 42).unwrap();
        let pk = a.pk().clone();
        let ca = pk.encrypt_u64(5, &mut a.s1.rng).unwrap();
        let cb = pk.encrypt_u64(5, &mut b.s1.rng).unwrap();
        assert_eq!(ca, cb);
    }

    #[test]
    fn explicit_transport_selection() {
        let mut rng = StdRng::seed_from_u64(4);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let a = TwoClouds::with_transport(&master, 1, TransportKind::InProcess, true).unwrap();
        assert_eq!(a.transport_kind(), TransportKind::InProcess);
        let b = TwoClouds::with_transport(&master, 1, TransportKind::Channel, false).unwrap();
        assert_eq!(b.transport_kind(), TransportKind::Channel);
        assert!(!b.batching());
    }
}
