//! `SecDedup` (Algorithm 7) and the optimized `SecDupElim` (§10.1) — the S1 side.
//!
//! The same object can appear in several queried lists at the same depth; its worst/best
//! scores would then be counted several times when the per-depth items are merged into
//! the global list.  `SecDedup` lets S2 *obliviously* neutralise the extra copies:
//!
//! 1. S1 computes the pairwise `⊖` equality matrix of the items, blinds every item with
//!    fresh randomness (`Rand`, Algorithm 8), encrypts that randomness under **its own**
//!    key pair `pk'` and ships matrix + blinded items + encrypted randomness to S2 under
//!    a random permutation `π` — as a single [`crate::transport::S1Request::Dedup`]
//!    message when batching is enabled, or as one
//!    [`crate::transport::S1Request::EqTest`] round per matrix entry followed by the
//!    item exchange when it is not (the pre-batching wire pattern the bandwidth bench
//!    compares against).
//! 2. S2 decrypts the matrix (learning only the permuted equality pattern `EP^d`), keeps
//!    the first copy of every duplicate group and *replaces* the others by garbage items
//!    whose worst/best scores unblind to the sentinel `Z = −1`, re-randomizes and
//!    re-blinds every kept item, updates the encrypted randomness accordingly, applies a
//!    second permutation `π'` and returns everything (see
//!    [`crate::engine::S2Engine`]).
//! 3. S1 decrypts the randomness with `sk'`, unblinds, and obtains a list in which every
//!    object survives exactly once — without learning which positions were replaced.
//!
//! `SecDupElim` is identical except that S2 *removes* the duplicates instead of replacing
//! them, which shrinks the list (and thus every later EncSort) at the cost of revealing
//! the per-depth uniqueness pattern `UP^d` to S1 (§10.1).

use num_bigint::BigUint;
use serde::{Deserialize, Serialize};

use crate::error::{ProtocolError, Result};
use sectopk_crypto::paillier::Ciphertext;
#[cfg(test)]
use sectopk_crypto::paillier::PaillierPublicKey;
use sectopk_crypto::prp::RandomPermutation;

use crate::context::TwoClouds;
use crate::items::{rand_blind, ItemBlinding, ScoredItem};
use crate::ledger::LeakageEvent;
use crate::transport::{DedupRequest, S1Request, S2Response};

/// The blinding randomness of one item, encrypted under S1's own key `pk'` so it can
/// round-trip through S2 (the `H_i` values of Algorithm 7).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EncryptedBlinding {
    /// Encryptions of the per-EHL-block masks `α`.
    pub alphas: Vec<Ciphertext>,
    /// Encryption of the worst-score mask `β`.
    pub beta: Ciphertext,
    /// Encryption of the best-score mask `γ`.
    pub gamma: Ciphertext,
}

impl EncryptedBlinding {
    fn encrypt(
        blinding: &ItemBlinding,
        own_pool: &mut sectopk_crypto::RandomnessPool,
    ) -> Result<Self> {
        Ok(EncryptedBlinding {
            alphas: blinding
                .alphas
                .iter()
                .map(|a| own_pool.encrypt(a))
                .collect::<sectopk_crypto::Result<Vec<_>>>()?,
            beta: own_pool.encrypt(&blinding.beta)?,
            gamma: own_pool.encrypt(&blinding.gamma)?,
        })
    }
}

impl TwoClouds {
    /// `SecDedup`: return a list of the same length in which at most one copy of every
    /// object carries real scores; the remaining copies have garbage ids and sentinel
    /// (−1) scores so they can never reach the top-k.
    pub fn sec_dedup(&mut self, items: Vec<ScoredItem>, depth: usize) -> Result<Vec<ScoredItem>> {
        self.dedup_inner(items, depth, false)
    }

    /// `SecDupElim`: like [`Self::sec_dedup`] but duplicates are removed, so the output
    /// may be shorter.  S1 learns the number of distinct objects (`UP^d`).
    pub fn sec_dup_elim(
        &mut self,
        items: Vec<ScoredItem>,
        depth: usize,
    ) -> Result<Vec<ScoredItem>> {
        self.dedup_inner(items, depth, true)
    }

    fn dedup_inner(
        &mut self,
        items: Vec<ScoredItem>,
        depth: usize,
        eliminate: bool,
    ) -> Result<Vec<ScoredItem>> {
        let l = items.len();
        if l <= 1 {
            return Ok(items);
        }
        let pk = self.s1.keys.paillier_public.clone();
        let own_sk = self.s1.own_secret.clone();

        // ================= S1: matrix, blinding, permutation =========================
        // Pairwise equality ciphertexts for the upper triangle (i < j).
        let mut matrix_entries: Vec<((usize, usize), Ciphertext)> = Vec::new();
        for i in 0..l {
            for j in (i + 1)..l {
                let c = items[i].ehl.eq_test(&items[j].ehl, &pk, &mut self.s1.rng);
                matrix_entries.push(((i, j), c));
            }
        }

        // Blind every item and encrypt the blinding under S1's own key.
        let mut blinded_items = Vec::with_capacity(l);
        let mut encrypted_blindings = Vec::with_capacity(l);
        for item in &items {
            let blinding = ItemBlinding::sample(item.ehl.len(), &pk, &mut self.s1.rng);
            blinded_items.push(rand_blind(item, &blinding, &pk));
            encrypted_blindings.push(EncryptedBlinding::encrypt(&blinding, &mut self.s1.own_pool)?);
        }

        // Permute items, blindings and the matrix consistently with π.
        let pi = RandomPermutation::sample(l, &mut self.s1.rng);
        let permuted_items = pi.permute(&blinded_items);
        let permuted_blindings = pi.permute(&encrypted_blindings);
        let (pair_indices, matrix): (Vec<(usize, usize)>, Vec<Ciphertext>) = matrix_entries
            .into_iter()
            .map(|((i, j), c)| {
                let (a, b) = (pi.apply(i), pi.apply(j));
                (if a < b { (a, b) } else { (b, a) }, c)
            })
            .unzip();

        // ================= transport: one message, or one round per pair ===============
        let request = if self.batching() {
            DedupRequest {
                items: permuted_items,
                blindings: permuted_blindings,
                pair_indices,
                matrix: Some(matrix),
                eliminate,
                depth,
            }
        } else {
            // Stream the matrix entry by entry (the pre-batching wire pattern); the
            // engine accumulates the decrypted bits for the closing Dedup message and
            // replies with a bare ack — S2 consumes the bits itself, so an encrypted
            // reply would be wasted bandwidth.
            for diff in matrix {
                match self.round(S1Request::EqTest {
                    diff,
                    context: "sec_dedup".to_string(),
                    depth: Some(depth),
                    accumulate: true,
                    reply_bit: false,
                })? {
                    S2Response::Ack => {}
                    other => return Err(crate::primitives::unexpected(&other, "Ack")),
                }
            }
            DedupRequest {
                items: permuted_items,
                blindings: permuted_blindings,
                pair_indices,
                matrix: None,
                eliminate,
                depth,
            }
        };
        let (returned_items, returned_blindings) = match self.round(S1Request::Dedup(request))? {
            S2Response::Dedup { items, blindings } => (items, blindings),
            other => return Err(crate::primitives::unexpected(&other, "Dedup")),
        };
        if returned_items.len() != returned_blindings.len() {
            return Err(ProtocolError::transport("dedup reply arity mismatch"));
        }

        if eliminate {
            // The shorter list reveals the uniqueness pattern to S1 (§10.1).
            self.s1.ledger.record(LeakageEvent::UniqueCount { depth, count: returned_items.len() });
        }

        // ================= S1: unblind ================================================
        let mut output = Vec::with_capacity(returned_items.len());
        for (item, blinding) in returned_items.iter().zip(returned_blindings.iter()) {
            let alphas: Vec<BigUint> = blinding
                .alphas
                .iter()
                .map(|c| own_sk.decrypt(c))
                .collect::<sectopk_crypto::Result<Vec<_>>>()?;
            let beta = own_sk.decrypt(&blinding.beta)?;
            let gamma = own_sk.decrypt(&blinding.gamma)?;
            let restored =
                crate::items::rand_unblind(item, &ItemBlinding { alphas, beta, gamma }, &pk);
            output.push(restored);
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;
    use num_bigint::BigInt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(404);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 44).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    fn item(
        object: &str,
        worst: i64,
        best: i64,
        encoder: &EhlEncoder,
        pk: &PaillierPublicKey,
        rng: &mut StdRng,
    ) -> ScoredItem {
        ScoredItem {
            ehl: encoder.encode(object.as_bytes(), pk, rng).unwrap(),
            worst: pk.encrypt_i64(worst, rng).unwrap(),
            best: pk.encrypt_i64(best, rng).unwrap(),
        }
    }

    fn decrypt_worsts(items: &[ScoredItem], master: &MasterKeys) -> Vec<i64> {
        items
            .iter()
            .map(|it| {
                i64::try_from(master.paillier_secret.decrypt_signed(&it.worst).unwrap()).unwrap()
            })
            .collect()
    }

    #[test]
    fn dedup_preserves_length_and_neutralises_duplicates() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        // X1 appears twice, X2 once (as in Fig. 3b where X1 and X2 repeat across lists).
        let items = vec![
            item("X1", 16, 22, &encoder, pk, &mut rng),
            item("X2", 13, 21, &encoder, pk, &mut rng),
            item("X1", 16, 22, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_dedup(items, 2).unwrap();
        assert_eq!(out.len(), 3, "SecDedup keeps the list length");
        // The whole exchange is a single round trip when batched.
        assert_eq!(clouds.channel().rounds, 1);

        let mut worsts = decrypt_worsts(&out, &master);
        worsts.sort_unstable();
        // Exactly one copy of X1 (16) and one of X2 (13) survive; the duplicate is −1.
        assert_eq!(worsts, vec![-1, 13, 16]);
    }

    #[test]
    fn unbatched_dedup_pays_one_round_per_pair() {
        let mut rng = StdRng::seed_from_u64(405);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let mut clouds =
            TwoClouds::with_transport(&master, 44, TransportKind::InProcess, false).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        let pk = &master.paillier_public;
        let items = vec![
            item("A", 1, 2, &encoder, pk, &mut rng),
            item("A", 1, 2, &encoder, pk, &mut rng),
            item("B", 3, 4, &encoder, pk, &mut rng),
            item("C", 5, 6, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_dedup(items, 0).unwrap();
        assert_eq!(out.len(), 4);
        // 4 items ⇒ 6 matrix pairs ⇒ 6 EqTest rounds + the item exchange.
        assert_eq!(clouds.channel().rounds, 7);
        let mut worsts = decrypt_worsts(&out, &master);
        worsts.sort_unstable();
        assert_eq!(worsts, vec![-1, 1, 3, 5]);
    }

    #[test]
    fn dup_elim_removes_duplicates_and_reports_unique_count() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            item("A", 5, 9, &encoder, pk, &mut rng),
            item("B", 7, 9, &encoder, pk, &mut rng),
            item("A", 5, 9, &encoder, pk, &mut rng),
            item("A", 5, 9, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_dup_elim(items, 1).unwrap();
        assert_eq!(out.len(), 2);
        let mut worsts = decrypt_worsts(&out, &master);
        worsts.sort_unstable();
        assert_eq!(worsts, vec![5, 7]);
        // S1 learned the uniqueness pattern and nothing else.
        assert_eq!(clouds.s1_ledger().count_kind("unique_count"), 1);
        assert!(clouds.s1_ledger().only_contains(&["unique_count"]));
        assert!(clouds.s2_ledger().only_contains(&["equality_bit"]));
    }

    #[test]
    fn surviving_items_still_match_their_object() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let sk = &master.paillier_secret;
        let items = vec![
            item("A", 4, 6, &encoder, pk, &mut rng),
            item("A", 4, 6, &encoder, pk, &mut rng),
            item("B", 2, 3, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_dedup(items, 0).unwrap();
        let fresh_a = encoder.encode(b"A", pk, &mut rng).unwrap();
        let fresh_b = encoder.encode(b"B", pk, &mut rng).unwrap();
        let mut matches_a = 0;
        let mut matches_b = 0;
        for it in &out {
            if sk.is_zero(&it.ehl.eq_test(&fresh_a, pk, &mut rng)).unwrap() {
                matches_a += 1;
                assert_eq!(sk.decrypt_u64(&it.worst).unwrap(), 4);
            }
            if sk.is_zero(&it.ehl.eq_test(&fresh_b, pk, &mut rng)).unwrap() {
                matches_b += 1;
                assert_eq!(sk.decrypt_u64(&it.worst).unwrap(), 2);
            }
        }
        assert_eq!(matches_a, 1, "exactly one surviving copy of A");
        assert_eq!(matches_b, 1);
    }

    #[test]
    fn all_distinct_input_is_left_intact_up_to_rerandomization() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            item("P", 1, 2, &encoder, pk, &mut rng),
            item("Q", 3, 4, &encoder, pk, &mut rng),
            item("R", 5, 6, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_dedup(items, 3).unwrap();
        let mut worsts = decrypt_worsts(&out, &master);
        worsts.sort_unstable();
        assert_eq!(worsts, vec![1, 3, 5]);
        let out2 = clouds
            .sec_dup_elim(
                vec![
                    item("P", 1, 2, &encoder, pk, &mut rng),
                    item("Q", 3, 4, &encoder, pk, &mut rng),
                ],
                3,
            )
            .unwrap();
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn singleton_and_empty_inputs_are_noops() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        assert!(clouds.sec_dedup(Vec::new(), 0).unwrap().is_empty());
        let single = vec![item("only", 9, 9, &encoder, pk, &mut rng)];
        let out = clouds.sec_dedup(single, 0).unwrap();
        assert_eq!(decrypt_worsts(&out, &master), vec![9]);
        assert_eq!(clouds.channel().total_messages(), 0);
    }

    #[test]
    fn sentinel_scores_sort_below_everything() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            item("D", 100, 120, &encoder, pk, &mut rng),
            item("D", 100, 120, &encoder, pk, &mut rng),
        ];
        let out = clouds.sec_dedup(items, 5).unwrap();
        let worsts: Vec<BigInt> = out
            .iter()
            .map(|it| master.paillier_secret.decrypt_signed(&it.worst).unwrap())
            .collect();
        assert!(worsts.contains(&BigInt::from(-1)));
        assert!(worsts.contains(&BigInt::from(100)));
    }
}
