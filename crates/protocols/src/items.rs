//! The scored encrypted item `E(I) = (EHL(o), Enc(W), Enc(B))` manipulated by the query
//! processing (§8.1 "Notations"), plus the `Rand` blinding helper of Algorithm 8.

use num_bigint::BigUint;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use sectopk_crypto::bigint::random_below;
use sectopk_crypto::paillier::{Ciphertext, PaillierPublicKey};
use sectopk_ehl::EhlPlus;

/// An encrypted item carrying its current worst (lower-bound) and best (upper-bound)
/// scores — the entries of the global list `T^d` and of the per-depth list `Γ^d`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct ScoredItem {
    /// Encrypted hash list of the object id.
    pub ehl: EhlPlus,
    /// Paillier encryption of the worst (lower-bound) score `W`.
    pub worst: Ciphertext,
    /// Paillier encryption of the best (upper-bound) score `B`.
    pub best: Ciphertext,
}

impl ScoredItem {
    /// Serialized size in bytes (EHL blocks + two score ciphertexts).
    pub fn byte_len(&self) -> usize {
        self.ehl.byte_len() + self.worst.byte_len() + self.best.byte_len()
    }
}

/// The blinding randomness applied to one [`ScoredItem`] by the `Rand` procedure:
/// `α ∈ Z_N^s` for the EHL blocks, `β` for the worst score and `γ` for the best score.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemBlinding {
    /// Per-block additive masks for the EHL.
    pub alphas: Vec<BigUint>,
    /// Additive mask for the worst score.
    pub beta: BigUint,
    /// Additive mask for the best score.
    pub gamma: BigUint,
}

impl ItemBlinding {
    /// Sample fresh blinding randomness for an item with `ehl_blocks` EHL blocks.
    pub fn sample<R: RngCore + CryptoRng>(
        ehl_blocks: usize,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Self {
        ItemBlinding {
            alphas: (0..ehl_blocks).map(|_| random_below(rng, pk.n())).collect(),
            beta: random_below(rng, pk.n()),
            gamma: random_below(rng, pk.n()),
        }
    }

    /// Combine two blindings applied in sequence (`self` first, then `later`): the masks
    /// add modulo `N`.  Used by SecDedup where S2 layers its own randomness on top of
    /// S1's before returning items.
    pub fn compose(&self, later: &ItemBlinding, pk: &PaillierPublicKey) -> ItemBlinding {
        assert_eq!(self.alphas.len(), later.alphas.len(), "blinding arity mismatch");
        ItemBlinding {
            alphas: self
                .alphas
                .iter()
                .zip(later.alphas.iter())
                .map(|(a, b)| (a + b) % pk.n())
                .collect(),
            beta: (&self.beta + &later.beta) % pk.n(),
            gamma: (&self.gamma + &later.gamma) % pk.n(),
        }
    }
}

/// `Rand(E(I), α, β, γ)` — Algorithm 8: homomorphically add the blinding masks to every
/// component of the item.  Blinding commutes with the homomorphic operations, so a party
/// holding only ciphertexts can still apply it.
pub fn rand_blind(
    item: &ScoredItem,
    blinding: &ItemBlinding,
    pk: &PaillierPublicKey,
) -> ScoredItem {
    ScoredItem {
        ehl: item.ehl.blind(&blinding.alphas, pk),
        worst: pk.add_plain(&item.worst, &blinding.beta),
        best: pk.add_plain(&item.best, &blinding.gamma),
    }
}

/// Remove a blinding previously applied with [`rand_blind`].
pub fn rand_unblind(
    item: &ScoredItem,
    blinding: &ItemBlinding,
    pk: &PaillierPublicKey,
) -> ScoredItem {
    let neg = |x: &BigUint| (pk.n() - (x % pk.n())) % pk.n();
    ScoredItem {
        ehl: item.ehl.unblind(&blinding.alphas, pk),
        worst: pk.add_plain(&item.worst, &neg(&blinding.beta)),
        best: pk.add_plain(&item.best, &neg(&blinding.gamma)),
    }
}

/// Re-randomize every ciphertext of the item (fresh randomness, same plaintexts).
pub fn rerandomize_item<R: RngCore + CryptoRng>(
    item: &ScoredItem,
    pk: &PaillierPublicKey,
    rng: &mut R,
) -> ScoredItem {
    ScoredItem {
        ehl: item.ehl.rerandomize(pk, rng),
        worst: pk.rerandomize(&item.worst, rng),
        best: pk.rerandomize(&item.best, rng),
    }
}

/// [`rerandomize_item`] drawing precomputed `r^N mod N²` nonces from a
/// [`RandomnessPool`](sectopk_crypto::RandomnessPool): `s + 2` multiplications instead
/// of `s + 2` exponentiations, which is what both clouds use on the item-return hot
/// paths (EncSort, SecDedup, SecUpdate).
pub fn rerandomize_item_pooled(
    item: &ScoredItem,
    pool: &mut sectopk_crypto::RandomnessPool,
) -> ScoredItem {
    ScoredItem {
        ehl: item.ehl.rerandomize_pooled(pool),
        worst: pool.rerandomize(&item.worst),
        best: pool.rerandomize(&item.best),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::generate_keypair;
    use sectopk_crypto::prf::PrfKey;
    use sectopk_ehl::EhlEncoder;

    fn setup(
    ) -> (PaillierPublicKey, sectopk_crypto::paillier::PaillierSecretKey, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(808);
        let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
        let keys: Vec<PrfKey> = (0..3u8).map(|i| PrfKey([i + 1; 32])).collect();
        (pk, sk, EhlEncoder::new(&keys), rng)
    }

    fn make_item(
        object: &[u8],
        worst: u64,
        best: u64,
        pk: &PaillierPublicKey,
        encoder: &EhlEncoder,
        rng: &mut StdRng,
    ) -> ScoredItem {
        ScoredItem {
            ehl: encoder.encode(object, pk, rng).unwrap(),
            worst: pk.encrypt_u64(worst, rng).unwrap(),
            best: pk.encrypt_u64(best, rng).unwrap(),
        }
    }

    #[test]
    fn blind_then_unblind_round_trips() {
        let (pk, sk, encoder, mut rng) = setup();
        let item = make_item(b"o1", 10, 26, &pk, &encoder, &mut rng);
        let blinding = ItemBlinding::sample(item.ehl.len(), &pk, &mut rng);
        let blinded = rand_blind(&item, &blinding, &pk);

        // Blinded scores decrypt to something else.
        assert_ne!(sk.decrypt(&blinded.worst).unwrap(), BigUint::from(10u64));
        // Unblinding restores the values.
        let restored = rand_unblind(&blinded, &blinding, &pk);
        assert_eq!(sk.decrypt_u64(&restored.worst).unwrap(), 10);
        assert_eq!(sk.decrypt_u64(&restored.best).unwrap(), 26);

        // The restored EHL still matches a fresh encoding of the same object.
        let fresh = encoder.encode(b"o1", &pk, &mut rng).unwrap();
        assert!(sk.is_zero(&restored.ehl.eq_test(&fresh, &pk, &mut rng)).unwrap());
    }

    #[test]
    fn composed_blinding_equals_sequential_blinding() {
        let (pk, sk, encoder, mut rng) = setup();
        let item = make_item(b"o2", 5, 9, &pk, &encoder, &mut rng);
        let b1 = ItemBlinding::sample(item.ehl.len(), &pk, &mut rng);
        let b2 = ItemBlinding::sample(item.ehl.len(), &pk, &mut rng);

        let sequential = rand_blind(&rand_blind(&item, &b1, &pk), &b2, &pk);
        let composed = b1.compose(&b2, &pk);
        let restored = rand_unblind(&sequential, &composed, &pk);
        assert_eq!(sk.decrypt_u64(&restored.worst).unwrap(), 5);
        assert_eq!(sk.decrypt_u64(&restored.best).unwrap(), 9);
    }

    #[test]
    fn rerandomize_preserves_values() {
        let (pk, sk, encoder, mut rng) = setup();
        let item = make_item(b"o3", 7, 8, &pk, &encoder, &mut rng);
        let fresh = rerandomize_item(&item, &pk, &mut rng);
        assert_ne!(item, fresh);
        assert_eq!(sk.decrypt_u64(&fresh.worst).unwrap(), 7);
        assert_eq!(sk.decrypt_u64(&fresh.best).unwrap(), 8);
    }

    #[test]
    fn byte_len_accounts_for_all_parts() {
        let (pk, _sk, encoder, mut rng) = setup();
        let item = make_item(b"o4", 1, 2, &pk, &encoder, &mut rng);
        assert!(item.byte_len() > item.ehl.byte_len());
    }
}
